"""Ablation — the CT$ (context-table cache) in the RRPP.

§4.3: "a small lookaside structure, the CT cache (CT$) ... caches
recently accessed CT entries to reduce pressure on the MAQ." The CT$'s
benefit is precisely *MAQ pressure*: without it, every incoming request
issues an extra memory access to the in-memory Context Table before it
can even bounds-check the offset. End-to-end latency barely moves when
the CT line is cache-resident (and the requester's CQ-poll quantization
hides single-nanosecond shifts), so this ablation measures what the
paper's sentence actually claims — the per-request MAQ traffic — along
with the latency.
"""

from conftest import print_table, run_once

from repro.cluster import Cluster, ClusterConfig
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.runtime import RMCSession
from repro.sim import LatencyStat
from repro.vm import PAGE_SIZE

READS = 40


def _run(ct_cache_entries: int):
    config = ClusterConfig(
        num_nodes=2,
        node=NodeConfig(rmc=RMCConfig(ct_cache_entries=ct_cache_entries)))
    cluster = Cluster(config=config)
    gctx = cluster.create_global_context(1, 32 * PAGE_SIZE)
    session = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    lbuf = session.alloc_buffer(4096)
    stats = LatencyStat()

    def app(sim):
        for i in range(READS):
            start = sim.now
            yield from session.read_sync(1, (i % 16) * 64, lbuf, 64)
            if i >= 4:
                stats.record(sim.now - start)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    server_rmc = cluster.nodes[1].rmc
    return {
        "latency_ns": stats.mean,
        "ct_hit_rate": server_rmc.ct_cache.hit_rate,
        "maq_accesses": server_rmc.mmu.maq.total_acquires,
    }


def _measure():
    return _run(ct_cache_entries=8), _run(ct_cache_entries=0)


def test_ablation_ct_cache(benchmark):
    with_ct, without_ct = run_once(benchmark, _measure)
    print_table(
        "Ablation: CT$ on/off at the serving RMC (40 remote reads)",
        ["configuration", "latency (ns)", "CT$ hit rate", "MAQ accesses"],
        [("CT$ enabled (8 entries)", with_ct["latency_ns"],
          with_ct["ct_hit_rate"], with_ct["maq_accesses"]),
         ("CT$ disabled", without_ct["latency_ns"],
          without_ct["ct_hit_rate"], without_ct["maq_accesses"])])

    # The CT$ serves (almost) every request after the first.
    assert with_ct["ct_hit_rate"] > 0.9
    assert without_ct["ct_hit_rate"] == 0.0
    # Without it, each of the 40 requests issues one extra CT access
    # through the MAQ — the "pressure" §4.3 describes.
    extra = without_ct["maq_accesses"] - with_ct["maq_accesses"]
    assert extra >= READS - 2
    # End-to-end latency does not regress (CT line is cache-resident).
    assert without_ct["latency_ns"] >= with_ct["latency_ns"] * 0.99
    assert without_ct["latency_ns"] < with_ct["latency_ns"] + 100
