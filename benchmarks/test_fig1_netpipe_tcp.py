"""Fig. 1 — Netpipe benchmark on a Calxeda microserver (commodity TCP).

Paper: "we observe high latency (in excess of 40us) for small packet
sizes and poor bandwidth scalability (under 2 Gbps) with large packets"
over a 10 Gb/s integrated fabric (§2.2).
"""

from conftest import print_table, run_once

from repro.baselines import TCPNetworkModel

SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144, 524288)


def _sweep():
    return TCPNetworkModel().netpipe_sweep(SIZES)


def test_fig1_netpipe_tcp(benchmark):
    rows = run_once(benchmark, _sweep)
    print_table("Fig. 1: netpipe over commodity TCP (Calxeda-class)",
                ["size (B)", "latency (us)", "bandwidth (Gbps)"], rows)

    by_size = {size: (lat, bw) for size, lat, bw in rows}

    # Small-message latency exceeds 40 us (the paper's headline).
    assert by_size[64][0] > 40.0
    # Bandwidth never reaches 2 Gb/s despite the 10 Gb/s fabric.
    assert max(bw for _s, _l, bw in rows) < 2.0
    # Latency is monotonically non-decreasing with size.
    latencies = [lat for _s, lat, _bw in rows]
    assert all(a <= b * 1.001 for a, b in zip(latencies, latencies[1:]))
    # The local-DRAM comparison the paper draws: ~3 orders of magnitude.
    assert by_size[64][0] * 1000.0 / 100.0 > 300  # vs ~100 ns local DRAM
