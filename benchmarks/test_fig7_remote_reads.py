"""Fig. 7 — remote read latency and bandwidth (§7.2).

7a: simulated HW latency ~300 ns for small reads, within ~4x of local
    DRAM; double-sided latency worsens at large sizes (cache contention).
7b: simulated HW bandwidth: ~10 M ops/s at 64 B; 9.6 GB/s at 8 KB (the
    DDR3-1600 practical maximum); double-sided delivers ~2x.
7c: development platform: ~1.5 us base latency (~5x sim'd HW), growing
    steeply with request size (software unrolling bottleneck).
"""

import pytest
from conftest import print_table, run_once

from repro.emulation import dev_platform_cluster_config
from repro.workloads import (
    local_dram_latency,
    remote_read_bandwidth,
    remote_read_latency,
)

SIZES = (64, 256, 1024, 4096, 8192)


def _fig7a():
    single = remote_read_latency(sizes=SIZES, iterations=10)
    double = remote_read_latency(sizes=SIZES, iterations=10,
                                 double_sided=True)
    local = local_dram_latency()
    return single, double, local


def test_fig7a_read_latency_simulated_hw(benchmark):
    single, double, local = run_once(benchmark, _fig7a)
    rows = [(s.size, s.mean_us, d.mean_us)
            for s, d in zip(single, double)]
    print_table("Fig. 7a: remote read latency, sim'd HW (us)",
                ["size (B)", "single-sided", "double-sided"], rows)
    print_table("local DRAM anchor", ["metric", "value"],
                [("local read (ns)", local),
                 ("remote/local ratio @64B", single[0].mean_ns / local)])

    # ~300 ns small reads, within a small factor (~4x) of local DRAM.
    assert 200 < single[0].mean_ns < 450
    assert single[0].mean_ns / local < 5.0
    # Latency grows with request size but stays sub-2us through 8KB
    # (hardware unrolling pipelines the lines).
    assert single[-1].mean_ns < 2000
    means = [r.mean_ns for r in single]
    assert all(a <= b * 1.05 for a, b in zip(means, means[1:]))
    # Double-sided is no better than single-sided at large sizes
    # (both nodes serve requests and absorb reply data).
    assert double[-1].mean_ns >= single[-1].mean_ns * 0.95


def _fig7b():
    single = remote_read_bandwidth(sizes=SIZES, requests=100, warmup=15)
    double = remote_read_bandwidth(sizes=(8192,), requests=100, warmup=15,
                                   double_sided=True)
    return single, double


def test_fig7b_read_bandwidth_simulated_hw(benchmark):
    single, double = run_once(benchmark, _fig7b)
    rows = [(r.size, r.gbps, r.gbytes_per_sec, r.mops) for r in single]
    rows.append(("8192 (2-sided)", double[0].gbps,
                 double[0].gbytes_per_sec, double[0].mops))
    print_table("Fig. 7b: remote read bandwidth, sim'd HW",
                ["size (B)", "Gbps", "GB/s", "Mops/s"], rows)

    by_size = {r.size: r for r in single}
    # ~10 M 64-byte operations per second per core.
    assert 7.0 < by_size[64].mops < 15.0
    # 8 KB requests saturate the DDR3-1600 channel (~9.6 GB/s).
    assert 8.5 < by_size[8192].gbytes_per_sec < 11.0
    # Bandwidth rises with request size until the DRAM channel
    # saturates, then plateaus (no strict ordering within the plateau).
    series = [r.gbytes_per_sec for r in single]
    assert all(b > a * 0.97 for a, b in zip(series, series[1:]))
    assert series[-1] > 3 * series[0]
    # Decoupled pipelines: double-sided delivers ~2x aggregate.
    assert double[0].gbytes_per_sec > 1.6 * by_size[8192].gbytes_per_sec


def _fig7c():
    config = dev_platform_cluster_config(2)
    return remote_read_latency(sizes=SIZES, iterations=6,
                               cluster_config=config)


def test_fig7c_read_latency_dev_platform(benchmark):
    rows_data = run_once(benchmark, _fig7c)
    rows = [(r.size, r.mean_us) for r in rows_data]
    print_table("Fig. 7c: remote read latency, dev platform (us)",
                ["size (B)", "latency"], rows)

    # Base latency ~1.5 us, which is ~5x the simulated hardware.
    assert 1.0 < rows_data[0].mean_us < 2.5
    # Software unrolling: latency grows steeply (superlinear in lines) —
    # 8 KB (128 lines) costs >> 128x the per-line budget of the base.
    assert rows_data[-1].mean_us > 10 * rows_data[0].mean_us
    # Strictly increasing across the sweep.
    means = [r.mean_us for r in rows_data]
    assert all(a < b for a, b in zip(means, means[1:]))
