"""Latency decomposition of a small remote read (§7.2's narrative).

"For small request sizes, the latency is around 300ns, of which 80ns
are attributed to accessing the memory (cache hierarchy and DRAM
combined) at the remote node and 100ns to round-trip socket-to-socket
link latency."

The bench separates the three components experimentally:

* link round trip — from the fabric configuration (2 x 50 ns);
* remote memory — measured as the latency difference between reads that
  miss to DRAM at the destination and reads served from the
  destination's LLC (the destination core touches the target line first
  for the warm case);
* everything else (RMC pipelines, WQ/CQ interaction, software issue and
  poll) — the residual.
"""

from conftest import print_table, run_once

from repro.cluster import Cluster, ClusterConfig
from repro.runtime import RMCSession
from repro.sim import LatencyStat
from repro.vm import PAGE_SIZE

CTX = 1
REGION = 6 * 1024 * 1024  # exceeds the LLC: cold reads miss to DRAM


def _measure(warm: bool, reads: int = 16):
    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    gctx = cluster.create_global_context(CTX, REGION + (1 << 20))
    session = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    lbuf = session.alloc_buffer(4096)
    stats = LatencyStat()
    stride = 128 * 1024
    offsets = [(i * stride) % REGION for i in range(reads + 4)]

    server = cluster.nodes[1]
    server_entry = gctx.entry(1)

    def server_warmer(sim):
        """Touch every target line so remote reads hit the LLC."""
        space = server_entry.address_space
        base = server_entry.segment.base_vaddr
        for offset in offsets:
            yield from server.core.mem_write(space, base + offset,
                                             b"\x55" * 64)

    def reader(sim):
        if warm:
            yield sim.timeout(50_000)  # after the warmer finished
        for i, offset in enumerate(offsets):
            start = sim.now
            yield from session.read_sync(1, offset, lbuf, 64)
            if i >= 4:
                stats.record(sim.now - start)

    if warm:
        cluster.sim.process(server_warmer(cluster.sim))
    cluster.sim.process(reader(cluster.sim))
    cluster.run()
    return stats.mean, cluster.config.fabric.link_latency_ns


def _breakdown():
    cold, link_latency = _measure(warm=False)
    warm, _ = _measure(warm=True)
    memory_component = cold - warm  # DRAM visit minus LLC visit at dest
    link_rtt = 2 * link_latency
    residual = warm - link_rtt     # pipelines + queues + software
    return {
        "total_cold_ns": cold,
        "total_warm_ns": warm,
        "memory_ns": memory_component,
        "link_rtt_ns": link_rtt,
        "residual_ns": residual,
    }


def test_latency_breakdown(benchmark):
    parts = run_once(benchmark, _breakdown)
    print_table(
        "Remote 64B read latency decomposition (paper: ~300 = 80 mem "
        "+ 100 link + rest)",
        ["component", "ns"],
        [("total (destination DRAM)", parts["total_cold_ns"]),
         ("total (destination LLC)", parts["total_warm_ns"]),
         ("remote memory (DRAM - LLC)", parts["memory_ns"]),
         ("link round trip", parts["link_rtt_ns"]),
         ("pipelines + queues + software", parts["residual_ns"])])

    # The paper's composition, within generous bands.
    assert 250 < parts["total_cold_ns"] < 400       # ~300 ns
    assert 50 < parts["memory_ns"] < 110            # ~80 ns
    assert parts["link_rtt_ns"] == 100.0            # 2 x 50 ns
    assert 50 < parts["residual_ns"] < 200          # the rest
    # Sanity: components sum back to the cold total.
    total = parts["memory_ns"] + parts["link_rtt_ns"] \
        + parts["residual_ns"]
    assert abs(total - parts["total_cold_ns"]) < 1.0
