"""Ablation — hardware vs software request unrolling.

DESIGN.md calls out the ITT-driven hardware unroll as a key design
choice: the dev platform's §7.2 observation ("the RMC emulation module
becomes the performance bottleneck as it unrolls large WQ requests")
is exactly what this ablation isolates, holding *everything else*
(fabric, cores, memory) at simulated-hardware values and only moving
unrolling into software.
"""

from conftest import print_table, run_once

from repro.cluster import ClusterConfig
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.workloads import remote_read_latency

SIZES = (64, 1024, 8192)
SOFTWARE_UNROLL_NS = 280.0


def _sweep():
    hardware = remote_read_latency(sizes=SIZES, iterations=6)
    sw_config = ClusterConfig(
        num_nodes=2,
        node=NodeConfig(rmc=RMCConfig(unroll_overhead_ns=SOFTWARE_UNROLL_NS)))
    software = remote_read_latency(sizes=SIZES, iterations=6,
                                   cluster_config=sw_config)
    return hardware, software


def test_ablation_hw_vs_sw_unrolling(benchmark):
    hardware, software = run_once(benchmark, _sweep)
    rows = [(h.size, h.mean_us, s.mean_us, s.mean_ns / h.mean_ns)
            for h, s in zip(hardware, software)]
    print_table("Ablation: request unrolling (latency, us)",
                ["size (B)", "hardware ITT", "software", "slowdown"], rows)

    by = {h.size: (h.mean_ns, s.mean_ns)
          for h, s in zip(hardware, software)}
    # Single-line requests barely notice (one unroll step).
    assert by[64][1] < by[64][0] + 2 * SOFTWARE_UNROLL_NS
    # 8 KB (128 lines) pays ~128 serialized software steps: the software
    # path is an order of magnitude slower at large sizes.
    assert by[8192][1] > 8 * by[8192][0]
    # Hardware unrolling keeps 8 KB within ~5x of the 64 B latency
    # (lines pipeline through the fabric and destination memory).
    assert by[8192][0] < 5 * by[64][0]
