"""Ablation — MAQ depth (outstanding RMC memory accesses) vs bandwidth.

"the RMC allows multiple concurrent memory accesses in flight via a
Memory Access Queue (MAQ) ... The number of outstanding operations is
limited by the number of miss status handling registers" (§4.3).
Table 1 fixes the MAQ at 32 entries; this ablation shows why: the
destination's DRAM pipeline needs tens of in-flight line reads to
saturate, so a shallow MAQ caps remote read bandwidth well below the
channel's capability.
"""

from conftest import print_table, run_once

from repro.cluster import ClusterConfig
from repro.node import NodeConfig
from repro.rmc import MMUConfig, RMCConfig
from repro.workloads import remote_read_bandwidth

DEPTHS = (1, 4, 32)


def _sweep():
    results = []
    for depth in DEPTHS:
        config = ClusterConfig(
            num_nodes=2,
            node=NodeConfig(rmc=RMCConfig(mmu=MMUConfig(maq_entries=depth))))
        row = remote_read_bandwidth(sizes=(8192,), requests=60, warmup=10,
                                    cluster_config=config)[0]
        results.append((depth, row.gbytes_per_sec))
    return results


def test_ablation_maq_depth(benchmark):
    results = run_once(benchmark, _sweep)
    print_table("Ablation: MAQ depth vs 8KB remote read bandwidth",
                ["MAQ entries", "GB/s"], results)

    by_depth = dict(results)
    # Bandwidth grows with MAQ depth (more memory-level parallelism).
    assert by_depth[1] < by_depth[4] < by_depth[32]
    # A single-entry MAQ serializes every line's DRAM access: it cannot
    # reach even half of the channel's effective bandwidth.
    assert by_depth[1] < 0.5 * by_depth[32]
    # 32 entries (Table 1) saturate the DDR3-1600 channel.
    assert by_depth[32] > 8.5
