"""Ablation — fault rate vs remote read goodput.

The reliability layer (CRC trailer, link sequencing, RGP watchdog
retransmission) turns a lossy fabric into a usable one: applications
see correct data at every loss rate, paying only in throughput. This
sweep measures that cost — goodput degrades gracefully with the drop
rate instead of falling off a cliff — and pins the zero-fault case to
the exact timing of a fabric with no injector installed at all.
"""

from conftest import print_table, run_once

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FaultInjector, FaultPolicy
from repro.node import NodeConfig
from repro.rmc import RMCConfig
from repro.runtime import RMCSession
from repro.vm import PAGE_SIZE

CTX = 1
SEG = 64 * PAGE_SIZE
RATES = (0.0, 0.005, 0.01, 0.02, 0.05)
READ_BYTES = 2048
READS = 60


def _goodput_mbps(drop_rate, install_injector=True):
    """Sequential sync-read goodput under the given drop rate.

    Returns (goodput MB/s, retransmissions, end time ns)."""
    cluster = Cluster(config=ClusterConfig(
        num_nodes=2,
        node=NodeConfig(rmc=RMCConfig(retransmit_timeout_ns=5000.0))))
    if install_injector:
        cluster.fabric.install_fault_injector(FaultInjector(
            seed=1234, default_policy=FaultPolicy(drop_prob=drop_rate)))
    gctx = cluster.create_global_context(CTX, SEG)
    session = RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0))
    cluster.poke_segment(1, CTX, 0, bytes(range(256)) * (READ_BYTES // 256))
    done = {}

    def app(sim):
        lbuf = session.alloc_buffer(8192)
        for _ in range(READS):
            yield from session.read_sync(1, 0, lbuf, READ_BYTES)
        done["t_ns"] = sim.now
        done["data"] = session.buffer_peek(lbuf, READ_BYTES)

    cluster.sim.process(app(cluster.sim))
    cluster.run(until=500_000_000)
    assert done["data"] == bytes(range(256)) * (READ_BYTES // 256)
    counters = cluster.nodes[0].rmc.counters.as_dict()
    goodput = READS * READ_BYTES / done["t_ns"] * 1000.0  # MB/s
    return goodput, counters.get("retransmissions", 0), done["t_ns"]


def _sweep():
    return [(rate, *_goodput_mbps(rate)) for rate in RATES]


def test_ablation_fault_rate(benchmark):
    results = run_once(benchmark, _sweep)
    print_table("Ablation: link drop rate vs 2KB remote read goodput",
                ["drop rate", "MB/s", "retransmits", "end ns"],
                results)

    by_rate = {rate: (mbps, rtx, t_ns) for rate, mbps, rtx, t_ns
               in results}
    # An installed-but-idle injector is timing-invisible: the zero-rate
    # run matches a fabric with no injector at all, bit for bit.
    baseline = _goodput_mbps(0.0, install_injector=False)
    assert by_rate[0.0] == baseline
    assert by_rate[0.0][1] == 0  # no spurious retransmissions
    # Loss costs throughput (retransmission timeouts), never correctness.
    assert by_rate[0.05][1] > by_rate[0.005][1] > 0
    assert by_rate[0.05][0] < by_rate[0.005][0] < by_rate[0.0][0]
    # Degradation is graceful: even at 5% loss the workload completes
    # with usable goodput, not a collapse.
    assert by_rate[0.05][0] > 0.05 * by_rate[0.0][0]
