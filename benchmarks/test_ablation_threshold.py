"""Ablation — messaging push/pull threshold sweep (generalizing Fig. 8).

The paper sets the boundary "at compile time" and reports 256 B optimal
on simulated hardware and 1 KB on the development platform. This
ablation sweeps the threshold across message sizes and verifies the
crossover structure that makes those choices optimal.
"""

from conftest import print_table, run_once

from repro.workloads import send_recv_latency

THRESHOLDS = (0, 64, 256, 1024, 1 << 30)
SIZES = (48, 192, 768)


def _sweep():
    table = {}
    for threshold in THRESHOLDS:
        rows = send_recv_latency(sizes=SIZES, threshold=threshold,
                                 rounds=6)
        table[threshold] = {r.size: r.latency_us for r in rows}
    return table


def test_ablation_threshold_sweep(benchmark):
    table = run_once(benchmark, _sweep)
    rows = []
    for size in SIZES:
        rows.append((size, *(table[t][size] for t in THRESHOLDS)))
    print_table(
        "Ablation: half-duplex latency (us) vs push/pull threshold",
        ["size (B)", "thr=0", "thr=64", "thr=256", "thr=1K", "thr=inf"],
        rows)

    # For a 48 B message, any threshold >= 64 pushes; pulling (thr=0)
    # pays the descriptor round-trip and is strictly worse.
    assert table[256][48] < table[0][48]
    assert table[1024][48] < table[0][48]
    # For a 768 B message (16 push chunks), pulling wins: thresholds
    # below the size beat the push-everything setting.
    assert table[256][768] < table[1 << 30][768]
    assert table[64][768] < table[1 << 30][768]
    # The paper's 256 B choice is (weakly) optimal at every probed size.
    for size in SIZES:
        best = min(table[t][size] for t in THRESHOLDS)
        assert table[256][size] <= best * 1.15
