"""Kernel microbenchmarks: raw event throughput of the simulation engine.

Each benchmark drives a fixed number of modeled operations through the
kernel and reports wall seconds + operations/second (best of N reps).
The suite runs unchanged against older engine revisions (it feature-
detects ``call_later``), which is how ``baseline.json`` was captured at
the pre-optimization HEAD.

Usage::

    python benchmarks/perf/bench_kernel.py --out BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys

if __package__ in (None, ""):
    from _common import geomean, measure, peak_rss_kb, write_json
else:
    from ._common import geomean, measure, peak_rss_kb, write_json

from repro.sim import Simulator, Store

SCHEMA = "bench_kernel/v1"


def bench_timeout_chain(n: int) -> int:
    """One process sleeping through n explicit Timeout objects."""
    sim = Simulator()

    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.process(proc())
    sim.run()
    return n


def bench_delay_chain(n: int) -> int:
    """One process sleeping through n bare-number yields (the fast-path
    idiom used by the component hot loops)."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield 1.0

    sim.process(proc())
    sim.run()
    return n


def bench_zero_delay(n: int) -> int:
    """n zero-delay yields: same-timestamp handoffs that never need the
    heap."""
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield None

    sim.process(proc())
    sim.run()
    return n


def bench_store_pingpong(n: int) -> int:
    """Two processes trading items through a pair of Stores."""
    sim = Simulator()
    a = Store(sim)
    b = Store(sim)
    rounds = n // 2

    def ping():
        for _ in range(rounds):
            yield a.put(1)
            yield b.get()

    def pong():
        for _ in range(rounds):
            yield a.get()
            yield b.put(1)

    sim.process(ping())
    sim.process(pong())
    sim.run()
    return rounds * 4


def bench_deferred_fanout(n: int) -> int:
    """A chain of n deferred callbacks (``call_later``); on engines
    without the primitive, the pre-elision equivalent: one spawned
    process per callback."""
    sim = Simulator()
    count = [0]

    if hasattr(sim, "call_later"):
        def tick():
            count[0] += 1
            if count[0] < n:
                sim.call_later(1.0, tick)

        sim.call_later(1.0, tick)
    else:
        def tick_proc():
            yield 1.0
            count[0] += 1
            if count[0] < n:
                sim.process(tick_proc())

        sim.process(tick_proc())
    sim.run()
    return n


BENCHES = {
    "timeout_chain": bench_timeout_chain,
    "delay_chain": bench_delay_chain,
    "zero_delay": bench_zero_delay,
    "store_pingpong": bench_store_pingpong,
    "deferred_fanout": bench_deferred_fanout,
}


def run_suite(events: int, repeat: int) -> dict:
    results = {}
    for name, fn in BENCHES.items():
        results[name] = measure(lambda fn=fn: fn(events), repeat=repeat)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000,
                        help="modeled operations per benchmark")
    parser.add_argument("--repeat", type=int, default=5,
                        help="repetitions per benchmark (min is reported)")
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline.json to compute speedups against")
    args = parser.parse_args(argv)

    results = run_suite(args.events, args.repeat)

    aggregate = {
        "events_per_sec_geomean": geomean(
            r["events_per_sec"] for r in results.values()),
        "speedup_vs_baseline": None,
    }
    if args.baseline:
        import json
        with open(args.baseline) as fh:
            base = json.load(fh)["results"]
        ratios = [results[name]["events_per_sec"] / base[name]
                  for name in results if name in base]
        if ratios:
            aggregate["speedup_vs_baseline"] = geomean(ratios)

    payload = {
        "schema": SCHEMA,
        "config": {
            "events": args.events,
            "repeat": args.repeat,
            "python": sys.version.split()[0],
        },
        "results": results,
        "peak_rss_kb": peak_rss_kb(),
        "aggregate": aggregate,
    }
    write_json(args.out, payload)
    for name, r in results.items():
        print(f"  {name:18s} {r['events_per_sec'] / 1e6:7.3f} M events/s"
              f"  ({r['wall_s']:.3f} s)")
    if aggregate["speedup_vs_baseline"] is not None:
        print(f"  speedup vs baseline: "
              f"{aggregate['speedup_vs_baseline']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
