"""Workload-level wall-clock benchmarks: full soNUMA stacks end to end.

Where :mod:`bench_kernel` measures the bare engine, these drive the
complete model — RMC pipelines, MMU, caches, fabric — through the
paper's workloads and report wall seconds, simulated-operation
throughput, and kernel events/second (when the engine exposes an event
counter, which the optimized engine does via per-run totals).

Usage::

    python benchmarks/perf/bench_workloads.py --out BENCH_workloads.json
"""

from __future__ import annotations

import argparse
import sys
import time

if __package__ in (None, ""):
    from _common import peak_rss_kb, write_json
else:
    from ._common import peak_rss_kb, write_json

from repro.workloads.microbench import remote_read_latency
from repro.workloads.netpipe import send_recv_latency
from repro.workloads.pagerank_sweep import pagerank_speedups

SCHEMA = "bench_workloads/v1"


def _timed(fn, repeat: int):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
        if wall < best:
            best = wall
    return best


def bench_netpipe_sweep(repeat: int) -> dict:
    """The Fig. 1-style send/recv latency sweep (messaging stack)."""
    sizes = (32, 128, 512, 2048)
    rounds = 8
    wall = _timed(lambda: send_recv_latency(sizes=sizes, threshold=256,
                                            rounds=rounds), repeat)
    return {
        "wall_s": wall,
        "messages": len(sizes) * rounds,
        "messages_per_sec": len(sizes) * rounds / wall,
    }


def bench_remote_reads(repeat: int) -> dict:
    """The Fig. 7-style one-sided remote-read latency ladder."""
    sizes = (64, 512, 4096)
    iterations = 8
    wall = _timed(lambda: remote_read_latency(sizes=sizes,
                                              iterations=iterations), repeat)
    return {
        "wall_s": wall,
        "reads": len(sizes) * iterations,
        "reads_per_sec": len(sizes) * iterations / wall,
    }


def bench_pagerank_iteration(repeat: int) -> dict:
    """One PageRank speedup point (Fig. 9): the three sharing models on
    a two-node cluster."""
    wall = _timed(lambda: pagerank_speedups(
        node_counts=(2,), num_vertices=1024, avg_degree=4,
        llc_total_bytes=32 * 1024), repeat)
    return {"wall_s": wall, "runs_per_sec": 1.0 / wall}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (min is reported)")
    parser.add_argument("--out", default="BENCH_workloads.json")
    args = parser.parse_args(argv)

    results = {
        "netpipe_sweep": bench_netpipe_sweep(args.repeat),
        "remote_reads": bench_remote_reads(args.repeat),
        "pagerank_iteration": bench_pagerank_iteration(args.repeat),
    }
    payload = {
        "schema": SCHEMA,
        "config": {
            "repeat": args.repeat,
            "python": sys.version.split()[0],
        },
        "results": results,
        "peak_rss_kb": peak_rss_kb(),
    }
    write_json(args.out, payload)
    for name, r in results.items():
        print(f"  {name:20s} {r['wall_s']:.3f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
