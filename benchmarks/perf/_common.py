"""Shared measurement utilities for the perf harness.

Methodology: each benchmark runs ``repeat`` times in-process and the
*minimum* wall time is reported. The minimum is the standard robust
estimator for microbenchmarks — noise (scheduler preemption, frequency
scaling, allocator state) only ever adds time, so the fastest repetition
is the closest observation of the true cost.
"""

from __future__ import annotations

import json
import pathlib
import resource
import sys
import time
from typing import Callable, Dict

# Make `python benchmarks/perf/bench_*.py` work from a clean checkout
# without the PYTHONPATH=src incantation.
_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

__all__ = ["measure", "peak_rss_kb", "geomean", "write_json", "SRC_ROOT"]

SRC_ROOT = _SRC


def measure(fn: Callable[[], int], repeat: int = 5) -> Dict[str, float]:
    """Run ``fn`` ``repeat`` times; return stats for the fastest rep.

    ``fn`` must return the number of kernel events it processed.
    """
    best_wall = float("inf")
    events = 0
    for _ in range(repeat):
        start = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def geomean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def write_json(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
