"""Parallel-engine benchmark: throughput and speedup across workers,
transports, and partition plans.

Runs the 8-node PageRank (bulk) and message-passing BFS workloads on
the conservative parallel engine across a (transport x plan x workers)
grid — ``process`` (pickle-over-pipe) vs ``shm`` (shared-memory rings),
``contiguous`` vs ``adaptive`` (profiled load-aware) partition plans —
verifying bit-exactness of results against the 1-worker run for every
combination, and sweeps the link-latency lookahead to show its effect
on the window count (smaller lookahead => more, shorter conservative
windows => more sync overhead).

Honesty notes, recorded in the JSON:

* ``host.usable_cpus`` — real speedup needs >= ``workers`` usable
  cores; this is ``len(os.sched_getaffinity(0))``, the CPUs this
  process may actually run on, which on pinned/containerized CI can be
  far fewer than ``os.cpu_count()``. On a starved host the process
  transport *loses* wall clock to synchronization; the numbers are
  still recorded as measured.
* ``balance_bound`` — the analytic ceiling on speedup from partition
  balance alone (total events / busiest partition's events). This is a
  property of the workload cut, not a measurement of this host —
  comparing it between the contiguous and adaptive rows isolates what
  the load-aware plan buys.
* ``coordination`` — coordinator-side overhead breakdown (grant
  round-trips, routing time, time blocked on worker reports, codec
  time) plus each partition's busy/blocked/send/serialize seconds.

Usage::

    python benchmarks/perf/bench_parallel.py --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

if __package__ in (None, ""):
    from _common import peak_rss_kb, write_json
else:
    from ._common import peak_rss_kb, write_json

from repro.apps.bfs import run_bfs_push
from repro.apps.graph import zipf_graph
from repro.apps.pagerank import run_sonuma_bulk
from repro.cluster.cluster import ClusterConfig
from repro.fabric.ni import FabricConfig
from repro.sim import PartitionPlan

SCHEMA = "bench_parallel/v2"

NUM_NODES = 8
DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_TRANSPORTS = ("process", "shm")
DEFAULT_PARTITIONS = ("contiguous", "adaptive")
DEFAULT_LOOKAHEADS = (10.0, 25.0, 50.0, 100.0)


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _config(link_latency_ns: float = 50.0) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=NUM_NODES,
        fabric=FabricConfig(flow_control="paired",
                            link_latency_ns=link_latency_ns))


def _engine_row(result, workers: int, transport: str,
                partition: str) -> dict:
    stats = result.telemetry.engine_stats
    busiest = max(p["events_processed"] for p in stats["partitions"])
    return {
        "workers": workers,
        "transport": stats.get("transport", transport),
        "partition": partition,
        "events": stats["total_events_processed"],
        "wall_s": stats["wall_s"],
        "events_per_sec": stats["events_per_sec"],
        "rounds": stats["rounds"],
        "sim_time_ns": result.elapsed_ns,
        #: Analytic: speedup ceiling from event balance alone.
        "balance_bound": (stats["total_events_processed"] / busiest
                          if busiest else 1.0),
        "eager_events": stats.get("eager_events_total", 0),
        "coordination": stats.get("coordination", {}),
        "worker_busy_s": sum(p.get("busy_s", 0.0)
                             for p in stats["partitions"]),
        "worker_blocked_s": sum(p.get("blocked_s", 0.0)
                                for p in stats["partitions"]),
        "worker_serialize_s": sum(p.get("serialize_s", 0.0)
                                  for p in stats["partitions"]),
    }


def _sweep(run_one, check_same, workers_list, transports, partitions):
    """(transport x partition x workers) grid with a shared 1-worker
    baseline row; every combination must be bit-identical to it."""
    rows = []
    reference = None
    for transport in transports:
        for partition in partitions:
            for workers in workers_list:
                if workers <= 1:
                    if rows:
                        continue     # one baseline row is enough
                    spec = PartitionPlan.contiguous(NUM_NODES, 1)
                    label = "contiguous"
                else:
                    spec, label = partition, partition
                result = run_one(spec, workers, transport)
                if reference is None:
                    reference = result
                else:
                    check_same(result, reference, workers, transport,
                               label)
                rows.append(_engine_row(result, workers, transport,
                                        label))
    base_wall = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = base_wall / row["wall_s"] if row["wall_s"] else 0.0
    return rows


def bench_pagerank(vertices: int, supersteps: int, workers_list,
                   transports, partitions) -> dict:
    graph = zipf_graph(vertices, avg_degree=6, seed=7)

    def run_one(spec, workers, transport):
        return run_sonuma_bulk(
            graph, NUM_NODES, supersteps=supersteps,
            cluster_config=_config(), workers=workers,
            partition=spec, transport=transport)

    def check_same(result, reference, workers, transport, partition):
        assert result.ranks == reference.ranks, \
            f"pagerank not bit-identical at {workers} workers " \
            f"({transport}/{partition})"
        assert result.elapsed_ns == reference.elapsed_ns

    rows = _sweep(run_one, check_same, workers_list, transports,
                  partitions)
    return {"workload": "pagerank-bulk", "vertices": vertices,
            "supersteps": supersteps, "nodes": NUM_NODES,
            "bit_identical": True, "rows": rows}


def bench_bfs(vertices: int, workers_list, transports,
              partitions) -> dict:
    graph = zipf_graph(vertices, avg_degree=6, seed=17)

    def run_one(spec, workers, transport):
        return run_bfs_push(
            graph, NUM_NODES, source=0, cluster_config=_config(),
            workers=workers, partition=spec, transport=transport)

    def check_same(result, reference, workers, transport, partition):
        assert result.distances == reference.distances, \
            f"bfs not bit-identical at {workers} workers " \
            f"({transport}/{partition})"
        assert result.elapsed_ns == reference.elapsed_ns

    rows = _sweep(run_one, check_same, workers_list, transports,
                  partitions)
    return {"workload": "bfs-push", "vertices": vertices,
            "nodes": NUM_NODES, "bit_identical": True, "rows": rows}


def bench_lookahead_sensitivity(vertices: int, supersteps: int,
                                lookaheads, workers: int,
                                transport: str) -> dict:
    """Lookahead = link latency: the window bound advances at least one
    lookahead past the globally earliest event, so halving it roughly
    doubles the number of conservative windows (sync rounds)."""
    graph = zipf_graph(vertices, avg_degree=6, seed=7)
    rows = []
    for link_ns in lookaheads:
        result = run_sonuma_bulk(
            graph, NUM_NODES, supersteps=supersteps,
            cluster_config=_config(link_latency_ns=link_ns),
            partition=PartitionPlan.contiguous(NUM_NODES, workers),
            transport=transport)
        stats = result.telemetry.engine_stats
        rows.append({
            "link_latency_ns": link_ns,
            "rounds": stats["rounds"],
            "wall_s": stats["wall_s"],
            "events": stats["total_events_processed"],
            "events_per_sec": stats["events_per_sec"],
            "sim_time_ns": result.elapsed_ns,
        })
    return {"workload": "pagerank-bulk", "workers": workers,
            "transport": transport, "vertices": vertices,
            "supersteps": supersteps, "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(DEFAULT_WORKERS))
    parser.add_argument("--vertices", type=int, default=192)
    parser.add_argument("--supersteps", type=int, default=2)
    parser.add_argument("--bfs-vertices", type=int, default=256)
    parser.add_argument("--transports", nargs="+",
                        choices=["process", "inline", "shm"],
                        default=list(DEFAULT_TRANSPORTS))
    parser.add_argument("--partitions", nargs="+",
                        choices=["contiguous", "adaptive"],
                        default=list(DEFAULT_PARTITIONS))
    parser.add_argument("--lookaheads", type=float, nargs="+",
                        default=list(DEFAULT_LOOKAHEADS))
    parser.add_argument("--sensitivity-workers", type=int, default=2)
    parser.add_argument("--skip-sensitivity", action="store_true")
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    print(f"parallel engine benchmark — {NUM_NODES} simulated nodes, "
          f"workers {args.workers}, transports {args.transports}, "
          f"partitions {args.partitions} "
          f"(host: {_usable_cpus()} usable cpus)")

    pagerank = bench_pagerank(args.vertices, args.supersteps,
                              args.workers, args.transports,
                              args.partitions)
    bfs = bench_bfs(args.bfs_vertices, args.workers, args.transports,
                    args.partitions)
    sensitivity = None
    if not args.skip_sensitivity:
        sensitivity = bench_lookahead_sensitivity(
            args.vertices, args.supersteps, args.lookaheads,
            args.sensitivity_workers, args.transports[0])

    payload = {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": _usable_cpus(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "note": "speedup > 1 requires at least `workers` usable "
                    "cores (sched_getaffinity, not cpu_count); "
                    "balance_bound is the analytic ceiling from "
                    "partition event balance, independent of this host",
        },
        "config": {
            "nodes": NUM_NODES,
            "transports": list(args.transports),
            "partitions": list(args.partitions),
            "workers": list(args.workers),
        },
        "workloads": [pagerank, bfs],
        "lookahead_sensitivity": sensitivity,
        "peak_rss_kb": peak_rss_kb(),
    }
    write_json(args.out, payload)

    for case in (pagerank, bfs):
        print(f"  {case['workload']}:")
        for row in case["rows"]:
            print(f"    w={row['workers']} {row['transport']:>7}/"
                  f"{row['partition']:<10} "
                  f"{row['events_per_sec']:>10,.0f} ev/s  "
                  f"wall={row['wall_s']:.3f}s  "
                  f"speedup={row['speedup']:.2f}x  "
                  f"(balance bound {row['balance_bound']:.2f}x, "
                  f"{row['rounds']} rounds, "
                  f"blocked {row['worker_blocked_s']:.2f}s)")
    if sensitivity:
        print("  lookahead sensitivity (pagerank, "
              f"{sensitivity['workers']} workers):")
        for row in sensitivity["rows"]:
            print(f"    L={row['link_latency_ns']:>5.0f} ns: "
                  f"{row['rounds']:>6} rounds  "
                  f"wall={row['wall_s']:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
