"""Parallel-engine benchmark: throughput and speedup across workers.

Runs the 8-node PageRank (bulk) and message-passing BFS workloads on
the conservative parallel engine at several worker counts, verifying
bit-exactness against the 1-worker run as it goes, and sweeps the
link-latency lookahead to show its effect on the window count (smaller
lookahead => more, shorter conservative windows => more sync overhead).

Honesty notes, recorded in the JSON:

* ``host.cpu_count`` — real speedup needs >= ``workers`` cores. On a
  single-core container the process transport *loses* wall clock to
  synchronization; the numbers are still recorded as measured.
* ``balance_bound`` — the analytic ceiling on speedup from partition
  balance alone (total events / busiest partition's events). This is a
  property of the workload cut, not a measurement of this host.

Usage::

    python benchmarks/perf/bench_parallel.py --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

if __package__ in (None, ""):
    from _common import peak_rss_kb, write_json
else:
    from ._common import peak_rss_kb, write_json

from repro.apps.bfs import run_bfs_push
from repro.apps.graph import zipf_graph
from repro.apps.pagerank import run_sonuma_bulk
from repro.cluster.cluster import ClusterConfig
from repro.fabric.ni import FabricConfig
from repro.sim import PartitionPlan

SCHEMA = "bench_parallel/v1"

NUM_NODES = 8
DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_LOOKAHEADS = (10.0, 25.0, 50.0, 100.0)


def _config(link_latency_ns: float = 50.0) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=NUM_NODES,
        fabric=FabricConfig(flow_control="paired",
                            link_latency_ns=link_latency_ns))


def _engine_row(result, workers: int) -> dict:
    stats = result.telemetry.engine_stats
    busiest = max(p["events_processed"] for p in stats["partitions"])
    return {
        "workers": workers,
        "events": stats["total_events_processed"],
        "wall_s": stats["wall_s"],
        "events_per_sec": stats["events_per_sec"],
        "rounds": stats["rounds"],
        "sim_time_ns": result.elapsed_ns,
        #: Analytic: speedup ceiling from event balance alone.
        "balance_bound": (stats["total_events_processed"] / busiest
                          if busiest else 1.0),
    }


def bench_pagerank(vertices: int, supersteps: int, workers_list,
                   transport: str) -> dict:
    graph = zipf_graph(vertices, avg_degree=6, seed=7)
    rows = []
    reference = None
    for workers in workers_list:
        result = run_sonuma_bulk(
            graph, NUM_NODES, supersteps=supersteps,
            cluster_config=_config(),
            partition=PartitionPlan.contiguous(NUM_NODES, workers),
            transport=transport)
        if reference is None:
            reference = result
        else:
            assert result.ranks == reference.ranks, \
                f"pagerank not bit-identical at {workers} workers"
            assert result.elapsed_ns == reference.elapsed_ns
        rows.append(_engine_row(result, workers))
    base_wall = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = base_wall / row["wall_s"] if row["wall_s"] else 0.0
    return {"workload": "pagerank-bulk", "vertices": vertices,
            "supersteps": supersteps, "nodes": NUM_NODES,
            "bit_identical": True, "rows": rows}


def bench_bfs(vertices: int, workers_list, transport: str) -> dict:
    graph = zipf_graph(vertices, avg_degree=6, seed=17)
    rows = []
    reference = None
    for workers in workers_list:
        result = run_bfs_push(
            graph, NUM_NODES, source=0, cluster_config=_config(),
            partition=PartitionPlan.contiguous(NUM_NODES, workers),
            transport=transport)
        if reference is None:
            reference = result
        else:
            assert result.distances == reference.distances, \
                f"bfs not bit-identical at {workers} workers"
            assert result.elapsed_ns == reference.elapsed_ns
        rows.append(_engine_row(result, workers))
    base_wall = rows[0]["wall_s"]
    for row in rows:
        row["speedup"] = base_wall / row["wall_s"] if row["wall_s"] else 0.0
    return {"workload": "bfs-push", "vertices": vertices,
            "nodes": NUM_NODES, "bit_identical": True, "rows": rows}


def bench_lookahead_sensitivity(vertices: int, supersteps: int,
                                lookaheads, workers: int,
                                transport: str) -> dict:
    """Lookahead = link latency: the window bound advances at least one
    lookahead past the globally earliest event, so halving it roughly
    doubles the number of conservative windows (sync rounds)."""
    graph = zipf_graph(vertices, avg_degree=6, seed=7)
    rows = []
    for link_ns in lookaheads:
        result = run_sonuma_bulk(
            graph, NUM_NODES, supersteps=supersteps,
            cluster_config=_config(link_latency_ns=link_ns),
            partition=PartitionPlan.contiguous(NUM_NODES, workers),
            transport=transport)
        stats = result.telemetry.engine_stats
        rows.append({
            "link_latency_ns": link_ns,
            "rounds": stats["rounds"],
            "wall_s": stats["wall_s"],
            "events": stats["total_events_processed"],
            "events_per_sec": stats["events_per_sec"],
            "sim_time_ns": result.elapsed_ns,
        })
    return {"workload": "pagerank-bulk", "workers": workers,
            "vertices": vertices, "supersteps": supersteps,
            "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(DEFAULT_WORKERS))
    parser.add_argument("--vertices", type=int, default=192)
    parser.add_argument("--supersteps", type=int, default=2)
    parser.add_argument("--bfs-vertices", type=int, default=256)
    parser.add_argument("--transport", choices=["process", "inline"],
                        default="process")
    parser.add_argument("--lookaheads", type=float, nargs="+",
                        default=list(DEFAULT_LOOKAHEADS))
    parser.add_argument("--sensitivity-workers", type=int, default=2)
    parser.add_argument("--skip-sensitivity", action="store_true")
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    print(f"parallel engine benchmark — {NUM_NODES} simulated nodes, "
          f"workers {args.workers}, transport {args.transport} "
          f"(host: {os.cpu_count()} cpus)")

    pagerank = bench_pagerank(args.vertices, args.supersteps,
                              args.workers, args.transport)
    bfs = bench_bfs(args.bfs_vertices, args.workers, args.transport)
    sensitivity = None
    if not args.skip_sensitivity:
        sensitivity = bench_lookahead_sensitivity(
            args.vertices, args.supersteps, args.lookaheads,
            args.sensitivity_workers, args.transport)

    payload = {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "note": "speedup > 1 requires at least `workers` physical "
                    "cores; balance_bound is the analytic ceiling from "
                    "partition event balance, independent of this host",
        },
        "config": {
            "nodes": NUM_NODES,
            "transport": args.transport,
            "workers": list(args.workers),
        },
        "workloads": [pagerank, bfs],
        "lookahead_sensitivity": sensitivity,
        "peak_rss_kb": peak_rss_kb(),
    }
    write_json(args.out, payload)

    for case in (pagerank, bfs):
        print(f"  {case['workload']}:")
        for row in case["rows"]:
            print(f"    workers={row['workers']}: "
                  f"{row['events_per_sec']:>10,.0f} ev/s  "
                  f"wall={row['wall_s']:.3f}s  "
                  f"speedup={row['speedup']:.2f}x  "
                  f"(balance bound {row['balance_bound']:.2f}x, "
                  f"{row['rounds']} rounds)")
    if sensitivity:
        print("  lookahead sensitivity (pagerank, "
              f"{sensitivity['workers']} workers):")
        for row in sensitivity["rows"]:
            print(f"    L={row['link_latency_ns']:>5.0f} ns: "
                  f"{row['rounds']:>6} rounds  "
                  f"wall={row['wall_s']:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
