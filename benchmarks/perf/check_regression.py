"""CI gate: fail when the kernel microbenchmark regresses too far.

Compares a fresh ``BENCH_kernel.json`` against the committed
``baseline.json`` and exits non-zero if the geomean slowdown exceeds the
allowed factor (default 2x, generous because CI machines are noisy and
heterogeneous; the gate exists to catch order-of-magnitude mistakes like
an accidentally quadratic heap, not 20% jitter).

Usage::

    python benchmarks/perf/check_regression.py \
        --bench BENCH_kernel.json --baseline benchmarks/perf/baseline.json

Exit codes (so CI can tell "slow" from "not configured"):

* ``0`` — within the allowed regression factor.
* ``1`` — geomean slowdown exceeds ``--max-regression``.
* ``2`` — baseline or bench file missing/unusable (no comparison ran).
"""

from __future__ import annotations

import argparse
import json

if __package__ in (None, ""):
    from _common import geomean
else:
    from ._common import geomean

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_NO_BASELINE = 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="BENCH_kernel.json")
    parser.add_argument("--baseline",
                        default="benchmarks/perf/baseline.json")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail if baseline/current exceeds this factor")
    args = parser.parse_args(argv)

    try:
        with open(args.bench) as fh:
            current = json.load(fh)["results"]
    except (FileNotFoundError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read bench file {args.bench}: {exc}")
        return EXIT_NO_BASELINE
    try:
        with open(args.baseline) as fh:
            base = json.load(fh)["results"]
    except (FileNotFoundError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}")
        return EXIT_NO_BASELINE

    ratios = {}
    for name, rate in base.items():
        if name in current:
            ratios[name] = current[name]["events_per_sec"] / rate
    if not ratios:
        print("no overlapping benchmarks between bench and baseline")
        return EXIT_NO_BASELINE

    overall = geomean(ratios.values())
    for name, ratio in sorted(ratios.items()):
        print(f"  {name:18s} {ratio:6.2f}x vs baseline")
    print(f"  geomean: {overall:.2f}x "
          f"(floor: {1.0 / args.max_regression:.2f}x)")

    if overall < 1.0 / args.max_regression:
        print(f"FAIL: kernel is more than {args.max_regression:.1f}x "
              "slower than the committed baseline")
        return EXIT_REGRESSION
    print("OK")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
