"""CI gate: fail when the kernel microbenchmark regresses too far.

Compares a fresh ``BENCH_kernel.json`` against the committed
``baseline.json`` and exits non-zero if the geomean slowdown exceeds the
allowed factor (default 2x, generous because CI machines are noisy and
heterogeneous; the gate exists to catch order-of-magnitude mistakes like
an accidentally quadratic heap, not 20% jitter).

With ``--transport-bench`` it additionally gates the transport
microbenchmark (``bench_transport.py``): the shm ring's enqueue
advantage over pickle-over-pipe must stay above
``--min-transport-speedup`` (default 3x, below the ~5x a healthy ring
shows, so scheduler noise cannot trip it but losing the ring's wait-free
handoff will).

With ``--serving-bench`` it gates the serving-tier benchmark
(``bench_serving.py``): doorbell batching must keep serving at least
``--min-serving-speedup`` (default 2x) the unbatched served-ops/sec at
the saturating-rate ablation config, with a no-worse batched p99 and
worker-count parity intact. These are *simulated* quantities — fully
deterministic, so unlike the wall-clock gates there is no noise margin
to reason about.

Usage::

    python benchmarks/perf/check_regression.py \
        --bench BENCH_kernel.json --baseline benchmarks/perf/baseline.json \
        --transport-bench BENCH_transport.json

Exit codes (so CI can tell "slow" from "not configured"):

* ``0`` — within the allowed regression factor.
* ``1`` — a gated metric regressed (kernel geomean slowdown exceeds
  ``--max-regression``, or transport speedup fell below the floor).
  A regression wins over a missing file when both happen.
* ``2`` — baseline or bench file missing/unusable (no comparison ran).
"""

from __future__ import annotations

import argparse
import json

if __package__ in (None, ""):
    from _common import geomean
else:
    from ._common import geomean

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_NO_BASELINE = 2


def check_transport(path: str, floor: float) -> int:
    """Gate the transport microbench: shm enqueue speedup >= floor."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
        speedup = float(payload["speedup"])
    except (FileNotFoundError, json.JSONDecodeError, KeyError,
            TypeError, ValueError) as exc:
        print(f"cannot read transport bench {path}: {exc}")
        return EXIT_NO_BASELINE
    print(f"  transport: shm ring {speedup:.2f}x pipe enqueue "
          f"(floor: {floor:.2f}x)")
    if speedup < floor:
        print(f"FAIL: shm transport no longer beats pickle-over-pipe "
              f"by {floor:.1f}x")
        return EXIT_REGRESSION
    return EXIT_OK


def check_serving(path: str, floor: float) -> int:
    """Gate the serving bench: batching speedup, tail, and parity."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
        speedup = float(payload["ablation"]["speedup"])
        batched = payload["ablation"]["batched"]
        unbatched = payload["ablation"]["unbatched"]
        parity = bool(payload["determinism"]["parity"])
    except (FileNotFoundError, json.JSONDecodeError, KeyError,
            TypeError, ValueError) as exc:
        print(f"cannot read serving bench {path}: {exc}")
        return EXIT_NO_BASELINE
    print(f"  serving: batched {speedup:.2f}x unbatched served ops/s "
          f"(floor: {floor:.2f}x), batched p99 {batched['p99_ns']:.0f} ns "
          f"vs unbatched {unbatched['p99_ns']:.0f} ns, parity={parity}")
    if speedup < floor:
        print(f"FAIL: doorbell batching no longer serves {floor:.1f}x "
              "the unbatched throughput at saturating load")
        return EXIT_REGRESSION
    if batched["p99_ns"] > unbatched["p99_ns"]:
        print("FAIL: batched fast path has a worse p99 than the "
              "unbatched one — batching is adding tail latency")
        return EXIT_REGRESSION
    if not parity:
        print("FAIL: serving outcome differs between worker counts — "
              "the scenario is no longer partition-invariant")
        return EXIT_REGRESSION
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="BENCH_kernel.json")
    parser.add_argument("--baseline",
                        default="benchmarks/perf/baseline.json")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail if baseline/current exceeds this factor")
    parser.add_argument("--transport-bench", default=None,
                        help="also gate a BENCH_transport.json speedup")
    parser.add_argument("--min-transport-speedup", type=float, default=3.0)
    parser.add_argument("--serving-bench", default=None,
                        help="also gate a BENCH_serving.json ablation")
    parser.add_argument("--min-serving-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    codes = []
    if args.transport_bench is not None:
        codes.append(check_transport(args.transport_bench,
                                     args.min_transport_speedup))
    if args.serving_bench is not None:
        codes.append(check_serving(args.serving_bench,
                                   args.min_serving_speedup))

    codes.append(check_kernel(args.bench, args.baseline,
                              args.max_regression))

    if EXIT_REGRESSION in codes:
        return EXIT_REGRESSION
    if EXIT_NO_BASELINE in codes:
        return EXIT_NO_BASELINE
    print("OK")
    return EXIT_OK


def check_kernel(bench: str, baseline: str, max_regression: float) -> int:
    try:
        with open(bench) as fh:
            current = json.load(fh)["results"]
    except (FileNotFoundError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read bench file {bench}: {exc}")
        return EXIT_NO_BASELINE
    try:
        with open(baseline) as fh:
            base = json.load(fh)["results"]
    except (FileNotFoundError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline {baseline}: {exc}")
        return EXIT_NO_BASELINE

    ratios = {}
    for name, rate in base.items():
        if name in current:
            ratios[name] = current[name]["events_per_sec"] / rate
    if not ratios:
        print("no overlapping benchmarks between bench and baseline")
        return EXIT_NO_BASELINE

    overall = geomean(ratios.values())
    for name, ratio in sorted(ratios.items()):
        print(f"  {name:18s} {ratio:6.2f}x vs baseline")
    print(f"  geomean: {overall:.2f}x "
          f"(floor: {1.0 / max_regression:.2f}x)")

    if overall < 1.0 / max_regression:
        print(f"FAIL: kernel is more than {max_regression:.1f}x "
              "slower than the committed baseline")
        return EXIT_REGRESSION
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
