"""Serving-tier benchmark: tail latency and throughput under open load.

Sweeps the million-client serving scenario
(:func:`repro.serving.run_serving`) over an offered-rate x doorbell-batch
x shard-count grid and reports, per cell, the served throughput and the
p50/p99/p999 latency quantiles plus availability (cluster-wide and the
worst shard). Three extra sections carry the headline results:

* ``ablation`` — batched (one doorbell + one issue overhead per batch)
  vs unbatched fast path at saturating offered load; ``speedup`` is the
  served-ops/sec ratio and is the CI gate metric
  (``check_regression.py --serving-bench``, floor 2x);
* ``chaos`` — the same scenario with a shard primary crashed mid-trace:
  availability stays 1.0 (backups absorb the crash) while the
  lease-expiry window lands in the crashed shard's p99 — the SLO cost
  of a failure, quantified;
* ``determinism`` — the trace digest plus a 1-worker vs 2-worker re-run
  of one grid cell; ``parity`` must be true (the outcome dict is
  bit-identical whatever the partitioning).

Simulated quantities (latency quantiles, served Mops, availability) are
exact properties of the model — unlike the wall-clock benches, no
repeat/min methodology is needed; one run per cell is deterministic.

Usage::

    python benchmarks/perf/bench_serving.py --out BENCH_serving.json
    python benchmarks/perf/bench_serving.py --quick   # CI-sized sweep
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

if __package__ in (None, ""):
    from _common import write_json
else:
    from ._common import write_json

from repro.serving import TraceConfig, generate_trace, run_serving, \
    trace_digest

SCHEMA = "bench_serving/v1"

#: The ablation/gate configuration: offered load far above the
#: unbatched fast path's ~8-9 Mops/s per-shard issue-bound capacity
#: (§7.5: per-core request rate is limited by issue overhead), so both
#: arms saturate and the served-rate ratio measures capacity, not load.
GATE = dict(num_shards=2, replication=1, rate_mops=48.0,
            duration_ns=30_000.0, num_keys=128, num_buckets=512,
            seed=5, window=64)


def _cell(rate: float, batch: int, shards: int, args) -> dict:
    out = run_serving(
        num_shards=shards, replication=1, rate_mops=rate,
        duration_ns=args.duration_ns, num_clients=args.clients,
        num_keys=args.keys, num_buckets=args.buckets, seed=args.seed,
        window=args.window, batch=batch)["outcome"]
    return _row(rate, batch, shards, out)


def _row(rate: float, batch: int, shards: int, out: dict) -> dict:
    worst = min(r["availability"] for r in out["shards"].values())
    return {
        "rate_mops": rate, "batch": batch, "num_shards": shards,
        "requests": out["num_requests"],
        "served": out["served"], "failed": out["failed"],
        "served_mops": out["served_mops"],
        "p50_ns": out["latency"]["p50_ns"],
        "p99_ns": out["latency"]["p99_ns"],
        "p999_ns": out["latency"]["p999_ns"],
        "availability": out["availability"],
        "worst_shard_availability": worst,
        "entries_per_doorbell": (out["posted"] / out["doorbells"]
                                 if out["doorbells"] else 0.0),
        "wrong": out["wrong"],
    }


def run_ablation(args) -> dict:
    gate = dict(GATE, num_clients=args.clients,
                duration_ns=min(GATE["duration_ns"], args.duration_ns)
                if args.quick else GATE["duration_ns"])
    unbatched = run_serving(batch=1, **gate)["outcome"]
    batched = run_serving(batch=args.gate_batch, **gate)["outcome"]
    return {
        "config": dict(gate, batch_batched=args.gate_batch,
                       batch_unbatched=1),
        "unbatched": _row(gate["rate_mops"], 1, gate["num_shards"],
                          unbatched),
        "batched": _row(gate["rate_mops"], args.gate_batch,
                        gate["num_shards"], batched),
        "speedup": (batched["served_mops"] / unbatched["served_mops"]
                    if unbatched["served_mops"] else 0.0),
    }


def run_chaos(args) -> dict:
    kw = dict(num_shards=3, replication=2, rate_mops=4.0,
              duration_ns=40_000.0, num_clients=args.clients,
              num_keys=96, num_buckets=256, seed=11, batch=args.gate_batch)
    quiet = run_serving(**kw)["outcome"]
    chaos = run_serving(crash_shard=1, crash_at_ns=12_000.0,
                        **kw)["outcome"]
    hit, calm = chaos["shards"][1], quiet["shards"][1]
    return {
        "config": dict(kw, crash_shard=1, crash_at_ns=12_000.0),
        "quiet": _row(kw["rate_mops"], kw["batch"], 3, quiet),
        "crashed": _row(kw["rate_mops"], kw["batch"], 3, chaos),
        "evictions": chaos["membership"]["evictions"],
        "failovers": hit["failovers"],
        #: SLO impact of the crash, isolated to the shard that lost its
        #: primary: p99 inflation while availability holds at 1.0.
        "crashed_shard_p99_ns": hit["latency"]["p99_ns"],
        "quiet_shard_p99_ns": calm["latency"]["p99_ns"],
        "p99_inflation": (hit["latency"]["p99_ns"]
                          / calm["latency"]["p99_ns"]
                          if calm["latency"]["p99_ns"] else 0.0),
        "availability_held": chaos["availability"] == 1.0,
    }


def run_determinism(args, rates, shards) -> dict:
    kw = dict(num_shards=shards[0], replication=1, rate_mops=rates[0],
              duration_ns=args.duration_ns, num_clients=args.clients,
              num_keys=args.keys, num_buckets=args.buckets,
              seed=args.seed, window=args.window, batch=args.gate_batch)
    serial = run_serving(workers=1, **kw)["outcome"]
    parallel = run_serving(workers=2, **kw)["outcome"]
    digest = trace_digest(generate_trace(TraceConfig(
        rate_mops=kw["rate_mops"], duration_ns=kw["duration_ns"],
        num_clients=args.clients, num_keys=args.keys, seed=args.seed)))
    return {
        "trace_digest": digest,
        "workers_checked": [1, 2],
        "parity": serial == parallel,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[8.0, 24.0, 48.0],
                        help="offered load grid, million req/s")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=[1, 8, 16],
                        help="doorbell batch / pipeline chunk grid")
    parser.add_argument("--shards", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--duration-ns", type=float, default=30_000.0)
    parser.add_argument("--clients", type=int, default=1_000_000,
                        help="logical client population (>= 1e6 for the "
                             "committed artifact)")
    parser.add_argument("--keys", type=int, default=128)
    parser.add_argument("--buckets", type=int, default=512)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--gate-batch", type=int, default=16,
                        help="batch size of the ablation's batched arm")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sweep (small grid, short trace)")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.rates = [8.0, 48.0]
        args.batches = [1, 16]
        args.shards = [2]
        args.duration_ns = min(args.duration_ns, 15_000.0)

    start = time.time()
    print(f"serving bench — rates {args.rates} Mops x batches "
          f"{args.batches} x shards {args.shards}, "
          f"{args.clients:,} logical clients")
    grid = []
    for shards in args.shards:
        for rate in args.rates:
            for batch in args.batches:
                row = _cell(rate, batch, shards, args)
                grid.append(row)
                print(f"  shards={shards} rate={rate:5.1f} "
                      f"batch={batch:2d}: served "
                      f"{row['served_mops']:6.2f} Mops  "
                      f"p50 {row['p50_ns']:7.0f}  "
                      f"p99 {row['p99_ns']:8.0f}  "
                      f"p999 {row['p999_ns']:8.0f} ns  "
                      f"avail {row['availability']:.4f}")

    ablation = run_ablation(args)
    print(f"  ablation @ {ablation['config']['rate_mops']} Mops: "
          f"batched {ablation['batched']['served_mops']:.2f} vs "
          f"unbatched {ablation['unbatched']['served_mops']:.2f} Mops "
          f"-> {ablation['speedup']:.2f}x")

    chaos = run_chaos(args)
    print(f"  chaos: availability held={chaos['availability_held']}, "
          f"{chaos['failovers']} failovers, crashed-shard p99 "
          f"{chaos['crashed_shard_p99_ns']:.0f} ns "
          f"({chaos['p99_inflation']:.1f}x quiet)")

    determinism = run_determinism(args, args.rates, args.shards)
    print(f"  determinism: parity={determinism['parity']} "
          f"digest={determinism['trace_digest'][:16]}...")

    write_json(args.out, {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
        },
        "config": {
            "rates_mops": list(args.rates),
            "batches": list(args.batches),
            "shards": list(args.shards),
            "duration_ns": args.duration_ns,
            "logical_clients": args.clients,
            "num_keys": args.keys,
            "num_buckets": args.buckets,
            "window": args.window,
            "seed": args.seed,
            "quick": bool(args.quick),
        },
        "logical_clients": args.clients,
        "grid": grid,
        "ablation": ablation,
        "chaos": chaos,
        "determinism": determinism,
        #: Gate metric: batched/unbatched served-throughput ratio at the
        #: saturating-rate configuration.
        "speedup": ablation["speedup"],
        "wall_s": time.time() - start,
    })
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
