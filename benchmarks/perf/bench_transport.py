"""Transport microbenchmark: pickle-over-pipe vs shared-memory rings.

Measures coordinator<->worker message throughput for the two
inter-process transports of the conservative parallel engine, using the
real protocol objects and the real codecs:

* ``pipe_pickle`` — a ``_Report`` dataclass sent through a
  ``multiprocessing.Pipe`` (the ``process`` transport's hot path:
  pickle, one syscall per message, kernel copy, unpickle);
* ``shm_ring`` — the same ``_Report`` run through the fixed-layout wire
  codec and an :class:`~repro.sim.ringbuf.SpscRing` over POSIX shared
  memory (the ``shm`` transport's hot path: no syscalls, no kernel
  copies, no general pickling for protocol traffic).

Each trial forks a consumer that drains ``--messages`` messages and
acks once. Two figures come out of it:

* ``enqueue_msgs_per_sec`` — the *sender-side handoff* rate: how fast
  the producer can put N messages in flight while the consumer drains
  concurrently. This is the gate metric
  (``check_regression.py --transport-bench``): the coordinator is the
  parallel engine's serial section, so its per-message cost is what
  bounds scalability. A pipe's few-KB kernel buffer fills almost
  immediately and every further ``send`` blocks on the consumer; the
  ring's capacity is a constructor argument, so the same burst stays
  wait-free.
* ``sustained_msgs_per_sec`` — end-to-end drain rate (until the
  consumer has decoded everything), reported for honesty. This is
  bounded by the slower side's per-message CPU cost and favors the ring
  far less, especially on hosts with slow cross-process shm visibility.

Usage::

    python benchmarks/perf/bench_transport.py --out BENCH_transport.json
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import platform
import struct
import sys
import time

if __package__ in (None, ""):
    from _common import write_json
else:
    from ._common import write_json

from repro.protocol import VirtualLane
from repro.sim.parallel import (MSG_CREDIT, RemoteMessage, _Report,
                                decode_wire, encode_wire)
from repro.sim.ringbuf import HEADER_BYTES, SpscRing

SCHEMA = "bench_transport/v1"

_ACK = struct.Struct("<Q")


def _sample_report(payload_msgs: int) -> _Report:
    """A representative worker report: ``payload_msgs`` cross-partition
    credit messages plus the scheduling fields (0 = the empty-outbox
    report that dominates real window rounds)."""
    outbox = tuple(
        RemoteMessage(arrival=1234.5 + i, dst_rank=1,
                      key=(1, 2, 3, 4, i), kind=MSG_CREDIT,
                      payload=(0, 1, VirtualLane.REQUEST, i))
        for i in range(payload_msgs))
    return _Report(outbox=outbox, next_event=2345.25, pending=3,
                   obligations=True, last_real=1111.0)


def _compute_tick() -> int:
    """~10-20 us of stand-in computation: what a worker does between
    ring drains when window execution overlaps communication."""
    x = 0
    for i in range(300):
        x += i
    return x


def _pipe_consumer(conn, count: int, pattern: str) -> None:
    got = 0
    while got < count:
        if pattern == "overlap":
            _compute_tick()
            while got < count and conn.poll(0):
                conn.recv()
                got += 1
        else:
            conn.recv()
            got += 1
    conn.send(count)


def bench_pipe(report: _Report, count: int, pattern: str) -> dict:
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_pipe_consumer, args=(child, count, pattern),
                       daemon=True)
    proc.start()
    child.close()
    t0 = time.perf_counter()
    for _ in range(count):
        parent.send(report)
    enqueue = time.perf_counter() - t0
    assert parent.recv() == count
    sustained = time.perf_counter() - t0
    proc.join()
    parent.close()
    return {"enqueue_msgs_per_sec": count / enqueue,
            "sustained_msgs_per_sec": count / sustained,
            "enqueue_wall_s": enqueue, "sustained_wall_s": sustained}


def _ring_consumer(shm, ring_in: SpscRing, ring_out: SpscRing,
                   count: int, pattern: str) -> None:
    got = 0
    while got < count:
        if pattern == "overlap":
            _compute_tick()
            while got < count:
                data = ring_in.pop(block=False)
                if data is None:
                    break
                decode_wire(data)
                got += 1
        else:
            decode_wire(ring_in.pop())
            got += 1
    ring_out.push(_ACK.pack(count))
    ring_in.release()
    ring_out.release()
    shm.close()


def bench_ring(report: _Report, count: int, ring_bytes: int,
               pattern: str) -> dict:
    from multiprocessing import shared_memory

    ctx = multiprocessing.get_context("fork")
    half = HEADER_BYTES + ring_bytes
    shm = shared_memory.SharedMemory(create=True, size=2 * half)
    view = shm.buf
    # Pre-fault the mapping so the timed region measures steady-state
    # ring traffic, not first-touch page faults on a fresh segment (the
    # real transport reuses its rings for the whole run).
    view[:] = bytes(len(view))
    # Rings are built before the fork and inherited by the child, the
    # same pattern the real shm transport uses (nothing is pickled).
    ring_out = SpscRing(view[:half], ring_bytes, create=True)
    ring_in = SpscRing(view[half:2 * half], ring_bytes, create=True)
    proc = ctx.Process(target=_ring_consumer,
                       args=(shm, ring_out, ring_in, count, pattern),
                       daemon=True)
    proc.start()
    t0 = time.perf_counter()
    for _ in range(count):
        ring_out.push(encode_wire(report))
    enqueue = time.perf_counter() - t0
    (acked,) = _ACK.unpack(ring_in.pop())
    sustained = time.perf_counter() - t0
    assert acked == count
    proc.join()
    ring_out.release()
    ring_in.release()
    shm.close()
    shm.unlink()
    return {"enqueue_msgs_per_sec": count / enqueue,
            "sustained_msgs_per_sec": count / sustained,
            "enqueue_wall_s": enqueue, "sustained_wall_s": sustained}


def run_case(payload_msgs: int, pattern: str, count: int, ring_bytes: int,
             repeats: int) -> dict:
    report = _sample_report(payload_msgs)
    wire = encode_wire(report)
    case = {"payload_msgs": payload_msgs, "pattern": pattern,
            "wire_bytes": len(wire), "messages": count}
    for name, fn in (("pipe_pickle",
                      lambda: bench_pipe(report, count, pattern)),
                     ("shm_ring",
                      lambda: bench_ring(report, count, ring_bytes,
                                         pattern))):
        best = None
        for _ in range(repeats):
            row = fn()
            if best is None or (row["enqueue_msgs_per_sec"]
                                > best["enqueue_msgs_per_sec"]):
                best = row
        case[name] = best
    case["enqueue_speedup"] = (
        case["shm_ring"]["enqueue_msgs_per_sec"]
        / case["pipe_pickle"]["enqueue_msgs_per_sec"])
    case["sustained_speedup"] = (
        case["shm_ring"]["sustained_msgs_per_sec"]
        / case["pipe_pickle"]["sustained_msgs_per_sec"])
    return case


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=15_000)
    parser.add_argument("--cases", nargs="+",
                        default=["0:overlap", "0:chase", "4:chase"],
                        help="payload:pattern pairs; 'overlap' drains in "
                             "batches between compute ticks (the engine's "
                             "overlapped-window shape), 'chase' consumes "
                             "every message immediately. The first case "
                             "carries the gate metric")
    parser.add_argument("--ring-bytes", type=int, default=8 << 20,
                        help="ring capacity; sized so the trial burst "
                             "stays wait-free, the ring's actual design "
                             "point (a pipe cannot be resized likewise)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N to shave scheduler noise")
    parser.add_argument("--out", default="BENCH_transport.json")
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):
        print("no fork on this platform; transport bench skipped")
        return 0

    print(f"transport microbench — {args.messages} messages, cases "
          f"{args.cases}, best of {args.repeats}")
    cases = []
    for spec in args.cases:
        payload, _, pattern = spec.partition(":")
        cases.append(run_case(int(payload), pattern or "chase",
                              args.messages, args.ring_bytes,
                              args.repeats))
    for case in cases:
        print(f"  payload={case['payload_msgs']} {case['pattern']} "
              f"({case['wire_bytes']}B wire):")
        for name in ("pipe_pickle", "shm_ring"):
            row = case[name]
            print(f"    {name:12s} enqueue "
                  f"{row['enqueue_msgs_per_sec']:>12,.0f} msg/s   "
                  f"sustained {row['sustained_msgs_per_sec']:>12,.0f} msg/s")
        print(f"    speedup: {case['enqueue_speedup']:.1f}x enqueue, "
              f"{case['sustained_speedup']:.1f}x sustained")

    write_json(args.out, {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
        },
        "config": {"messages": args.messages,
                   "cases": list(args.cases),
                   "ring_bytes": args.ring_bytes,
                   "repeats": args.repeats},
        "cases": cases,
        #: Gate metric: sender-side handoff advantage on the first case
        #: (empty-outbox reports, overlapped consumer) — the
        #: coordinator's serial-section cost under the engine's actual
        #: communication/compute overlap.
        "speedup": cases[0]["enqueue_speedup"],
    })
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
