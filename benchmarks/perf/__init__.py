"""Wall-clock performance harness for the simulation kernel and workloads.

Unlike the ``test_*`` benches (which reproduce the paper's *simulated*
results), this package measures how fast the simulator itself runs:
events/second, wall seconds, and peak RSS. Results are emitted as
``BENCH_kernel.json`` / ``BENCH_workloads.json`` so the perf trajectory
of the kernel is tracked across PRs (see README.md for the schema).
"""
