"""Fig. 8 — send/receive performance of the software messaging library.

8a: sim'd HW latency: push wins small messages, pull wins large; with
    the threshold at 256 B the combined curve tracks the lower envelope;
    minimal half-duplex latency ~340 ns.
8b: sim'd HW bandwidth: >10 Gb/s with messages as small as 4 KB;
    12.8 Gb/s at 8 KB (1.6x QDR InfiniBand's 8 Gb/s at that size).
8c: dev platform: minimal half-duplex latency ~1.4 us (~4x sim'd HW),
    optimal threshold at the larger value of 1 KB.
"""

import pytest
from conftest import print_table, run_once

from repro.emulation import (
    DEV_PLATFORM_MESSAGING_THRESHOLD,
    dev_platform_cluster_config,
)
from repro.workloads import (
    PULL_ONLY,
    PUSH_ONLY,
    send_recv_bandwidth,
    send_recv_latency,
)

LAT_SIZES = (32, 128, 512, 2048)
BW_SIZES = (256, 1024, 4096, 8192)
TUNED = 256  # the paper's optimal threshold on simulated hardware


def _fig8a():
    results = {}
    for threshold in (PULL_ONLY, TUNED, PUSH_ONLY):
        results[threshold] = send_recv_latency(
            sizes=LAT_SIZES, threshold=threshold, rounds=8)
    return results


def test_fig8a_send_recv_latency_simulated_hw(benchmark):
    results = run_once(benchmark, _fig8a)
    rows = []
    for i, size in enumerate(LAT_SIZES):
        rows.append((size,
                     results[PUSH_ONLY][i].latency_us,
                     results[PULL_ONLY][i].latency_us,
                     results[TUNED][i].latency_us))
    print_table("Fig. 8a: send/recv half-duplex latency, sim'd HW (us)",
                ["size (B)", "push-only", "pull-only", "thresh=256B"],
                rows)

    push = {r.size: r.latency_us for r in results[PUSH_ONLY]}
    pull = {r.size: r.latency_us for r in results[PULL_ONLY]}
    tuned = {r.size: r.latency_us for r in results[TUNED]}

    # Push beats pull for small messages (no control round-trip).
    assert push[32] < pull[32]
    # Pull beats push for large messages (no per-chunk packetization).
    assert pull[2048] < push[2048]
    # The tuned threshold tracks the better mechanism at both ends.
    assert tuned[32] <= push[32] * 1.10
    assert tuned[2048] <= pull[2048] * 1.10
    # Minimal half-duplex latency lands in the sub-microsecond regime
    # the paper reports (340 ns there; same order here).
    assert tuned[32] < 1.0


def _fig8b():
    tuned = send_recv_bandwidth(sizes=BW_SIZES, threshold=TUNED,
                                messages=30, warmup=6)
    push = send_recv_bandwidth(sizes=(8192,), threshold=PUSH_ONLY,
                               messages=30, warmup=6)
    return tuned, push


def test_fig8b_send_recv_bandwidth_simulated_hw(benchmark):
    tuned, push = run_once(benchmark, _fig8b)
    rows = [(r.size, r.gbps) for r in tuned]
    rows.append(("8192 (push-only)", push[0].gbps))
    print_table("Fig. 8b: send/recv bandwidth, sim'd HW (Gbps)",
                ["size (B)", "bandwidth"], rows)

    by_size = {r.size: r.gbps for r in tuned}
    # The paper: bandwidth exceeds 10 Gb/s with messages as small as 4KB.
    assert by_size[4096] > 10.0
    assert by_size[8192] > by_size[4096] * 0.9
    # 8 KB bandwidth beats QDR InfiniBand's ~8 Gb/s at that size.
    assert by_size[8192] > 8.0
    # Push-only collapses for large messages (packetization overhead) —
    # the reason the pull mechanism exists.
    assert push[0].gbps < by_size[8192] / 3.0
    # Bandwidth grows with message size.
    series = [r.gbps for r in tuned]
    assert all(a < b for a, b in zip(series, series[1:]))


def _fig8c():
    config = dev_platform_cluster_config(2)
    small = {}
    for threshold in (PULL_ONLY, DEV_PLATFORM_MESSAGING_THRESHOLD,
                      PUSH_ONLY):
        small[threshold] = send_recv_latency(
            sizes=(32, 512), threshold=threshold, rounds=4,
            cluster_config=config)
    return small


def test_fig8c_send_recv_latency_dev_platform(benchmark):
    small = run_once(benchmark, _fig8c)
    thr = DEV_PLATFORM_MESSAGING_THRESHOLD
    rows = []
    for i, size in enumerate((32, 512)):
        rows.append((size,
                     small[PUSH_ONLY][i].latency_us,
                     small[PULL_ONLY][i].latency_us,
                     small[thr][i].latency_us))
    print_table("Fig. 8c: send/recv latency, dev platform (us)",
                ["size (B)", "push-only", "pull-only", "thresh=1KB"],
                rows)

    # Minimal latency ~1.4 us on the dev platform (ours: same order,
    # several times the simulated hardware's).
    assert 0.9 < small[thr][0].latency_us < 4.0
    # At 512 B the dev platform still pushes (threshold 1 KB) and that
    # is the right call: push is no slower than pull there.
    assert small[PUSH_ONLY][1].latency_us <= \
        small[PULL_ONLY][1].latency_us * 1.15
