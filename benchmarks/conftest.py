"""Shared helpers for the paper-reproduction benchmark suite.

Each benchmark regenerates one table or figure of the paper: it runs the
corresponding harness, prints the same rows/series the paper reports
(run pytest with ``-s`` to see them), and asserts the *shape* — who
wins, by roughly what factor, where crossovers fall. EXPERIMENTS.md
records measured-vs-paper values.
"""

from __future__ import annotations

import pathlib
import sys

# Belt-and-braces with pyproject's `pythonpath = ["src"]` (pytest >= 7):
# make `python -m pytest benchmarks -q` work from a clean checkout even
# when the ini option is unavailable (e.g. direct script imports).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--checkpoint-mode", action="store", default="all",
        help="Restrict checkpoint-mode ablations to one mode "
             "(e.g. replica, xor(3), rs(3,2)); 'all' sweeps every "
             "mode. The nightly CI matrix fans out over this axis.")


@pytest.fixture
def checkpoint_mode(request):
    """The --checkpoint-mode option ('all' = sweep every mode)."""
    return request.config.getoption("--checkpoint-mode")


def print_table(title: str, headers, rows) -> None:
    """Render one experiment's output in the units the paper uses."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(headers)] if rows else \
             [len(str(h)) for h in headers]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===", file=sys.stderr)
    print(line, file=sys.stderr)
    print("-" * len(line), file=sys.stderr)
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)),
              file=sys.stderr)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    Whole-system simulations are deterministic and expensive; a single
    round measures wall-clock cost without re-simulating.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
