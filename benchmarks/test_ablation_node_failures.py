"""Ablation — crash timing vs recovery cost for checkpointed PageRank.

Kill one node at different points of a fault-tolerant PageRank run and
measure what the crash costs: how many supersteps are re-executed from
the last peer-memory checkpoint, how much simulated time recovery adds
over the fault-free run, and — the correctness anchor — that the final
ranks stay *bit-for-bit* identical to the fault-free answer at every
crash point. The timeline is emitted as JSON built exclusively from
simulated quantities, so two runs of the sweep produce byte-identical
output (the determinism test below pins that down).
"""

import json

from conftest import print_table

from repro.apps import BSPEngine, FaultTolerantBSPEngine, PageRankProgram
from repro.apps.graph import zipf_graph

NODES = 3
SUPERSTEPS = 4
VICTIM = 1
RESTART_AFTER_NS = 20_000.0
#: None = fault-free control; the rest sweep the run front to back,
#: including the final-barrier window near the end.
CRASH_POINTS_NS = (None, 3_000.0, 7_000.0, 12_000.0, 16_000.0)


def _graph():
    return zipf_graph(60, avg_degree=4, seed=3)


def crash_timeline_sweep():
    """One row per crash point; returns (rows, baseline_elapsed_ns)."""
    graph = _graph()
    base = BSPEngine(graph, NODES, seed=7)
    fault_free = base.run(PageRankProgram(), max_supersteps=SUPERSTEPS,
                          stop_on_convergence=False)
    rows = []
    for crash_ns in CRASH_POINTS_NS:
        engine = FaultTolerantBSPEngine(graph, NODES, seed=7,
                                        checkpoint_every=1)
        if crash_ns is not None:
            engine.controller.schedule_crash(
                VICTIM, at_ns=crash_ns, restart_after_ns=RESTART_AFTER_NS)
        result = engine.run(PageRankProgram(), max_supersteps=SUPERSTEPS,
                            stop_on_convergence=False)
        rows.append({
            "crash_ns": crash_ns,
            "recoveries": result.recoveries,
            "checkpoints": result.checkpoints,
            "supersteps": result.supersteps_run,
            "elapsed_ns": result.elapsed_ns,
            # Crash cost is measured against the *fault-free FT* run
            # (the control row), so checkpoint/heartbeat overhead —
            # which every row pays — cancels out.
            "overhead_ns": result.elapsed_ns - rows[0]["elapsed_ns"]
            if rows else 0.0,
            "evictions": engine.membership.evictions,
            "rejoins": engine.membership.rejoins,
            "bit_exact": result.values == fault_free.values,
        })
    return rows, fault_free.elapsed_ns


def timeline_json(rows):
    """Canonical JSON: sorted keys, no wall-clock, no object ids."""
    return json.dumps(rows, sort_keys=True)


class TestCrashTimelineAblation:
    def test_every_crash_point_recovers_bit_exact(self):
        rows, baseline_ns = crash_timeline_sweep()
        print_table(
            f"crash-timeline ablation (fault-free: {baseline_ns:.0f} ns)",
            ["crash_ns", "recoveries", "ckpts", "steps",
             "elapsed_ns", "overhead_ns", "bit_exact"],
            [[r["crash_ns"], r["recoveries"], r["checkpoints"],
              r["supersteps"], r["elapsed_ns"], r["overhead_ns"],
              r["bit_exact"]] for r in rows])
        assert all(r["bit_exact"] for r in rows)
        # The control row really is fault-free...
        control = rows[0]
        assert control["crash_ns"] is None
        assert control["recoveries"] == 0 and control["overhead_ns"] == 0
        # ...and every mid-run crash was evicted and cost something.
        for row in rows[1:-1]:
            assert row["evictions"] == 1
            assert row["overhead_ns"] > 0
        # Crashes landing mid-computation force a rollback recovery; a
        # crash racing the final rendezvous may need none — survivors
        # that notice it after a peer already returned know the result
        # is fully materialized and just exit (no restore, no re-run).
        assert [r["recoveries"] for r in rows[1:]] == [1, 1, 0, 0]

    def test_timeline_json_is_run_to_run_identical(self):
        first, _ = crash_timeline_sweep()
        second, _ = crash_timeline_sweep()
        assert timeline_json(first) == timeline_json(second)
