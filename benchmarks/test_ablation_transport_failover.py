"""Ablation — failover policy temperament vs flap rate.

Sweep the three failover policies (fail-fast, hysteresis, hedged)
against an increasingly flappy primary fabric (0, 1, 2 full outages of
every client link) and measure what the robustness layer costs and
buys: availability (completions that returned data, at full or degraded
fidelity), p99 inflation over the flap-free control, switch counts, and
replay volume — with the exactly-once and zero-lost-write invariants
pinned on every cell. The sweep is emitted as canonical JSON
(``ABLATION_failover.json``) built exclusively from simulated
quantities, so two runs produce byte-identical output, and one cell is
re-run under the conservative parallel engine to pin cross-worker
bit-reproducibility of the whole outcome, timeline included.
"""

import json
import pathlib

from conftest import print_table

from repro.transport.harness import run_failover

POLICIES = ("fail-fast", "hysteresis", "hedged")
FLAP_CYCLES = (0, 1, 2)
NUM_OPS = 120
FLAP_START_NS = 10_000.0
FLAP_PERIOD_NS = 30_000.0
FLAP_DOWN_NS = 12_000.0
SEED = 7
JSON_PATH = pathlib.Path("ABLATION_failover.json")


def _run(policy, flap_cycles, workers=1):
    return run_failover(num_ops=NUM_OPS, policy=policy,
                        flap_cycles=flap_cycles,
                        flap_start_ns=FLAP_START_NS,
                        flap_period_ns=FLAP_PERIOD_NS,
                        flap_down_ns=FLAP_DOWN_NS,
                        seed=SEED, workers=workers)["outcome"]


def _row(policy, flap_cycles, out):
    eo = out["exactly_once"]
    return {
        "policy": policy,
        "flap_cycles": flap_cycles,
        "availability": out["availability"],
        "p50_ns": out["latency"]["p50_ns"],
        "p99_ns": out["latency"]["p99_ns"],
        "failovers": out["stack"]["counters"]["failovers"],
        "failbacks": out["stack"]["counters"]["failbacks"],
        "replays": out["stack"]["counters"]["replays"],
        "degraded": out["by_status"].get("degraded", 0),
        "failed": out["by_status"].get("failed", 0),
        "lost": eo["lost"],
        "duplicates": eo["duplicates"],
        "wrong": out["wrong"],
        "timeline_events": len(out["timeline"]),
        "converged": (out["segments"] == out["expected"]
                      and out["mirror"] == out["expected"]),
    }


def failover_sweep(policies=POLICIES, flap_cycles=FLAP_CYCLES):
    return [_row(policy, cycles, _run(policy, cycles))
            for policy in policies for cycles in flap_cycles]


def sweep_json(rows):
    """Canonical JSON: sorted keys, no wall-clock, no object ids."""
    return json.dumps(rows, sort_keys=True, indent=1)


class TestTransportFailoverAblation:
    def test_availability_holds_and_p99_pays_for_flaps(self):
        rows = failover_sweep()
        JSON_PATH.write_text(sweep_json(rows))
        print_table(
            "transport-failover ablation (policy x flap rate, "
            f"{NUM_OPS} ops)",
            ["policy", "flaps", "avail", "p50_ns", "p99_ns",
             "switches", "replays", "degraded", "lost", "converged"],
            [[r["policy"], r["flap_cycles"], r["availability"],
              r["p50_ns"], r["p99_ns"],
              r["failovers"] + r["failbacks"], r["replays"],
              r["degraded"], r["lost"], r["converged"]]
             for r in rows])

        for r in rows:
            # The acceptance bars, on every cell of the sweep.
            assert r["availability"] >= 0.99, r
            assert r["lost"] == 0 and r["duplicates"] == 0, r
            assert r["failed"] == 0 and r["wrong"] == 0, r
            assert r["converged"], r

        by = {(r["policy"], r["flap_cycles"]): r for r in rows}
        for policy in POLICIES:
            control = by[policy, 0]
            assert control["failovers"] == 0
            assert control["degraded"] == 0
            for cycles in (1, 2):
                flapped = by[policy, cycles]
                # Flaps force at least one switch away and one home...
                assert flapped["failovers"] >= 1
                assert flapped["failbacks"] >= 1
                assert flapped["replays"] >= 1
                # ...and the detour shows up in the tail, not in a
                # lower completion count.
                assert flapped["p99_ns"] > control["p99_ns"]
        # Temperament ordering: eager failback switches at least as
        # often as the holding policies under repeated flaps.
        assert by["fail-fast", 2]["failovers"] >= \
            by["hysteresis", 2]["failovers"]
        assert by["fail-fast", 2]["failovers"] >= \
            by["hedged", 2]["failovers"]

    def test_sweep_json_is_run_to_run_identical(self):
        cell = (("hysteresis",), (1,))
        assert sweep_json(failover_sweep(*cell)) == \
            sweep_json(failover_sweep(*cell))

    def test_parallel_engine_reproduces_the_serial_cell(self):
        serial = _run("hysteresis", 1)
        parallel = _run("hysteresis", 1, workers=2)
        assert parallel == serial
