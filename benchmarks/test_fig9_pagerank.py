"""Fig. 9 — PageRank speedup: SHM vs soNUMA(bulk) vs soNUMA(fine-grain).

Paper (left, simulated HW, 1 superstep, up to 8 nodes): SHM(pthreads)
and soNUMA(bulk) show near-identical speedup driven by partition
imbalance; soNUMA(fine-grain) scales too but with noticeably greater
overheads (per-request software cost on every cut edge).

Paper (right, dev platform, up to 16 nodes): same general trends with
lower absolute performance.

Scaled-down setup (documented in DESIGN.md / pagerank_sweep): a
power-law graph whose vertex data exceeds every configuration's
aggregate LLC, caches scaled with it.
"""

from conftest import print_table, run_once

from repro.emulation import dev_platform_cluster_config
from repro.workloads import pagerank_speedups


def _simulated_hw():
    return pagerank_speedups(node_counts=(2, 4, 8),
                             num_vertices=16384, avg_degree=8)


def test_fig9_left_pagerank_simulated_hw(benchmark):
    rows_data = run_once(benchmark, _simulated_hw)
    rows = [(r.parallelism, r.shm, r.bulk, r.fine) for r in rows_data]
    print_table("Fig. 9 (left): PageRank speedup over 1 thread, sim'd HW",
                ["nodes", "SHM", "soNUMA(bulk)", "soNUMA(fine)"], rows)

    by_n = {r.parallelism: r for r in rows_data}

    # SHM and bulk scale together (imbalance-limited, not hardware-
    # limited). The paper shows them near-identical; at our scaled-down
    # dataset a residual shared-vs-private cache effect remains (see
    # EXPERIMENTS.md), so the bound is 55% rather than ~100%.
    for r in rows_data:
        assert r.bulk > 0.55 * r.shm
    # Both scale up with node count.
    assert by_n[8].shm > by_n[4].shm > by_n[2].shm > 1.2
    assert by_n[8].bulk > by_n[4].bulk > by_n[2].bulk
    # Fine-grain has noticeably greater overheads...
    for r in rows_data:
        assert r.fine < r.bulk
        assert r.fine < r.shm
    # ...but still benefits from scale (the paper's fine-grain curve
    # rises monotonically).
    assert by_n[8].fine > by_n[4].fine > by_n[2].fine
    assert by_n[8].fine > 1.0  # parallelism eventually wins


def _dev_platform():
    return pagerank_speedups(
        node_counts=(2, 4, 8),
        num_vertices=4096, avg_degree=8,
        cluster_config_factory=dev_platform_cluster_config)


def test_fig9_right_pagerank_dev_platform(benchmark):
    rows_data = run_once(benchmark, _dev_platform)
    rows = [(r.parallelism, r.shm, r.bulk, r.fine) for r in rows_data]
    print_table("Fig. 9 (right): PageRank speedup, dev platform",
                ["nodes", "SHM", "soNUMA(bulk)", "soNUMA(fine)"], rows)

    by_n = {r.parallelism: r for r in rows_data}
    # Same general trends as the simulated hardware...
    assert by_n[8].shm > by_n[2].shm
    for r in rows_data:
        assert r.fine < r.shm
    # ...with the higher latency and lower bandwidth of the platform
    # limiting the soNUMA variants relative to SHM.
    for r in rows_data:
        assert r.bulk < r.shm * 1.10
