"""Ablation — link-layer credits (virtual-lane buffer depth).

§6: the memory fabric uses "credit-based flow control" with two virtual
lanes. Credits bound the in-flight packets per lane; too few of them
throttle the request stream below what the destination memory system
could absorb, capping remote read bandwidth (a classic
bandwidth-delay-product effect).
"""

from conftest import print_table, run_once

from repro.cluster import ClusterConfig
from repro.fabric import FabricConfig
from repro.workloads import remote_read_bandwidth

CREDITS = (2, 4, 16)


def _sweep():
    results = []
    for credits in CREDITS:
        config = ClusterConfig(
            num_nodes=2, fabric=FabricConfig(vl_credits=credits))
        row = remote_read_bandwidth(sizes=(8192,), requests=60, warmup=10,
                                    cluster_config=config)[0]
        results.append((credits, row.gbytes_per_sec))
    return results


def test_ablation_vl_credits(benchmark):
    results = run_once(benchmark, _sweep)
    print_table("Ablation: per-VL credits vs 8KB remote read bandwidth",
                ["credits", "GB/s"], results)

    by_credits = dict(results)
    # More credits -> more in-flight lines -> more bandwidth, until the
    # DRAM channel (not the fabric) becomes the bottleneck.
    assert by_credits[2] < by_credits[16]
    # Two credits cannot cover the ~300 ns round trip at line size.
    assert by_credits[2] < 0.75 * by_credits[16]
    # The default (16) reaches the DDR3-1600 practical ceiling.
    assert by_credits[16] > 8.5
