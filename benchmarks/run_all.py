#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the same harnesses the pytest benchmarks use and prints each
experiment's rows in the paper's units. Use ``--quick`` for a reduced
sweep (CI-sized runs), ``--parallel N`` to fan the experiments out over
N worker processes (one simulator per process; output is byte-identical
to the serial run), and ``--json PATH`` to also save the captured
experiment output as JSON.

    python benchmarks/run_all.py [--quick] [--parallel N] [--json PATH]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import pathlib
import sys
import time

# Importable from a clean checkout without PYTHONPATH=src.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def fig1(quick: bool):
    from repro.baselines import TCPNetworkModel

    banner("Fig. 1 — Netpipe on a Calxeda microserver (commodity TCP)")
    model = TCPNetworkModel()
    print(f"{'size (B)':>10} {'latency (us)':>14} {'bandwidth (Gbps)':>18}")
    for size, lat, bw in model.netpipe_sweep(
            (64, 256, 1024, 4096, 16384, 65536, 262144, 524288)):
        print(f"{size:>10} {lat:>14.1f} {bw:>18.2f}")
    print("paper: >40us small-message latency, <2 Gbps peak")


def fig7(quick: bool):
    from repro.emulation import dev_platform_cluster_config
    from repro.workloads import (
        local_dram_latency,
        remote_read_bandwidth,
        remote_read_latency,
    )

    sizes = (64, 256, 1024, 4096, 8192)
    iters = 6 if quick else 12

    banner("Fig. 7a — remote read latency, simulated HW")
    local = local_dram_latency()
    single = remote_read_latency(sizes=sizes, iterations=iters)
    double = remote_read_latency(sizes=sizes, iterations=iters,
                                 double_sided=True)
    print(f"{'size (B)':>10} {'single (us)':>12} {'double (us)':>12}")
    for s, d in zip(single, double):
        print(f"{s.size:>10} {s.mean_us:>12.3f} {d.mean_us:>12.3f}")
    print(f"local DRAM read: {local:.0f} ns; "
          f"remote/local @64B = {single[0].mean_ns / local:.2f}x "
          f"(paper: ~4x)")

    banner("Fig. 7b — remote read bandwidth, simulated HW")
    reqs = 60 if quick else 120
    bw_single = remote_read_bandwidth(sizes=sizes, requests=reqs)
    bw_double = remote_read_bandwidth(sizes=(8192,), requests=reqs,
                                      double_sided=True)
    print(f"{'size (B)':>10} {'Gbps':>8} {'GB/s':>8} {'Mops/s':>8}")
    for r in bw_single:
        print(f"{r.size:>10} {r.gbps:>8.1f} {r.gbytes_per_sec:>8.2f} "
              f"{r.mops:>8.2f}")
    print(f"double-sided @8KB: {bw_double[0].gbytes_per_sec:.2f} GB/s "
          f"(paper: ~2x single-sided)")

    banner("Fig. 7c — remote read latency, development platform")
    dev = remote_read_latency(sizes=sizes, iterations=4,
                              cluster_config=dev_platform_cluster_config(2))
    print(f"{'size (B)':>10} {'latency (us)':>14}")
    for r in dev:
        print(f"{r.size:>10} {r.mean_us:>14.2f}")
    print("paper: 1.5 us base, growing steeply (software unroll)")


def fig8(quick: bool):
    from repro.emulation import (
        DEV_PLATFORM_MESSAGING_THRESHOLD,
        dev_platform_cluster_config,
    )
    from repro.workloads import (
        PULL_ONLY,
        PUSH_ONLY,
        send_recv_bandwidth,
        send_recv_latency,
    )

    lat_sizes = (32, 128, 512, 2048)
    rounds = 4 if quick else 8

    banner("Fig. 8a — send/recv half-duplex latency, simulated HW")
    print(f"{'size (B)':>10} {'push (us)':>10} {'pull (us)':>10} "
          f"{'thr=256B (us)':>14}")
    curves = {t: send_recv_latency(sizes=lat_sizes, threshold=t,
                                   rounds=rounds)
              for t in (PUSH_ONLY, PULL_ONLY, 256)}
    for i, size in enumerate(lat_sizes):
        print(f"{size:>10} {curves[PUSH_ONLY][i].latency_us:>10.3f} "
              f"{curves[PULL_ONLY][i].latency_us:>10.3f} "
              f"{curves[256][i].latency_us:>14.3f}")

    banner("Fig. 8b — send/recv bandwidth, simulated HW")
    msgs = 15 if quick else 30
    bw = send_recv_bandwidth(sizes=(256, 1024, 4096, 8192), threshold=256,
                             messages=msgs)
    print(f"{'size (B)':>10} {'Gbps':>8}")
    for r in bw:
        print(f"{r.size:>10} {r.gbps:>8.2f}")
    print("paper: >10 Gbps @4KB, 12.8 Gbps @8KB")

    banner("Fig. 8c — send/recv latency, development platform")
    dev = send_recv_latency(
        sizes=(32, 512), threshold=DEV_PLATFORM_MESSAGING_THRESHOLD,
        rounds=3, cluster_config=dev_platform_cluster_config(2))
    for r in dev:
        print(f"{r.size:>10} {r.latency_us:>10.2f} us")
    print("paper: 1.4 us minimum, optimal threshold 1KB")


def table2(quick: bool):
    from repro.baselines import RDMAModel
    from repro.emulation import dev_platform_cluster_config
    from repro.workloads import (
        atomic_latency,
        remote_iops,
        remote_read_bandwidth,
        remote_read_latency,
    )

    banner("Table 2 — soNUMA vs InfiniBand/RDMA")
    iters = 6 if quick else 12
    simd_lat = remote_read_latency(sizes=(64,),
                                   iterations=iters)[0].mean_ns / 1000
    simd_bw = remote_read_bandwidth(sizes=(8192,),
                                    requests=60 if quick else 100)[0].gbps
    simd_iops = remote_iops(requests=100 if quick else 300)
    simd_atomic = atomic_latency(iterations=iters) / 1000

    dev_cfg = dev_platform_cluster_config(2)
    dev_lat = remote_read_latency(sizes=(64,), iterations=4,
                                  cluster_config=dev_cfg)[0].mean_ns / 1000
    dev_bw = remote_read_bandwidth(sizes=(4096,), requests=25, warmup=5,
                                   cluster_config=dev_cfg)[0].gbps
    dev_iops = remote_iops(requests=60, warmup=15, cluster_config=dev_cfg)
    dev_atomic = atomic_latency(iterations=4,
                                cluster_config=dev_cfg) / 1000

    rdma = RDMAModel()
    rows = [
        ("Max BW (Gbps)", 1.8, dev_bw, 77, simd_bw, 50,
         rdma.effective_bandwidth_gbps),
        ("Read RTT (us)", 1.5, dev_lat, 0.3, simd_lat, 1.19,
         rdma.read_rtt_us()),
        ("Fetch+add (us)", 1.5, dev_atomic, 0.3, simd_atomic, 1.15,
         rdma.fetch_add_rtt_us()),
        ("IOPS (Mops/s)", 1.97, dev_iops, 10.9, simd_iops, 35.0,
         rdma.iops_millions()),
    ]
    header = (f"{'metric':<16} {'dev/paper':>10} {'dev/ours':>10} "
              f"{'sim/paper':>10} {'sim/ours':>10} {'ib/paper':>9} "
              f"{'ib/ours':>9}")
    print(header)
    for name, dp, do, sp, so, ip, io_ in rows:
        print(f"{name:<16} {dp:>10.2f} {do:>10.2f} {sp:>10.2f} "
              f"{so:>10.2f} {ip:>9.2f} {io_:>9.2f}")


def fig9(quick: bool):
    from repro.emulation import dev_platform_cluster_config
    from repro.workloads import pagerank_speedups

    banner("Fig. 9 (left) — PageRank speedup, simulated HW")
    if quick:
        rows = pagerank_speedups(node_counts=(2, 4), num_vertices=4096,
                                 avg_degree=6, llc_total_bytes=64 * 1024)
    else:
        rows = pagerank_speedups(node_counts=(2, 4, 8))
    print(f"{'nodes':>6} {'SHM':>7} {'bulk':>7} {'fine':>7}")
    for r in rows:
        print(f"{r.parallelism:>6} {r.shm:>7.2f} {r.bulk:>7.2f} "
              f"{r.fine:>7.2f}")

    banner("Fig. 9 (right) — PageRank speedup, development platform")
    dev_rows = pagerank_speedups(
        node_counts=(2, 4) if quick else (2, 4, 8),
        num_vertices=2048 if quick else 4096, avg_degree=6,
        llc_total_bytes=64 * 1024,
        cluster_config_factory=dev_platform_cluster_config)
    print(f"{'nodes':>6} {'SHM':>7} {'bulk':>7} {'fine':>7}")
    for r in dev_rows:
        print(f"{r.parallelism:>6} {r.shm:>7.2f} {r.bulk:>7.2f} "
              f"{r.fine:>7.2f}")


def parallel_engine(quick: bool, workers: int = 2,
                    transport: str = "auto", partition: str = "auto"):
    from repro.apps.graph import zipf_graph
    from repro.apps.pagerank import run_sonuma_bulk
    from repro.sim import resolve_run_options

    transport, partition, note = resolve_run_options(
        workers, transport, partition)
    banner(f"Parallel engine — PageRank bulk, {workers} workers, "
           f"{transport} transport, {partition} plan")
    if note:
        print(f"note: {note}")
    vertices = 192 if quick else 512
    graph = zipf_graph(vertices, avg_degree=6, seed=7)
    result = run_sonuma_bulk(graph, 8, supersteps=2, workers=workers,
                             partition=partition, transport=transport)
    es = result.telemetry.engine_stats
    print(f"{es['total_events_processed']} events, "
          f"{es['rounds']} sync rounds, "
          f"{es['events_per_sec']:,.0f} ev/s")
    coord = es.get("coordination", {})
    print(f"coordination: {coord.get('grant_roundtrips', 0)} grant "
          f"round-trips, route {coord.get('route_s', 0.0):.3f}s, "
          f"wait {coord.get('wait_s', 0.0):.3f}s, "
          f"codec {coord.get('serialize_s', 0.0):.3f}s")
    print("results bit-identical to the serial engine by construction "
          "(asserted in tests/test_parallel_goldens.py)")


def serving(quick: bool, rate: float = 24.0, shards: int = 2,
            batch: int = 8):
    from repro.serving import run_serving

    banner(f"Serving tier — {shards} shards, {rate} Mops offered, "
           f"doorbell batch {batch}")
    duration = 15_000.0 if quick else 30_000.0
    rows = []
    for b in sorted({1, batch}):
        out = run_serving(num_shards=shards, replication=1,
                          rate_mops=rate, duration_ns=duration,
                          batch=b, window=64, num_keys=128,
                          num_buckets=512, seed=5)["outcome"]
        rows.append((b, out))
    print(f"{'batch':>6} {'served Mops':>12} {'p50 (ns)':>9} "
          f"{'p99 (ns)':>9} {'p999 (ns)':>10} {'avail':>6}")
    for b, out in rows:
        latency = out["latency"]
        print(f"{b:>6} {out['served_mops']:>12.2f} "
              f"{latency['p50_ns']:>9.0f} {latency['p99_ns']:>9.0f} "
              f"{latency['p999_ns']:>10.0f} {out['availability']:>6.3f}")
    if len(rows) > 1 and rows[0][1]["served_mops"] > 0:
        print(f"batching speedup: "
              f"{rows[-1][1]['served_mops'] / rows[0][1]['served_mops']:.2f}x "
              f"served ops/s (gate floor in CI: 2x at 48 Mops offered)")
    print(f"{rows[-1][1]['logical_clients']:,} logical clients "
          f"multiplexed over {shards} pipelined sessions; full grid in "
          f"benchmarks/perf/bench_serving.py")


def failover(quick: bool):
    from repro.transport import run_failover

    banner("Transport failover — flapping fabric, hysteresis policy")
    out = run_failover(num_ops=120 if quick else 240,
                       flap_cycles=1 if quick else 2)["outcome"]
    eo = out["exactly_once"]
    counters = out["stack"]["counters"]
    print(f"{'policy':>10} {'avail':>6} {'ok':>5} {'degraded':>9} "
          f"{'failed':>7} {'lost':>5} {'switches':>9} {'replays':>8}")
    print(f"{out['policy']:>10} {out['availability']:>6.3f} "
          f"{out['by_status']['ok']:>5} {out['by_status']['degraded']:>9} "
          f"{out['by_status']['failed']:>7} {eo['lost']:>5} "
          f"{counters['failovers'] + counters['failbacks']:>9} "
          f"{counters['replays']:>8}")
    print(f"segments converged to expectation: "
          f"{out['segments'] == out['expected']}; full policy x flap "
          f"grid in benchmarks/test_ablation_transport_failover.py")


EXPERIMENTS = {
    "fig1": fig1,
    "fig7": fig7,
    "fig8": fig8,
    "table2": table2,
    "fig9": fig9,
    "parallel": parallel_engine,
    "serving": serving,
    "failover": failover,
}

#: Experiments that take per-experiment CLI options (forwarded as
#: keyword arguments by :func:`_run_one`).
_EXPERIMENT_OPTS = {"parallel", "serving"}


def _run_one(job) -> str:
    """Run one experiment with its stdout captured; returns the text.

    Module-level so it pickles into multiprocessing workers. Every
    experiment builds its own seeded simulators, so the captured output
    is identical no matter which process runs it.
    """
    name, quick, opts = job
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        EXPERIMENTS[name](quick,
                          **(opts.get(name, {})
                             if name in _EXPERIMENT_OPTS else {}))
    return buffer.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps for CI-sized runs")
    parser.add_argument("--only", choices=sorted(EXPERIMENTS),
                        help="run a single experiment")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan experiments out over N worker processes; "
                             "also sets the parallel-engine experiment's "
                             "worker count")
    parser.add_argument("--transport",
                        choices=["auto", "shm", "process", "inline"],
                        default="auto",
                        help="parallel-engine experiment transport "
                             "('auto': shm when the host supports it)")
    parser.add_argument("--partition",
                        choices=["auto", "contiguous", "adaptive"],
                        default="auto",
                        help="parallel-engine partition plan "
                             "('auto': profiled adaptive)")
    parser.add_argument("--rate", type=float, default=24.0,
                        help="serving experiment: offered load (Mops)")
    parser.add_argument("--shards", type=int, default=2,
                        help="serving experiment: shard count")
    parser.add_argument("--batch", type=int, default=8,
                        help="serving experiment: doorbell batch size")
    parser.add_argument("--json", metavar="PATH",
                        help="also write captured output as JSON")
    args = parser.parse_args()

    chosen = [args.only] if args.only else list(EXPERIMENTS)
    opts = {
        "parallel": {"workers": max(2, args.parallel),
                     "transport": args.transport,
                     "partition": args.partition},
        "serving": {"rate": args.rate, "shards": args.shards,
                    "batch": args.batch},
    }
    jobs = [(name, args.quick, opts) for name in chosen]
    start = time.time()
    if args.parallel > 1:
        import multiprocessing

        with multiprocessing.Pool(args.parallel) as pool:
            outputs = pool.map(_run_one, jobs)
    else:
        outputs = [_run_one(job) for job in jobs]

    # Canonical merge order: the experiment list, never completion order.
    results = dict(zip(chosen, outputs))
    for name in chosen:
        sys.stdout.write(results[name])
    sys.stdout.write("\nall experiments completed\n")

    if args.json:
        payload = {
            "schema": "run_all/v1",
            "quick": args.quick,
            "experiments": results,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Wall-clock note goes to stderr so stdout/JSON stay deterministic.
    print(f"elapsed: {time.time() - start:.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
