"""Ablation — fabric topology at rack scale: crossbar vs 2-D torus.

The paper's simulations model a full crossbar; §6 argues
"low-dimensional k-ary n-cubes (e.g., 3D torii) seem well-matched to
rack-scale deployments". This ablation quantifies the topology tax:
multi-hop routing adds per-hop router delay and link serialization to
every request/reply, stretching remote read latency with hop distance
while everything completes thanks to credit flow control.
"""

from conftest import print_table, run_once

from repro.cluster import Cluster, ClusterConfig
from repro.fabric import FabricConfig, torus2d
from repro.runtime import RMCSession
from repro.sim import LatencyStat
from repro.vm import PAGE_SIZE

NODES = 16
CTX = 1


def _read_latency(cluster, gctx, src, dst, reads=6):
    session = RMCSession(cluster.nodes[src].core, gctx.qp(src),
                         gctx.entry(src))
    stats = LatencyStat()
    lbuf = session.alloc_buffer(4096)

    def app(sim):
        for i in range(reads + 2):
            start = sim.now
            yield from session.read_sync(dst, i * 64, lbuf, 64)
            if i >= 2:
                stats.record(sim.now - start)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    return stats.mean


def _measure():
    # Crossbar: every destination is one 50 ns hop away.
    xbar = Cluster(config=ClusterConfig(num_nodes=NODES))
    xbar_ctx = xbar.create_global_context(CTX, 32 * PAGE_SIZE)
    xbar_near = _read_latency(xbar, xbar_ctx, 0, 1)

    # 4x4 torus with per-hop links: distance now matters.
    per_hop = FabricConfig(link_latency_ns=15.0, router_delay_ns=11.0)
    topo = torus2d(4, 4)
    torus = Cluster(config=ClusterConfig(num_nodes=NODES, fabric=per_hop,
                                         topology=topo))
    torus_ctx = torus.create_global_context(CTX, 32 * PAGE_SIZE)
    torus_near = _read_latency(torus, torus_ctx, 0, 1)     # 1 hop
    far_node = 10                                          # (2,2): 4 hops
    hops = topo.hops(0, far_node)
    torus2_far = _read_latency(torus, torus_ctx, 0, far_node)
    return xbar_near, torus_near, torus2_far, hops


def test_ablation_topology(benchmark):
    xbar_near, torus_near, torus_far, far_hops = run_once(benchmark,
                                                          _measure)
    print_table("Ablation: crossbar vs 4x4 torus (64B read latency, ns)",
                ["path", "latency"],
                [("crossbar, any pair (1 hop @50ns)", xbar_near),
                 ("torus, neighbor (1 hop)", torus_near),
                 (f"torus, far corner ({far_hops} hops)", torus_far)])

    # A short torus hop beats the conservative 50 ns crossbar constant.
    assert torus_near < xbar_near
    # Distance costs: the far path pays per-hop router + link latency
    # in both directions.
    assert torus_far > torus_near + 2 * (far_hops - 1) * (15.0 + 11.0) * 0.8
    # Everything stays comfortably sub-microsecond at rack scale.
    assert torus_far < 1000
