"""Ablation — checkpoint coding mode vs recovery cost and storage.

Sweep the fault-tolerant PageRank engine's checkpoint modes (full
replica, XOR parity, Reed-Solomon) against a crash timeline and a
simultaneous double failure, and quantify what each mode pays and
buys:

* **storage overhead** — bytes durably held per checkpointed byte
  (replica: local snapshot + full remote copy = 2.0x; coded:
  ``(k + m) / k``, strictly cheaper);
* **checkpoint bytes on fabric** — what the one-sided checkpoint
  writes actually shipped (telemetry counters, simulated quantities);
* **recovery time** — simulated overhead versus the same mode's
  fault-free run;
* **correctness anchor** — final ranks are *bit-for-bit* the
  fault-free answer at every crash point in every mode, and the
  ring-adjacent double failure that replica mode provably cannot
  survive (the victim's only checkpoint copy dies with its holder) is
  fully recovered by ``rs(3,2)``.

The timeline is emitted as canonical JSON (``ABLATION_erasure.json``)
built exclusively from simulated quantities, so two runs produce
byte-identical output; the nightly CI matrix fans the sweep out over
``--checkpoint-mode`` and uploads the artifact.
"""

import json
import pathlib

from conftest import print_table

from repro.apps import BSPEngine, FaultTolerantBSPEngine, PageRankProgram
from repro.apps.graph import zipf_graph
from repro.telemetry import snapshot

NODES = 6
SUPERSTEPS = 4
VICTIM = 1
#: Ring successor of VICTIM == its replica-checkpoint holder: crashing
#: both at once is the double failure replica mode cannot survive.
SECOND_VICTIM = 2
RESTART_AFTER_NS = 20_000.0
#: None = fault-free control; the rest sweep the run front to back.
CRASH_POINTS_NS = (None, 3_000.0, 7_000.0, 12_000.0, 16_000.0)
DOUBLE_CRASH_NS = 7_000.0

MODES = ("replica", "xor(3)", "rs(3,2)")
#: Replica mode stores a local snapshot plus a full remote copy.
REPLICA_STORAGE_OVERHEAD = 2.0
JSON_PATH = pathlib.Path("ABLATION_erasure.json")


def _graph():
    return zipf_graph(60, avg_degree=4, seed=3)


def _selected_modes(checkpoint_mode):
    if checkpoint_mode in (None, "all"):
        return MODES
    if checkpoint_mode not in MODES:
        raise ValueError(f"--checkpoint-mode={checkpoint_mode!r}: "
                         f"ablation covers {MODES}")
    return (checkpoint_mode,)


def _run_case(graph, fault_free_values, mode, crashes, control_row):
    """One engine run; returns the ablation row (simulated units only)."""
    engine = FaultTolerantBSPEngine(graph, NODES, seed=7,
                                    checkpoint_every=1,
                                    checkpoint_mode=mode)
    for victim, at_ns in crashes:
        engine.controller.schedule_crash(victim, at_ns=at_ns,
                                         restart_after_ns=RESTART_AFTER_NS)
    code = engine.ckpt_code
    row = {
        "mode": mode,
        "storage_overhead": (code.storage_overhead if code is not None
                             else REPLICA_STORAGE_OVERHEAD),
        "crashes": [{"victim": v, "at_ns": t} for v, t in crashes],
    }
    try:
        result = engine.run(PageRankProgram(), max_supersteps=SUPERSTEPS,
                            stop_on_convergence=False)
    except RuntimeError as exc:
        row.update(recovered=False, unrecoverable_reason=str(exc))
        return row
    snap = snapshot(engine.cluster)
    fabric_bytes = sum(n.resilience.get("checkpoint_bytes_written", 0)
                       for n in snap.nodes)
    shards_rebuilt = sum(n.resilience.get("shards_rebuilt", 0)
                         for n in snap.nodes)
    row.update(
        recovered=True,
        recoveries=result.recoveries,
        checkpoints=result.checkpoints,
        supersteps=result.supersteps_run,
        elapsed_ns=result.elapsed_ns,
        # Recovery cost against the same mode's fault-free control row,
        # so per-mode checkpoint/heartbeat overhead cancels out.
        recovery_overhead_ns=(result.elapsed_ns
                              - control_row["elapsed_ns"]
                              if control_row else 0.0),
        checkpoint_fabric_bytes=fabric_bytes,
        shards_rebuilt=shards_rebuilt,
        evictions=engine.membership.evictions,
        bit_exact=result.values == fault_free_values,
    )
    return row


def erasure_sweep(modes=MODES):
    """mode x crash-point (+ the double failure); returns the rows."""
    graph = _graph()
    fault_free = BSPEngine(graph, NODES, seed=7).run(
        PageRankProgram(), max_supersteps=SUPERSTEPS,
        stop_on_convergence=False)
    rows = []
    for mode in modes:
        control = None
        for crash_ns in CRASH_POINTS_NS:
            crashes = [] if crash_ns is None else [(VICTIM, crash_ns)]
            row = _run_case(graph, fault_free.values, mode, crashes,
                            control)
            if crash_ns is None:
                control = row
            rows.append(row)
        rows.append(_run_case(
            graph, fault_free.values, mode,
            [(VICTIM, DOUBLE_CRASH_NS), (SECOND_VICTIM, DOUBLE_CRASH_NS)],
            control))
    return rows


def sweep_json(rows):
    """Canonical JSON: sorted keys, no wall-clock, no object ids."""
    return json.dumps(rows, sort_keys=True, indent=1)


def _crash_label(row):
    if not row["crashes"]:
        return "none"
    if len(row["crashes"]) > 1:
        return "double@%d" % row["crashes"][0]["at_ns"]
    return "%d" % row["crashes"][0]["at_ns"]


class TestErasureCheckpointAblation:
    def test_modes_recover_bit_exact_and_coded_storage_wins(
            self, checkpoint_mode):
        modes = _selected_modes(checkpoint_mode)
        rows = erasure_sweep(modes)
        JSON_PATH.write_text(sweep_json(rows))
        print_table(
            "erasure-checkpoint ablation (6 nodes, crash sweep)",
            ["mode", "crash", "overhead_x", "recov", "ckpt_MB_fabric",
             "recovery_ns", "rebuilt", "bit_exact"],
            [[r["mode"], _crash_label(r), r["storage_overhead"],
              r.get("recoveries", "-"),
              r.get("checkpoint_fabric_bytes", 0) / 1e6,
              r.get("recovery_overhead_ns", "-"),
              r.get("shards_rebuilt", "-"),
              r.get("bit_exact", "unrecoverable")] for r in rows])

        for mode in modes:
            mode_rows = [r for r in rows if r["mode"] == mode]
            singles = [r for r in mode_rows if len(r["crashes"]) <= 1]
            double = mode_rows[-1]
            assert len(double["crashes"]) == 2
            # Single-crash timeline: recovered bit-exact everywhere.
            assert all(r["recovered"] for r in singles)
            assert all(r["bit_exact"] for r in singles)
            control = singles[0]
            assert control["recoveries"] == 0
            assert control["recovery_overhead_ns"] == 0.0
            # Early/mid crashes roll back exactly once; a crash near
            # the end may race the final rendezvous and need none. Only
            # one incident per run, in every mode.
            assert [r["recoveries"] for r in singles[1:3]] == [1, 1]
            assert all(r["recoveries"] in (0, 1) for r in singles)
            for r in singles[1:3]:
                assert r["recovery_overhead_ns"] > 0
            # Checkpoints actually crossed the fabric.
            assert control["checkpoint_fabric_bytes"] > 0
            if mode == "replica":
                # The double failure killed the victim's only
                # checkpoint copy: correctly refused, never silent.
                assert double["recovered"] is False
                assert "ring-adjacent" in double["unrecoverable_reason"]
                assert control["storage_overhead"] == 2.0
            else:
                # Coded modes: cheaper storage than full replication...
                assert control["storage_overhead"] < \
                    REPLICA_STORAGE_OVERHEAD
                # ...and survivors re-scattered lost shards on crashes.
                assert any(r["shards_rebuilt"] > 0 for r in singles[1:3])
            if mode == "rs(3,2)":
                # m=2: the double failure is inside the code's budget —
                # recovered from surviving shards, bit-for-bit.
                assert double["recovered"] and double["bit_exact"]
                assert double["evictions"] == 2

    def test_sweep_json_is_run_to_run_identical(self, checkpoint_mode):
        modes = _selected_modes(checkpoint_mode)[-1:]   # keep it cheap
        assert sweep_json(erasure_sweep(modes)) == \
            sweep_json(erasure_sweep(modes))
