"""Table 1 — system parameters for simulation.

Not a performance experiment: this bench asserts that the library's
*defaults* transcribe Table 1, so every other benchmark inherits the
paper's configuration without per-test plumbing.
"""

from conftest import print_table, run_once

from repro.cluster import ClusterConfig
from repro.memory import DRAMConfig, MemoryConfig
from repro.rmc import MMUConfig, RMCConfig


def _collect():
    cluster = ClusterConfig()
    memory = cluster.node.memory
    return cluster, memory


def test_table1_parameters(benchmark):
    cluster, memory = run_once(benchmark, _collect)

    rows = [
        ("L1 caches", "32KB 2-way, 64B blocks, 32 MSHRs, 3-cycle",
         f"{memory.l1.size_bytes // 1024}KB {memory.l1.associativity}-way, "
         f"{memory.l1.line_size}B, {memory.l1.mshrs} MSHRs, "
         f"{memory.l1.latency_ns}ns"),
        ("L2 cache", "4MB, 16-way, 6-cycle",
         f"{memory.l2.size_bytes // (1024 * 1024)}MB "
         f"{memory.l2.associativity}-way, {memory.l2.latency_ns}ns"),
        ("Memory", "60ns latency, 12GBps, 8KB pages",
         f"{memory.dram.latency_ns}ns, {memory.dram.bandwidth_gbps}GBps"),
        ("RMC", "3 pipelines, 32-entry MAQ, 32-entry TLB",
         f"MAQ={cluster.node.rmc.mmu.maq_entries}, "
         f"TLB={cluster.node.rmc.mmu.tlb_entries}"),
        ("Fabric", "inter-node delay 50ns",
         f"{cluster.fabric.link_latency_ns}ns"),
    ]
    print_table("Table 1: system parameters (paper vs defaults)",
                ["component", "paper", "this repo"], rows)

    # L1: split 32KB 2-way, 64B blocks, 32 MSHRs, 3 cycles @ 2 GHz.
    assert memory.l1.size_bytes == 32 * 1024
    assert memory.l1.associativity == 2
    assert memory.l1.line_size == 64
    assert memory.l1.mshrs == 32
    assert memory.l1.latency_ns == 1.5

    # L2: 4MB, 16-way, 6 cycles.
    assert memory.l2.size_bytes == 4 * 1024 * 1024
    assert memory.l2.associativity == 16
    assert memory.l2.latency_ns == 3.0

    # Memory: 8KB pages, DDR3-1600: 60ns, 12 GB/s.
    from repro.vm import PAGE_SIZE
    assert PAGE_SIZE == 8192
    assert memory.dram.latency_ns == 60.0
    assert memory.dram.bandwidth_gbps == 12.0

    # RMC: 32-entry MAQ, 32-entry TLB, three independent pipelines.
    assert cluster.node.rmc.mmu.maq_entries == 32
    assert cluster.node.rmc.mmu.tlb_entries == 32

    # Fabric: flat 50ns inter-node delay on a full crossbar.
    assert cluster.fabric.link_latency_ns == 50.0
    assert cluster.topology is None  # crossbar
