"""Table 2 — soNUMA (dev platform + sim'd HW) vs RDMA/InfiniBand.

Paper's cells:

    Transport        | Dev. Plat. | Sim'd HW | RDMA/IB [14]
    Max BW (Gbps)    |    1.8     |    77    |    50
    Read RTT (us)    |    1.5     |    0.3   |    1.19
    Fetch-add (us)   |    1.5     |    0.3   |    1.15
    IOPS (Mops/s)    |    1.97    |   10.9   |    35 @ 4 cores
"""

import pytest
from conftest import print_table, run_once

from repro.baselines import RDMAModel
from repro.emulation import dev_platform_cluster_config
from repro.workloads import (
    atomic_latency,
    remote_iops,
    remote_read_bandwidth,
    remote_read_latency,
)


def _measure_platform(cluster_config=None, bw_size=8192, quick=False):
    """The four Table 2 metrics for one soNUMA platform."""
    n = 6 if quick else 12
    latency = remote_read_latency(sizes=(64,), iterations=n,
                                  cluster_config=cluster_config)[0].mean_ns
    bandwidth = remote_read_bandwidth(
        sizes=(bw_size,), requests=30 if quick else 100,
        warmup=5 if quick else 15,
        cluster_config=cluster_config)[0].gbps
    iops = remote_iops(requests=80 if quick else 300,
                       warmup=20 if quick else 50,
                       cluster_config=cluster_config)
    atomic = atomic_latency(iterations=n, cluster_config=cluster_config)
    return {"bw_gbps": bandwidth, "rtt_us": latency / 1000.0,
            "fetch_add_us": atomic / 1000.0, "iops_mops": iops}


def _measure_all():
    simd = _measure_platform()
    dev = _measure_platform(
        cluster_config=dev_platform_cluster_config(2), bw_size=4096,
        quick=True)
    rdma = RDMAModel()
    rdma_row = {"bw_gbps": rdma.effective_bandwidth_gbps,
                "rtt_us": rdma.read_rtt_us(),
                "fetch_add_us": rdma.fetch_add_rtt_us(),
                "iops_mops": rdma.iops_millions()}
    return dev, simd, rdma_row


def test_table2_sonuma_vs_infiniband(benchmark):
    dev, simd, rdma = run_once(benchmark, _measure_all)

    rows = [
        ("Max BW (Gbps)", 1.8, dev["bw_gbps"], 77, simd["bw_gbps"],
         50, rdma["bw_gbps"]),
        ("Read RTT (us)", 1.5, dev["rtt_us"], 0.3, simd["rtt_us"],
         1.19, rdma["rtt_us"]),
        ("Fetch+add (us)", 1.5, dev["fetch_add_us"], 0.3,
         simd["fetch_add_us"], 1.15, rdma["fetch_add_us"]),
        ("IOPS (Mops/s)", 1.97, dev["iops_mops"], 10.9, simd["iops_mops"],
         35.0, rdma["iops_mops"]),
    ]
    print_table(
        "Table 2: soNUMA vs InfiniBand/RDMA",
        ["metric", "dev(paper)", "dev(ours)", "sim(paper)", "sim(ours)",
         "ib(paper)", "ib(ours)"],
        rows)

    # --- Simulated hardware vs RDMA: the paper's headline claims. ---
    # "soNUMA reduces the latency to remote memory by a factor of four".
    assert rdma["rtt_us"] / simd["rtt_us"] > 2.5
    # soNUMA operates at peak memory bandwidth; RDMA capped by PCIe.
    assert simd["bw_gbps"] > rdma["bw_gbps"]
    assert rdma["bw_gbps"] == pytest.approx(50.0, rel=0.05)
    # Per-core operation rates are comparable (~10 M each).
    assert 7.0 < simd["iops_mops"] < 15.0
    assert 30.0 < rdma["iops_mops"] < 40.0
    # Fetch-and-add tracks read RTT on both platforms.
    assert simd["fetch_add_us"] == pytest.approx(simd["rtt_us"], rel=0.5)
    assert rdma["fetch_add_us"] == pytest.approx(1.15, rel=0.1)

    # --- Absolute anchors for the simulated hardware. ---
    assert 0.2 < simd["rtt_us"] < 0.45          # paper: 0.3 us
    assert 60.0 < simd["bw_gbps"] < 90.0        # paper: 77 Gbps

    # --- Development platform: ~5x sim'd HW latency, ~2 Gbps, ~2 Mops. ---
    assert 3.0 < dev["rtt_us"] / simd["rtt_us"] < 8.0
    assert 1.0 < dev["rtt_us"] < 2.5            # paper: 1.5 us
    assert dev["bw_gbps"] < 4.0                 # paper: 1.8 Gbps
    assert 1.0 < dev["iops_mops"] < 4.0         # paper: 1.97 Mops
