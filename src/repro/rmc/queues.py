"""Queue pairs: the work queue / completion queue rings.

"The QP model consists of a work queue (WQ), a bounded buffer written
exclusively by the application, and a completion queue (CQ), a bounded
buffer of the same size written exclusively by the RMC. The CQ entry
contains the index of the completed WQ request. Both are stored in main
memory and coherently cached by the cores and the RMC alike." (§4.1)

Each ring slot occupies one cache line, so polling a slot is a single
coherent L1 access by whichever agent touches it (the cross-agent
invalidation behaviour of :mod:`repro.memory.hierarchy` then yields the
realistic core<->RMC hand-off latency for free).

Functional content is stored as Python objects in the ring; the
``slot_vaddr`` of each slot is what the timed memory path touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..protocol import Opcode
from ..vm.address import CACHE_LINE_SIZE

__all__ = ["WQEntry", "CQEntry", "WorkQueue", "CompletionQueue", "QueuePair"]


@dataclass
class WQEntry:
    """One work-queue request: op, destination, and transfer geometry.

    "The WQ entry specifies the dst_nid, the command (e.g., read, write,
    or atomic), the offset, the length and the local buffer address." (§6)
    """

    op: Opcode
    dst_nid: int
    offset: int               # context-segment offset at the destination
    local_vaddr: int          # source/destination buffer in local VA space
    length: int               # bytes; multiples beyond one line are unrolled
    operand: Optional[int] = None   # fetch-and-add addend / CAS swap value
    compare: Optional[int] = None   # CAS compare value

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(f"WQ entry length must be positive: {self.length}")
        if self.op in (Opcode.RFETCH_ADD, Opcode.RCOMP_SWAP) \
                and self.length != 8:
            raise ValueError("atomic operations act on 8-byte words")
        if self.op is Opcode.RNOTIFY and self.length > 64:
            raise ValueError("a notification carries at most one line")


@dataclass
class CQEntry:
    """One completion: the WQ slot index it completes, plus error status.

    Error replies ("delivered to the application via the CQ", §4.2) carry
    ``error`` so user code can observe segment violations.
    """

    wq_index: int
    error: Optional[str] = None

    @property
    def status(self) -> str:
        """Completion status string: ``"ok"`` or the error reason
        (e.g. ``"timeout"``, ``"segment_violation"``)."""
        return self.error if self.error is not None else "ok"

    @property
    def ok(self) -> bool:
        return self.error is None


class _Ring:
    """Common ring mechanics: fixed slots, one cache line per slot."""

    def __init__(self, size: int, base_vaddr: int):
        if size < 1:
            raise ValueError("ring size must be >= 1")
        if base_vaddr % CACHE_LINE_SIZE != 0:
            raise ValueError("ring base must be line-aligned")
        self.size = size
        self.base_vaddr = base_vaddr
        self.slots: List[Optional[object]] = [None] * size

    def slot_vaddr(self, index: int) -> int:
        """Virtual address of a slot (one line per slot)."""
        if not 0 <= index < self.size:
            raise IndexError(f"slot {index} out of range 0..{self.size - 1}")
        return self.base_vaddr + index * CACHE_LINE_SIZE


class WorkQueue(_Ring):
    """Bounded slot array written by the application, polled by the RMC.

    Slot lifecycle follows the paper's model: the application schedules
    each new entry into a *freed* slot ("rmc_wait_for_slot ... returns
    the freed slot where the next entry will be scheduled", §5.2), the
    RGP consumes entries in posting order, and a slot returns to the
    free pool only when its completion is reaped from the CQ. Because
    completions can arrive out of order (§4.2), freeing by-index (not
    by-count) is what keeps WQ indices unique among outstanding
    requests — the invariant the ITT and the CQ depend on.
    """

    def __init__(self, size: int, base_vaddr: int):
        super().__init__(size, base_vaddr)
        self._free: List[int] = list(range(size - 1, -1, -1))
        self._pending: List[int] = []   # posted, not yet consumed by RGP
        self.posted_total = 0
        #: Doorbell rings: a plain :meth:`post` rings once per entry, a
        #: :meth:`post_batch` once per batch. ``posted_total /
        #: doorbells`` is the achieved batching factor the serving
        #: telemetry reports.
        self.doorbells = 0
        #: Hook invoked on every doorbell. The RMC wires this to the
        #: RGP's wake signal: in hardware the RGP continuously polls; in
        #: the simulation the wake keeps event counts proportional to
        #: work.
        self.on_post = None

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def can_post(self) -> bool:
        """Whether a free slot exists (rmc_wait_for_slot's condition)."""
        return bool(self._free)

    def next_free(self) -> int:
        """The slot the next post will use (for the timed slot write)."""
        if not self._free:
            raise RuntimeError("work queue full (reap completions first)")
        return self._free[-1]

    def place(self, entry: WQEntry) -> int:
        """Application-side: stage a request without ringing the
        doorbell; returns its slot index. The RGP only learns of staged
        entries once :meth:`ring_doorbell` fires — the split lets a
        batched poster write many WQ entries and then announce them all
        with a single doorbell (§4.2's per-request hand-off, amortized).
        """
        if not self._free:
            raise RuntimeError("work queue full (reap completions first)")
        index = self._free.pop()
        if self.slots[index] is not None:
            raise RuntimeError(f"WQ slot {index} still occupied")
        self.slots[index] = entry
        self._pending.append(index)
        self.posted_total += 1
        return index

    def ring_doorbell(self) -> None:
        """Announce staged entries to the RMC (one wake per doorbell)."""
        self.doorbells += 1
        if self.on_post is not None:
            self.on_post()

    def post(self, entry: WQEntry) -> int:
        """Application-side: place a request; returns its slot index.
        A plain post is a one-entry doorbell."""
        index = self.place(entry)
        self.ring_doorbell()
        return index

    def post_batch(self, entries) -> List[int]:
        """Application-side: place several requests under one doorbell;
        returns their slot indices in posting order."""
        if len(entries) > len(self._free):
            raise RuntimeError(
                f"work queue lacks room for a {len(entries)}-entry batch "
                f"({len(self._free)} slots free)")
        indices = [self.place(entry) for entry in entries]
        self.ring_doorbell()
        return indices

    def poll(self) -> Optional[int]:
        """RMC-side: index of the oldest unconsumed request, or None."""
        return self._pending[0] if self._pending else None

    def consume(self, index: int) -> WQEntry:
        """RMC-side: take the request out of the queue for processing."""
        entry = self.slots[index]
        if entry is None:
            raise RuntimeError(f"WQ slot {index} is empty")
        if not self._pending or self._pending[0] != index:
            raise RuntimeError(f"WQ consume out of order at slot {index}")
        self._pending.pop(0)
        self.slots[index] = None
        return entry

    def release_slot(self, index: int) -> None:
        """Application-side: called after reaping the matching CQ entry;
        only now may the slot be reused."""
        if index in self._free:
            raise RuntimeError(f"WQ slot {index} already free")
        if not 0 <= index < self.size:
            raise IndexError(f"slot {index} out of range")
        self._free.append(index)

    def reset(self) -> None:
        """Driver recovery path: drop all queued state, free every slot."""
        self.slots = [None] * self.size
        self._free = list(range(self.size - 1, -1, -1))
        self._pending = []


class CompletionQueue(_Ring):
    """Bounded ring written by the RMC (RCP), polled by the application."""

    def __init__(self, size: int, base_vaddr: int):
        super().__init__(size, base_vaddr)
        self.write_index = 0   # RMC's next write slot
        self.read_index = 0    # application's next read slot
        self.completed_total = 0

    def push(self, entry: CQEntry) -> int:
        """RMC-side: publish a completion. The CQ can never overflow
        because it is the same size as the WQ and every completion frees
        a WQ slot (invariant tested in tests/test_rmc_queues.py)."""
        index = self.write_index
        if self.slots[index] is not None:
            raise RuntimeError(f"CQ overflow at slot {index}")
        self.slots[index] = entry
        self.write_index = (index + 1) % self.size
        self.completed_total += 1
        return index

    def poll(self) -> Optional[CQEntry]:
        """Application-side: peek the next completion, or None."""
        return self.slots[self.read_index]

    def reap(self) -> CQEntry:
        """Application-side: consume the next completion."""
        entry = self.slots[self.read_index]
        if entry is None:
            raise RuntimeError("reap on empty completion queue")
        self.slots[self.read_index] = None
        self.read_index = (self.read_index + 1) % self.size
        return entry

    def reset(self) -> None:
        """Driver recovery path: drop all completions, rewind indices."""
        self.slots = [None] * self.size
        self.write_index = 0
        self.read_index = 0


@dataclass
class QueuePair:
    """A registered WQ/CQ pair bound to a context.

    "Multi-threaded processes can register multiple QPs for the same
    address space and ctx_id." (§4.2)
    """

    qp_id: int
    ctx_id: int
    asid: int
    wq: WorkQueue
    cq: CompletionQueue
    #: Set when the owning RMC crashes: the libos fails API calls on
    #: this QP immediately instead of letting callers spin on rings the
    #: dead RMC will never service again. A rebooted RMC issues fresh
    #: QPs; a halted one stays halted forever.
    halted: bool = False

    @property
    def size(self) -> int:
        return self.wq.size

    def outstanding(self) -> int:
        """Requests posted but not yet reaped."""
        return self.wq.size - self.wq.free_slots
