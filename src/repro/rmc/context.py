"""Context Table (CT) and the CT cache (CT$).

"The CT keeps track of all registered context segments, queue pairs, and
page table root addresses. Each CT entry, indexed by its ctx_id,
specifies the address space and a list of registered QPs (WQ, CQ) for
that context." (§4.2)

"the RMC dedicates two registers for the CT and ITT base addresses, as
well as a small lookaside structure, the CT cache (CT$) that caches
recently accessed CT entries to reduce pressure on the MAQ. The CT$
includes the context segment base addresses and bounds, PT roots, and
the queue addresses." (§4.3)

Timing: a CT$ hit is free (read-only-shared combinational state); a CT$
miss costs one memory access through the RMC's MMU (charged by the
caller, which knows how to issue timed accesses).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..vm.address_space import AddressSpace, ContextSegment
from .queues import QueuePair

__all__ = ["ContextEntry", "ContextTable", "ContextCache"]


@dataclass
class ContextEntry:
    """One registered context on this node."""

    ctx_id: int
    address_space: AddressSpace
    segment: ContextSegment
    qps: List[QueuePair] = field(default_factory=list)

    @property
    def asid(self) -> int:
        return self.address_space.asid

    def register_qp(self, qp: QueuePair) -> None:
        """Attach a QP to this context (must share its ctx_id)."""
        if qp.ctx_id != self.ctx_id:
            raise ValueError(
                f"QP belongs to ctx {qp.ctx_id}, not {self.ctx_id}")
        self.qps.append(qp)


class ContextTable:
    """The in-memory CT, maintained by system software (§5.1)."""

    def __init__(self):
        self._entries: Dict[int, ContextEntry] = {}

    def install(self, entry: ContextEntry) -> None:
        """Register a context (driver-side, at open_context time)."""
        if entry.ctx_id in self._entries:
            raise ValueError(f"ctx_id {entry.ctx_id} already installed")
        self._entries[entry.ctx_id] = entry

    def remove(self, ctx_id: int) -> None:
        """Tear down a context (driver-side)."""
        if ctx_id not in self._entries:
            raise KeyError(f"ctx_id {ctx_id} not installed")
        del self._entries[ctx_id]

    def lookup(self, ctx_id: int) -> Optional[ContextEntry]:
        """The entry for ``ctx_id``, or None (RRPP error path)."""
        return self._entries.get(ctx_id)

    def all_qps(self) -> List[QueuePair]:
        """Every registered QP on this node, in registration order
        (the RGP's polling schedule)."""
        qps: List[QueuePair] = []
        for entry in self._entries.values():
            qps.extend(entry.qps)
        return qps

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ctx_id: int) -> bool:
        return ctx_id in self._entries


class ContextCache:
    """The CT$: a small LRU lookaside over CT entries."""

    def __init__(self, capacity: int = 8):
        if capacity < 0:
            raise ValueError("CT$ capacity must be >= 0 (0 disables it)")
        self.capacity = capacity
        self._cache: "OrderedDict[int, ContextEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, ctx_id: int) -> Optional[ContextEntry]:
        """Probe the CT$ (free on hit; misses cost a memory access)."""
        entry = self._cache.get(ctx_id)
        if entry is not None:
            self._cache.move_to_end(ctx_id)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def insert(self, entry: ContextEntry) -> None:
        """Fill after a CT memory access, evicting LRU if full."""
        if self.capacity == 0:
            return  # disabled (ablation study)
        if entry.ctx_id in self._cache:
            self._cache.move_to_end(entry.ctx_id)
            return
        if len(self._cache) >= self.capacity:
            self._cache.popitem(last=False)
        self._cache[entry.ctx_id] = entry

    def invalidate(self, ctx_id: int) -> None:
        """Drop one entry (context teardown)."""
        self._cache.pop(ctx_id, None)

    def flush(self) -> None:
        """Drop everything (RMC reset path)."""
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
