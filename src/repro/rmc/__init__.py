"""The Remote Memory Controller: queues, CT/ITT, MMU, three pipelines."""

from .context import ContextCache, ContextEntry, ContextTable
from .itt import InflightTransactionTable, ITTEntry, ITTFullError
from .mmu import MMUConfig, RMCMMU
from .queues import CompletionQueue, CQEntry, QueuePair, WorkQueue, WQEntry
from .rmc import RMC, RMCConfig

__all__ = [
    "CompletionQueue",
    "ContextCache",
    "ContextEntry",
    "ContextTable",
    "CQEntry",
    "InflightTransactionTable",
    "ITTEntry",
    "ITTFullError",
    "MMUConfig",
    "QueuePair",
    "RMC",
    "RMCConfig",
    "RMCMMU",
    "WorkQueue",
    "WQEntry",
]
