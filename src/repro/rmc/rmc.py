"""The Remote Memory Controller (RMC).

"The foundational component of soNUMA is the RMC, an architectural block
that services remote memory accesses originating at the local node, as
well as incoming requests from remote nodes. The RMC integrates into the
processor's coherence hierarchy via a private L1 cache and communicates
with the application threads via memory-mapped queues." (§4)

Three decoupled pipelines (Fig. 3):

* **RGP** (Request Generation Pipeline) polls registered WQs, assigns a
  tid per new WQ entry, unrolls multi-line requests into line-sized
  packets (reading local memory for writes/atomic operands), and injects
  them into the NI's request lane.
* **RRPP** (Remote Request Processing Pipeline) serves incoming requests
  *statelessly*: CT lookup (via the CT$), bounds check against the
  context segment, virtual-address computation and translation, the
  memory operation itself, and exactly one reply per request.
* **RCP** (Request Completion Pipeline) consumes replies, deposits read
  payloads into the local buffer, counts line completions in the ITT,
  and writes the CQ entry when the last line of a WQ request completes.

Each pipeline supports multiple transactions in flight; memory accesses
from all three are funneled through the shared, 32-entry MAQ.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..fabric.ni import NetworkInterface
from ..memory.hierarchy import AgentPort
from ..protocol import (
    Opcode,
    PING_TID,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    VirtualLane,
)
from ..sim import Counter, Simulator, WakeSignal
from ..vm.address import CACHE_LINE_SIZE
from ..vm.address_space import SegmentViolation
from .context import ContextCache, ContextEntry, ContextTable
from .itt import InflightTransactionTable
from .mmu import MMUConfig, RMCMMU
from .queues import CQEntry, QueuePair, WQEntry

__all__ = ["RMCConfig", "RMC", "PING_TID"]

_U64_MASK = (1 << 64) - 1
# PING_TID (re-exported here for compatibility) lives in the protocol
# layer now: the NI needs it too, to exempt probes from epoch fencing.
# ITT tids are 0..itt_entries-1 (at most 64 by default), so the probe
# traffic can never collide with a tracked transaction.


@dataclass(frozen=True)
class RMCConfig:
    """RMC microarchitecture parameters (Table 1 defaults).

    The four ``*_overhead_ns`` knobs are zero for the hardwired RMC; the
    development-platform emulation (RMCemu, §7.1) sets them to software
    per-operation costs, turning the same pipelines into the
    kernel-thread implementation whose unrolling becomes the bottleneck
    for large requests (§7.2: "the RMC emulation module becomes the
    performance bottleneck as it unrolls large WQ requests").
    """

    itt_entries: int = 64
    ct_cache_entries: int = 8
    #: One pipeline stage of combinational work (a 2 GHz cycle).
    pipeline_cycle_ns: float = 0.5
    #: Back-off between empty WQ polling sweeps.
    idle_poll_ns: float = 2.0
    #: Doorbell batching: how many WQ entries one timed slot poll may
    #: hand to the RGP. 1 is the paper's per-request hand-off; larger
    #: values amortize the coherent WQ poll across a batch posted under
    #: a single doorbell (the serving tier's fast path). The default
    #: preserves the pre-batching event timeline bit for bit.
    doorbell_batch: int = 1
    #: Software cost to pick up one WQ request (0 for hardware).
    request_overhead_ns: float = 0.0
    #: Software cost per unrolled line at the source (serialized).
    unroll_overhead_ns: float = 0.0
    #: Software cost per incoming request at the destination (serialized).
    rrpp_overhead_ns: float = 0.0
    #: Software cost per incoming reply at the source (serialized).
    rcp_overhead_ns: float = 0.0
    #: Reliability: when a transaction sees no progress for this long,
    #: the RGP retransmits its uncompleted lines. 0 disables the
    #: watchdog entirely (the paper's reliable-fabric assumption).
    retransmit_timeout_ns: float = 100_000.0
    #: Exponential back-off factor applied to the timeout per attempt.
    retransmit_backoff: float = 2.0
    #: Retransmission budget; once exhausted the transaction completes
    #: with a ``timeout`` error status in the CQ instead of hanging.
    max_retries: int = 4
    #: Destination-side replay cache for atomics (exactly-once execution
    #: under retransmission); entries beyond this are evicted LRU.
    atomic_replay_entries: int = 256
    mmu: MMUConfig = field(default_factory=MMUConfig)


def _chunks(offset: int, length: int):
    """Split [offset, offset+length) at the remote line grid.

    Yields (chunk_offset, chunk_len) with chunk_len <= CACHE_LINE_SIZE and
    no chunk crossing a line boundary of the destination segment — the
    line-granularity unroll of §4.2.
    """
    position = offset
    end = offset + length
    while position < end:
        line_end = (position // CACHE_LINE_SIZE + 1) * CACHE_LINE_SIZE
        chunk_end = min(end, line_end)
        yield position, chunk_end - position
        position = chunk_end


class RMC:
    """One node's remote memory controller."""

    def __init__(self, sim: Simulator, node_id: int, ni: NetworkInterface,
                 port: AgentPort, ct_base_paddr: int,
                 config: Optional[RMCConfig] = None):
        self.sim = sim
        self.node_id = node_id
        self.ni = ni
        self.config = config or RMCConfig()
        self.mmu = RMCMMU(sim, port, self.config.mmu)
        self.ct = ContextTable()
        self.ct_cache = ContextCache(self.config.ct_cache_entries)
        self.itt = InflightTransactionTable(self.config.itt_entries)
        self.ct_base_paddr = ct_base_paddr
        self.counters = Counter()
        #: §8 extension hook: ``fn(src_nid, ctx_id, payload) -> bool``
        #: installed by the driver when notifications are enabled.
        self.notification_sink = None
        #: Reliability hook: ``fn(itt_entry)`` invoked when a transaction
        #: exhausts its retry budget ("the RMC notifies the driver of
        #: failures within the soNUMA fabric", §5.1).
        self.failure_sink = None
        #: Heartbeat hook: ``fn(src_nid)`` invoked when an RPING pong
        #: arrives (driver failure detector).
        self.ping_sink = None
        #: (src_nid, tid) -> (payload, old_value) of the last atomic
        #: executed for that transaction, replayed on retransmission so
        #: non-idempotent ops run exactly once.
        self._atomic_replay: "OrderedDict[Tuple[int, int], Tuple[Optional[bytes], Optional[int]]]" \
            = OrderedDict()
        # qp_id -> (qp, owning context entry): the RGP's polling schedule.
        self._qps: Dict[int, Tuple[QueuePair, ContextEntry]] = {}
        self._running = True
        #: Node-crash flag (fault controller): while halted the pipelines
        #: drain and drop traffic instead of serving it. The loops keep
        #: running — killing and respawning them would race parked
        #: ``receive()`` coroutines into duplicate pipelines on restart.
        self.halted = False
        #: Gray-failure flag: the RMC serves data traffic but stops
        #: answering RPING probes, so the membership layer sees a dead
        #: node while stale data replies keep flowing (the classic
        #: split-brain scenario that epoch fencing exists to stop).
        self.mute_pings = False
        # Simulation-efficiency device standing in for continuous WQ
        # polling: posts and tid retirements wake the RGP sweep.
        self._rgp_wake = WakeSignal(sim)
        sim.process(self._rgp_loop(), name=f"rmc{node_id}.rgp")
        sim.process(self._rrpp_loop(), name=f"rmc{node_id}.rrpp")
        sim.process(self._rcp_loop(), name=f"rmc{node_id}.rcp")

    # -- registration (driven by the device driver, §5.1) ------------------

    def install_context(self, entry: ContextEntry) -> None:
        """Make a context segment reachable by remote nodes."""
        self.ct.install(entry)

    def register_qp(self, qp: QueuePair) -> None:
        """Add a QP to the RGP's polling schedule."""
        entry = self.ct.lookup(qp.ctx_id)
        if entry is None:
            raise ValueError(f"context {qp.ctx_id} not installed")
        if qp.qp_id in self._qps:
            raise ValueError(f"QP {qp.qp_id} already registered")
        entry.register_qp(qp)
        self._qps[qp.qp_id] = (qp, entry)
        qp.wq.on_post = self._rgp_wake.trigger
        self._rgp_wake.trigger()

    def reset(self) -> int:
        """Fabric-failure reset: drop in-flight state (§5.1).

        Returns the number of aborted transactions. Applications must be
        restarted by higher layers; queue state is left to the driver.
        """
        aborted = self.itt.abort_all()
        self.mmu.reset()
        self.ct_cache.flush()
        self._atomic_replay.clear()
        self.counters.incr("resets")
        return aborted

    # -- node crash / restart (fault controller, membership layer) -----------

    def halt(self, reason: str = "node_crash") -> int:
        """Crash this RMC: stop all pipelines and error-complete every
        in-flight transaction.

        The crashed node's application coroutines cannot be killed by the
        simulator, so each in-flight WQ request is functionally completed
        with a ``reason`` error CQ entry — blocked sessions then raise
        :class:`~repro.runtime.qp_api.RemoteOpFailed` and can observe
        their own death instead of spinning forever. Returns the number
        of transactions error-completed.
        """
        if self.halted:
            return 0
        self.halted = True
        # Fail the libos API fast: sessions on these QPs would otherwise
        # spin forever polling rings the dead pipelines never service.
        for qp, _ in self._qps.values():
            qp.halted = True
        self.counters.incr("halts")
        failed = 0
        for entry in self.itt.active_entries():
            if self.itt.force_fail(entry.tid, reason) is None:
                continue
            entry.qp.cq.push(CQEntry(wq_index=entry.wq_index,
                                     error=entry.error))
            self.itt.retire(entry.tid)
            failed += 1
        if failed:
            self.counters.incr("crash_error_completions", failed)
        return failed

    def abort_peer(self, dst_nid: int, reason: str = "peer_evicted") -> int:
        """Requester-side fence: force-fail every in-flight transaction
        targeting ``dst_nid``.

        Called by the membership layer when it evicts a peer. Without
        this, a retransmitting request can outlive the peer's entire
        crash-restart window and then *succeed* against the reborn
        node's wiped memory — returning zeros with a healthy completion
        status. (Stale replies from the old incarnation are separately
        epoch-fenced at the NI, so the freed tids cannot be corrupted.)
        Returns the number of transactions error-completed.
        """
        failed = 0
        for entry in self.itt.active_entries():
            wq_entry = entry.wq_entry
            if wq_entry is None or wq_entry.dst_nid != dst_nid:
                continue
            if self.itt.force_fail(entry.tid, reason) is None:
                continue
            entry.qp.cq.push(CQEntry(wq_index=entry.wq_index,
                                     error=entry.error))
            self.itt.retire(entry.tid)
            failed += 1
        if failed:
            self.counters.incr("peer_abort_completions", failed)
        return failed

    def resume(self) -> None:
        """Boot a halted RMC back into service with amnesia.

        Everything volatile is gone: in-flight state, caches, the atomic
        replay cache, and — critically — all QP registrations (the
        pre-crash rings live in wiped memory; surviving registrations
        would let the RGP execute stale WQ entries). Applications on the
        reborn node must open fresh QPs.
        """
        self.reset()
        for _, entry in self._qps.values():
            entry.qps.clear()
        self._qps.clear()
        self.halted = False
        self.mute_pings = False
        self.counters.incr("restarts")
        self._rgp_wake.trigger()

    # -- Request Generation Pipeline (RGP) ----------------------------------

    def _rgp_loop(self):
        """Poll registered WQs; unroll and inject new requests (Fig. 3b).

        Hardware polls continuously; the simulation sleeps on a wake
        signal (triggered by WQ posts and tid retirements) and then runs
        the same timed polling sweep, so the modeled per-poll memory
        timing is preserved without flooding the event heap while idle.
        """
        sim = self.sim
        cycle = self.config.pipeline_cycle_ns
        batch_limit = max(1, self.config.doorbell_batch)
        while self._running:
            if self.halted:
                # Crashed: generate nothing until resume() wakes us.
                yield self._rgp_wake.wait()
                continue
            found_work = False
            for qp, entry in list(self._qps.values()):
                # Timed poll of the next WQ slot (a coherent L1 access).
                pending = qp.wq.poll()
                slot_vaddr = qp.wq.slot_vaddr(
                    pending if pending is not None else 0)
                paddr = yield from self.mmu.translate(
                    entry.asid, entry.address_space.page_table, slot_vaddr)
                yield from self.mmu.access(paddr)
                # Doorbell batching: the one timed poll above covers up
                # to ``doorbell_batch`` entries posted under the same
                # doorbell; each entry still pays its own pickup and
                # unroll costs (that work is per-request either way).
                consumed = 0
                while consumed < batch_limit:
                    index = qp.wq.poll()
                    if index is None:
                        break
                    if not self.itt.has_free:
                        # All tids in flight: a retirement will wake us.
                        break
                    found_work = True
                    wq_entry = qp.wq.consume(index)
                    consumed += 1
                    if consumed > 1:
                        self.counters.incr("wq_batched_requests")
                    # ITT entry initialization plus the (RMCemu) software
                    # pickup cost, coalesced into one kernel event.
                    yield cycle + self.config.request_overhead_ns
                    if self.config.unroll_overhead_ns:
                        # RMCemu: the RGP kernel thread processes requests
                        # serially, so generation happens inline.
                        yield from self._generate(qp, entry, index, wq_entry)
                    else:
                        sim.process(self._generate(qp, entry, index,
                                                   wq_entry),
                                    name=f"rmc{self.node_id}.rgp.gen")
            if not found_work:
                yield self._rgp_wake.wait()
                yield self.config.idle_poll_ns

    def _generate(self, qp: QueuePair, ctx: ContextEntry, wq_index: int,
                  wq_entry: WQEntry):
        """Unroll one WQ request into line-sized network packets."""
        sim = self.sim
        cycle = self.config.pipeline_cycle_ns
        chunks = list(_chunks(wq_entry.offset, wq_entry.length))
        itt_entry = self.itt.allocate(
            qp=qp, wq_index=wq_index, op=wq_entry.op,
            base_offset=wq_entry.offset, local_vaddr=wq_entry.local_vaddr,
            total_lines=len(chunks), wq_entry=wq_entry, ctx=ctx,
            chunks=chunks,
            timeout_ns=self.config.retransmit_timeout_ns,
            retries_left=self.config.max_retries)
        self.counters.incr("wq_requests")
        if itt_entry.timeout_ns:
            itt_entry.deadline_ns = sim.now + itt_entry.timeout_ns
            sim.process(self._watchdog(itt_entry),
                        name=f"rmc{self.node_id}.rgp.watchdog",
                        daemon=True)
        # Per-line unroll stage plus the (RMCemu) serialized software
        # unroll cost, coalesced into one kernel event per line.
        per_line = cycle + self.config.unroll_overhead_ns
        for chunk_offset, chunk_len in chunks:
            yield per_line
            if self.halted:
                return   # crashed mid-unroll
            sim.process(
                self._emit_chunk(ctx, wq_entry, itt_entry.tid,
                                 chunk_offset, chunk_len),
                name=f"rmc{self.node_id}.rgp.emit")

    def _emit_chunk(self, ctx: ContextEntry, wq_entry: WQEntry, tid: int,
                    chunk_offset: int, chunk_len: int, attempt: int = 0):
        """Build and inject one line-granularity request packet."""
        if self.halted:
            return   # crashed before this line left the node
        payload = None
        if wq_entry.op in (Opcode.RWRITE, Opcode.RNOTIFY):
            # "For remote writes ... the RMC accesses the local node's
            # memory to read the required data" (§4.2).
            rel = chunk_offset - wq_entry.offset
            lvaddr = wq_entry.local_vaddr + rel
            lpaddr = yield from self.mmu.translate(
                ctx.asid, ctx.address_space.page_table, lvaddr)
            yield from self.mmu.access(lpaddr, size=chunk_len)
            payload = self.mmu.read_bytes(lpaddr, chunk_len)
        packet = RequestPacket(
            dst_nid=wq_entry.dst_nid, src_nid=self.node_id,
            op=wq_entry.op, ctx_id=ctx.ctx_id, offset=chunk_offset,
            tid=tid, length=chunk_len, payload=payload,
            operand=wq_entry.operand, compare=wq_entry.compare,
            attempt=attempt)
        yield self.config.pipeline_cycle_ns  # pkt gen
        yield self.ni.inject(packet)
        self.counters.incr("lines_sent")

    # -- retransmission watchdog (reliability layer) -------------------------

    def _watchdog(self, entry):
        """Per-transaction timer: retransmit on silence, fail on budget.

        All sleeps are daemon events, so an armed watchdog never extends
        a simulation past its last real event — with a clean fabric the
        reliability layer is timing-invisible.
        """
        sim = self.sim
        while True:
            delay = entry.deadline_ns - sim.now
            if delay > 0:
                yield sim.timeout(delay, daemon=True)
            if self.itt.get(entry.tid) is not entry or entry.done:
                return   # completed, reset, or force-failed: stand down
            if sim.now < entry.deadline_ns:
                continue  # a reply arrived meanwhile and pushed the deadline
            if entry.retries_left <= 0:
                yield from self._timeout_transaction(entry)
                return
            entry.retries_left -= 1
            entry.attempt += 1
            backoff = self.config.retransmit_backoff ** entry.attempt
            entry.deadline_ns = sim.now + entry.timeout_ns * backoff
            self.counters.incr("retransmissions")
            yield from self._retransmit(entry)

    def _retransmit(self, entry):
        """Re-emit every line the transaction has not yet completed."""
        for chunk_offset, chunk_len in entry.chunks:
            if chunk_offset in entry.completed_offsets:
                continue
            if self.itt.get(entry.tid) is not entry or entry.done:
                return
            yield self.config.pipeline_cycle_ns
            yield from self._emit_chunk(entry.ctx, entry.wq_entry,
                                        entry.tid, chunk_offset, chunk_len,
                                        attempt=entry.attempt)
            self.counters.incr("lines_retransmitted")

    def _timeout_transaction(self, entry):
        """Retry budget exhausted: error-complete instead of hanging."""
        failed = self.itt.force_fail(entry.tid, ReplyStatus.TIMEOUT.value)
        if failed is None:
            return
        self.counters.incr("transactions_timed_out")
        if self.failure_sink is not None:
            self.failure_sink(entry)
        yield from self._finish_request(entry)

    # -- Remote Request Processing Pipeline (RRPP) ---------------------------

    def _rrpp_loop(self):
        """Decode incoming requests; serve each concurrently (stateless)."""
        sim = self.sim
        while self._running:
            packet = yield from self.ni.receive(VirtualLane.REQUEST)
            if self.halted:
                # A crashed node drains frames (returning link credits so
                # the fabric never wedges) but serves nothing.
                self.counters.incr("halted_drops")
                continue
            if self.config.rrpp_overhead_ns:
                # RMCemu: one kernel thread serves requests serially
                # (decode + software cost, coalesced into one event).
                yield (self.config.pipeline_cycle_ns
                       + self.config.rrpp_overhead_ns)
                yield from self._serve_request(packet)
            else:
                yield self.config.pipeline_cycle_ns  # decode
                sim.process(self._serve_request(packet),
                            name=f"rmc{self.node_id}.rrpp.serve")

    def _serve_request(self, req: RequestPacket):
        """CT lookup -> bounds check -> translate -> memory op -> reply."""
        sim = self.sim
        self.counters.incr("requests_served")

        if req.op is Opcode.RPING:
            # Liveness probe: answered from the pipeline itself, before
            # any context state is touched, so a pong only attests that
            # the link and the remote RMC are alive.
            if self.mute_pings:
                # Gray failure: alive on the data path, dead to the
                # control plane (fault controller's gray mode).
                self.counters.incr("pings_muted")
                return
            self.counters.incr("pings_served")
            yield from self._reply(req)
            return

        ctx = self.ct_cache.lookup(req.ctx_id)
        if ctx is None:
            # CT$ miss: one memory access to the in-memory CT.
            ct_paddr = self.ct_base_paddr + req.ctx_id * CACHE_LINE_SIZE
            yield from self.mmu.access(ct_paddr)
            ctx = self.ct.lookup(req.ctx_id)
            if ctx is None:
                self.counters.incr("errors_bad_context")
                yield from self._reply(req, status=ReplyStatus.BAD_CONTEXT)
                return
            self.ct_cache.insert(ctx)

        if req.op is Opcode.RNOTIFY:
            # §8 extension: deliver to the driver's notification queue
            # and raise the (modeled) interrupt — no memory access, no
            # state kept on rejection (the protocol stays stateless).
            accepted = (self.notification_sink is not None
                        and self.notification_sink(req.src_nid, req.ctx_id,
                                                   req.payload))
            if accepted:
                self.counters.incr("notifications_delivered")
                yield from self._reply(req)
            else:
                self.counters.incr("notifications_rejected")
                yield from self._reply(req,
                                       status=ReplyStatus.NOTIFY_REJECTED)
            return

        try:
            ctx.segment.check(req.offset, req.length)
        except SegmentViolation:
            # "Virtual addresses that fall outside of the range of the
            # specified security context are signaled through an error
            # message" (§4.2).
            self.counters.incr("errors_segment_violation")
            yield from self._reply(req, status=ReplyStatus.SEGMENT_VIOLATION)
            return

        replay_key = None
        if req.op in (Opcode.RFETCH_ADD, Opcode.RCOMP_SWAP):
            replay_key = (req.src_nid, req.tid)
            if req.attempt > 0:
                # Retransmission of a non-idempotent op: if we already
                # executed it (the reply was lost, not the request),
                # replay the recorded result instead of re-executing.
                cached = self._atomic_replay.get(replay_key)
                if cached is not None:
                    self.counters.incr("atomic_replays")
                    yield from self._reply(req, payload=cached[0],
                                           old_value=cached[1])
                    return

        vaddr = ctx.segment.vaddr_of(req.offset)
        paddr = yield from self.mmu.translate(
            ctx.asid, ctx.address_space.page_table, vaddr)

        payload = None
        old_value = None
        if req.op is Opcode.RREAD:
            # Streaming (non-allocating) read: the data leaves the node
            # immediately; caching it would only evict useful lines.
            yield from self.mmu.access(paddr, size=req.length,
                                       allocate=False)
            payload = self.mmu.read_bytes(paddr, req.length)
        elif req.op is Opcode.RWRITE:
            yield from self.mmu.access(paddr, is_write=True,
                                       size=req.length)
            self.mmu.write_bytes(paddr, req.payload)
        elif req.op is Opcode.RFETCH_ADD:
            # Executed "atomically within the local cache coherence
            # hierarchy of the destination node" (§5.2): the functional
            # read-modify-write below is a single simulation step.
            yield from self.mmu.access(paddr, is_write=True, size=8)
            old_value = int.from_bytes(self.mmu.read_bytes(paddr, 8),
                                       "little")
            new_value = (old_value + req.operand) & _U64_MASK
            self.mmu.write_bytes(paddr, new_value.to_bytes(8, "little"))
            payload = old_value.to_bytes(8, "little")
        elif req.op is Opcode.RCOMP_SWAP:
            yield from self.mmu.access(paddr, is_write=True, size=8)
            old_value = int.from_bytes(self.mmu.read_bytes(paddr, 8),
                                       "little")
            if old_value == req.compare:
                self.mmu.write_bytes(
                    paddr, (req.operand & _U64_MASK).to_bytes(8, "little"))
            payload = old_value.to_bytes(8, "little")
        else:  # pragma: no cover - the Opcode enum is closed
            raise ValueError(f"unknown opcode {req.op}")

        if replay_key is not None:
            self._atomic_replay[replay_key] = (payload, old_value)
            self._atomic_replay.move_to_end(replay_key)
            while len(self._atomic_replay) > self.config.atomic_replay_entries:
                self._atomic_replay.popitem(last=False)

        yield from self._reply(req, payload=payload, old_value=old_value)

    def _reply(self, req: RequestPacket,
               status: ReplyStatus = ReplyStatus.OK,
               payload: Optional[bytes] = None,
               old_value: Optional[int] = None):
        """Generate the single reply for a request (§6)."""
        if self.halted:
            return   # crashed between service and reply generation
        yield self.config.pipeline_cycle_ns
        reply = ReplyPacket(dst_nid=req.src_nid, src_nid=self.node_id,
                            tid=req.tid, offset=req.offset, status=status,
                            payload=payload, old_value=old_value)
        yield self.ni.inject(reply)
        self.counters.incr("replies_sent")

    # -- Request Completion Pipeline (RCP) -----------------------------------

    def _rcp_loop(self):
        """Decode incoming replies; complete each concurrently."""
        sim = self.sim
        while self._running:
            packet = yield from self.ni.receive(VirtualLane.REPLY)
            if self.halted:
                self.counters.incr("halted_drops")
                continue
            if self.config.rcp_overhead_ns:
                # RMCemu: RGP and RCP share one emulation vCPU; replies
                # are completed serially in software (decode + software
                # cost, coalesced into one event).
                yield (self.config.pipeline_cycle_ns
                       + self.config.rcp_overhead_ns)
                yield from self._complete(packet)
            else:
                yield self.config.pipeline_cycle_ns  # decode
                sim.process(self._complete(packet),
                            name=f"rmc{self.node_id}.rcp.complete")

    def _complete(self, reply: ReplyPacket):
        """Deposit payload, count the line, finish the WQ request."""
        if reply.tid == PING_TID:
            # Heartbeat pong: route to the driver's failure detector.
            self.counters.incr("pongs_received")
            if self.ping_sink is not None:
                self.ping_sink(reply.src_nid)
            return

        entry = self.itt.get(reply.tid)
        if entry is None or entry.done:
            # The transaction was retired, reset, or force-failed while
            # this reply was in flight.
            self.counters.incr("replies_stale")
            return
        if not entry.covers_offset(reply.offset):
            # tid reuse: the reply belongs to a previous occupant.
            self.counters.incr("replies_stale")
            return
        if reply.offset in entry.completed_offsets:
            # A retransmitted request whose original reply also arrived.
            self.counters.incr("replies_duplicate")
            return

        error = None
        if reply.status is not ReplyStatus.OK:
            error = reply.status.value
        elif reply.payload is not None:
            # Reads and atomics deposit into the local buffer; "remote
            # writes naturally do not require an update of the
            # application's memory at the source node" (§4.2).
            ctx = self._context_of(entry.qp)
            lvaddr = entry.line_local_vaddr(reply.offset)
            lpaddr = yield from self.mmu.translate(
                ctx.asid, ctx.address_space.page_table, lvaddr)
            yield from self.mmu.access(lpaddr, is_write=True,
                                       size=len(reply.payload))
            self.mmu.write_bytes(lpaddr, reply.payload)
        # The deposit yielded: re-check that the watchdog didn't time the
        # transaction out (or a reset recycle the tid) underneath us.
        if self.itt.get(reply.tid) is not entry or entry.done:
            self.counters.incr("replies_stale")
            return
        self.counters.incr("replies_handled")

        # Per-line progress refreshes the retransmit deadline, so slow
        # multi-line transfers are not punished by a per-request timer.
        if entry.timeout_ns:
            entry.deadline_ns = self.sim.now + entry.timeout_ns
        self.itt.complete_line(reply.tid, error=error, offset=reply.offset)
        if entry.done:
            yield from self._finish_request(entry)

    def _finish_request(self, entry):
        """Write the CQ entry and retire the tid."""
        qp = entry.qp
        ctx = self._context_of(qp)
        cq_vaddr = qp.cq.slot_vaddr(qp.cq.write_index)
        cq_paddr = yield from self.mmu.translate(
            ctx.asid, ctx.address_space.page_table, cq_vaddr)
        yield from self.mmu.access(cq_paddr, is_write=True)
        qp.cq.push(CQEntry(wq_index=entry.wq_index, error=entry.error))
        self.itt.retire(entry.tid)
        self.counters.incr("cq_completions")
        # A tid freed up: requests skipped on a full ITT can proceed.
        self._rgp_wake.trigger()

    def _context_of(self, qp: QueuePair) -> ContextEntry:
        return self._qps[qp.qp_id][1]
