"""Inflight Transaction Table (ITT).

"the ITT is used exclusively by the RMC and keeps track of the progress
of each WQ request" (§4.2). The RGP allocates a transfer id (tid) per WQ
request and uses the ITT to unroll multi-line requests; the RCP uses the
tid carried in each reply to find the originating WQ entry and to count
line completions: "Once the last reply is processed, the RMC signals the
request's completion by writing the index of the completed WQ entry into
the corresponding CQ" (§4.2).

The tid namespace is per-source-RMC and opaque to the destination (§6).
A bounded table naturally bounds the number of WQ requests in flight.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Sequence, Set, Tuple

from ..protocol import Opcode
from .queues import QueuePair, WQEntry

__all__ = ["ITTEntry", "InflightTransactionTable", "ITTFullError"]


class ITTFullError(RuntimeError):
    """All tids are in use; the RGP must wait for completions."""


@dataclass
class ITTEntry:
    """Progress state for one WQ request being unrolled/completed."""

    tid: int
    qp: QueuePair
    wq_index: int
    op: Opcode
    base_offset: int          # remote segment offset of the first byte
    local_vaddr: int          # local buffer base
    total_lines: int
    completed_lines: int = 0
    error: Optional[str] = None
    # -- reliability state (retransmission watchdog, RGP) -----------------
    #: The originating WQ entry + context, kept so uncompleted lines can
    #: be regenerated on retransmission.
    wq_entry: Optional[WQEntry] = None
    ctx: Any = None
    chunks: Optional[Sequence[Tuple[int, int]]] = None
    #: Reply offsets already accounted — duplicate replies (a request
    #: retransmitted because its reply was lost) are rejected with this.
    completed_offsets: Set[int] = field(default_factory=set)
    timeout_ns: float = 0.0      # 0 disables the watchdog
    deadline_ns: float = 0.0     # sim time after which the RGP retransmits
    retries_left: int = 0
    attempt: int = 0             # current retransmission attempt (0 = first)
    failed: bool = False         # force-failed by the watchdog

    @property
    def done(self) -> bool:
        return self.failed or self.completed_lines >= self.total_lines

    def covers_offset(self, offset: int) -> bool:
        """Whether a reply offset belongs to this request's line grid."""
        if self.chunks is None:
            return True
        return any(offset == chunk_offset for chunk_offset, _ in self.chunks)

    def line_local_vaddr(self, reply_offset: int) -> int:
        """Where a reply's payload lands in the local buffer.

        "For multi-line requests, the RMC computes the target virtual
        address based on the buffer base address specified in the WQ
        entry and the offset specified in the reply message." (§4.2)
        """
        return self.local_vaddr + (reply_offset - self.base_offset)


class InflightTransactionTable:
    """Fixed-capacity tid allocator + per-request progress tracking."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("ITT capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, ITTEntry] = {}
        # FIFO recycling: a retired tid goes to the back of the queue,
        # so it is not reused until every other free tid has been. This
        # keeps a tid "quarantined" for ~capacity transactions — far
        # longer than any stale packet of its previous incarnation can
        # survive in the fabric — which is what makes the tid a safe
        # transaction identity for retransmission and reply dedup.
        self._free_tids: Deque[int] = deque(range(capacity))
        self.allocated_total = 0
        self.peak_in_flight = 0

    @property
    def in_flight(self) -> int:
        return len(self._entries)

    @property
    def has_free(self) -> bool:
        return bool(self._free_tids)

    def allocate(self, qp: QueuePair, wq_index: int, op: Opcode,
                 base_offset: int, local_vaddr: int,
                 total_lines: int,
                 wq_entry: Optional[WQEntry] = None,
                 ctx: Any = None,
                 chunks: Optional[Sequence[Tuple[int, int]]] = None,
                 timeout_ns: float = 0.0,
                 retries_left: int = 0) -> ITTEntry:
        """Assign a tid and create the progress entry for a WQ request."""
        if not self._free_tids:
            raise ITTFullError(
                f"all {self.capacity} tids in flight")
        if total_lines < 1:
            raise ValueError("a request must cover at least one line")
        tid = self._free_tids.popleft()
        entry = ITTEntry(tid=tid, qp=qp, wq_index=wq_index, op=op,
                         base_offset=base_offset, local_vaddr=local_vaddr,
                         total_lines=total_lines, wq_entry=wq_entry,
                         ctx=ctx, chunks=chunks, timeout_ns=timeout_ns,
                         retries_left=retries_left)
        self._entries[tid] = entry
        self.allocated_total += 1
        if len(self._entries) > self.peak_in_flight:
            self.peak_in_flight = len(self._entries)
        return entry

    def lookup(self, tid: int) -> ITTEntry:
        """The in-flight entry for ``tid`` (RCP reply handling)."""
        entry = self._entries.get(tid)
        if entry is None:
            raise KeyError(f"no in-flight transaction with tid {tid}")
        return entry

    def get(self, tid: int) -> Optional[ITTEntry]:
        """Like :meth:`lookup` but returns None for unknown/retired tids.

        Reliability paths use this (plus an identity check against the
        entry they hold) so stale replies and watchdogs racing a reset
        never raise on a recycled tid.
        """
        return self._entries.get(tid)

    def complete_line(self, tid: int, error: Optional[str] = None,
                      offset: Optional[int] = None) -> ITTEntry:
        """Record one line completion; caller checks ``entry.done``."""
        entry = self.lookup(tid)
        if entry.done:
            raise RuntimeError(f"tid {tid} already fully completed")
        entry.completed_lines += 1
        if offset is not None:
            entry.completed_offsets.add(offset)
        if error is not None:
            entry.error = error
        return entry

    def force_fail(self, tid: int, error: str) -> Optional[ITTEntry]:
        """Terminate a transaction from the watchdog (retry exhaustion).

        Marks the entry failed so ``done`` becomes True and any replies
        still in flight are treated as stale. Returns the entry, or None
        if the transaction already completed/retired (lost the race).
        """
        entry = self._entries.get(tid)
        if entry is None or entry.done:
            return None
        entry.failed = True
        entry.error = error
        return entry

    def retire(self, tid: int) -> None:
        """Free the tid once the CQ entry has been written."""
        entry = self._entries.pop(tid, None)
        if entry is None:
            raise KeyError(f"retire of unknown tid {tid}")
        if not entry.done:
            raise RuntimeError(
                f"retire of tid {tid} with {entry.completed_lines}/"
                f"{entry.total_lines} lines complete")
        self._free_tids.append(tid)

    def active_entries(self):
        """Snapshot of every in-flight entry (crash error-completion)."""
        return list(self._entries.values())

    def abort_all(self) -> int:
        """Drop every in-flight transaction (RMC reset path, §5.1)."""
        count = len(self._entries)
        for tid in list(self._entries):
            self._entries.pop(tid)
            self._free_tids.append(tid)
        return count
