"""The RMC's memory interface block (MMU + MAQ).

"The memory interface block (MMU) contains a TLB for fast access to
recent address translations ... TLB misses are serviced by a hardware
page walker." (§4.3)

"the RMC allows multiple concurrent memory accesses in flight via a
Memory Access Queue (MAQ). The MAQ handles all memory read and write
operations, including accesses to application data, WQ and CQ
interactions, page table walks, as well as ITT and CT accesses. The
number of outstanding operations is limited by the number of miss status
handling registers at the RMC's L1 cache." (§4.3)

Table 1: 32-entry MAQ, 32-entry TLB.

Modeling note: page-table radix nodes are assumed L2-resident (they are
tiny and hot), so each walk level is charged an L1-miss/L2-hit access
through the MAQ rather than being given synthetic physical addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.hierarchy import AgentPort
from ..sim import Resource, Simulator
from ..vm.address import CACHE_LINE_SIZE, page_offset
from ..vm.page_table import PageTable, PageWalker
from ..vm.tlb import TLB

__all__ = ["MMUConfig", "RMCMMU"]


@dataclass(frozen=True)
class MMUConfig:
    """RMC memory-interface parameters (Table 1 defaults)."""

    maq_entries: int = 32
    tlb_entries: int = 32
    tlb_associativity: int = 4
    tlb_latency_ns: float = 0.5       # one 2 GHz cycle
    walk_level_latency_ns: float = 4.5  # L1 miss + L2 hit per radix level

    def __post_init__(self):
        if self.maq_entries < 1:
            raise ValueError("MAQ needs at least one entry")


class RMCMMU:
    """Timed translation + MAQ-limited memory access for the RMC."""

    def __init__(self, sim: Simulator, port: AgentPort,
                 config: MMUConfig = MMUConfig()):
        self.sim = sim
        self.port = port
        self.config = config
        self.maq = Resource(sim, capacity=config.maq_entries, name="maq")
        self.tlb = TLB(entries=config.tlb_entries,
                       associativity=config.tlb_associativity)
        self.walker = PageWalker(self._walk_level_access)
        self.translations = 0
        self.walks = 0

    def _walk_level_access(self):
        """One page-table-node access, serialized through the MAQ."""
        yield self.maq.acquire()
        yield self.config.walk_level_latency_ns
        self.maq.release()

    def translate(self, asid: int, page_table: PageTable, vaddr: int):
        """Timed coroutine: virtual -> physical through TLB or walker."""
        yield self.config.tlb_latency_ns
        self.translations += 1
        pte = self.tlb.lookup(asid, vaddr)
        if pte is None:
            self.walks += 1
            pte = yield from self.walker.walk(page_table, vaddr)
            self.tlb.insert(asid, vaddr, pte)
        return pte.frame_paddr + page_offset(vaddr)

    def access(self, paddr: int, is_write: bool = False,
               size: int = CACHE_LINE_SIZE, allocate: bool = True):
        """Timed, MAQ-limited memory access through the RMC's private L1.

        Returns the deepest hierarchy level touched ('l1'|'l2'|'dram').
        ``allocate=False`` streams past the caches (RRPP serving reads).
        """
        yield self.maq.acquire()
        try:
            level = yield from self.port.access(paddr, is_write=is_write,
                                                size=size,
                                                allocate=allocate)
        finally:
            self.maq.release()
        return level

    def read_bytes(self, paddr: int, length: int) -> bytes:
        """Functional data read (untimed; pair with :meth:`access`)."""
        return self.port.read_bytes(paddr, length)

    def write_bytes(self, paddr: int, data: bytes) -> None:
        """Functional data write (untimed; pair with :meth:`access`)."""
        self.port.write_bytes(paddr, data)

    def reset(self) -> None:
        """Flush volatile translation state (fabric-failure reset path)."""
        self.tlb.flush()
