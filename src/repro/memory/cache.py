"""Set-associative cache tag arrays with true-LRU replacement.

Caches in this model are *timing* structures: they track which lines are
resident (tags + dirty bits) so the hierarchy can decide how far an
access must travel, but the data itself lives in the node's flat
:class:`~repro.vm.physical.PhysicalMemory`. This separation means timing
bugs cannot corrupt data (see DESIGN.md).

Geometry defaults follow Table 1 of the paper: split 32 KB 2-way L1s
with 64-byte blocks and 32 MSHRs; a 4 MB 16-way L2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..vm.address import CACHE_LINE_SIZE, line_align_down

__all__ = ["CacheConfig", "Cache", "EvictedLine"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``latency_ns`` is the tag+data access time charged on every probe of
    this level (Table 1: L1 3 cycles @ 2 GHz = 1.5 ns; L2 6 cycles = 3 ns).
    """

    name: str
    size_bytes: int
    associativity: int
    latency_ns: float
    mshrs: int = 32
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self):
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("size and associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_size}B lines"
            )
        if self.latency_ns < 0:
            raise ValueError("latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


@dataclass
class EvictedLine:
    """A line displaced by a fill; ``dirty`` lines must be written back."""

    line_addr: int
    dirty: bool


class Cache:
    """One level of cache: a set-associative tag array with LRU.

    Addresses handed to the cache are physical line addresses; callers
    align them (``line_align_down``) or pass any address and the cache
    aligns internally.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # set index -> OrderedDict[line_addr -> dirty_bit], LRU first.
        self._sets: Dict[int, OrderedDict] = {
            i: OrderedDict() for i in range(config.num_sets)
        }
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    def _index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_size) % self.config.num_sets

    def probe(self, addr: int, is_write: bool = False) -> bool:
        """Look up a line; updates LRU and dirty state. True on hit."""
        line = line_align_down(addr)
        cache_set = self._sets[self._index(line)]
        if line in cache_set:
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-perturbing lookup (no LRU update, no counters)."""
        line = line_align_down(addr)
        return line in self._sets[self._index(line)]

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line after a miss; returns the victim, if any."""
        line = line_align_down(addr)
        cache_set = self._sets[self._index(line)]
        victim = None
        if line in cache_set:
            # Already present (e.g. a racing fill); just refresh state.
            cache_set.move_to_end(line)
            cache_set[line] = cache_set[line] or dirty
            return None
        if len(cache_set) >= self.config.associativity:
            victim_addr, victim_dirty = cache_set.popitem(last=False)
            victim = EvictedLine(victim_addr, victim_dirty)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        cache_set[line] = dirty
        return victim

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove a line (coherence action); returns it if it was dirty."""
        line = line_align_down(addr)
        cache_set = self._sets[self._index(line)]
        dirty = cache_set.pop(line, None)
        if dirty is None:
            return None
        self.invalidations += 1
        return EvictedLine(line, dirty)

    def flush(self) -> int:
        """Drop everything; returns the number of lines that were dirty."""
        dirty_count = 0
        for cache_set in self._sets.values():
            dirty_count += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        return dirty_count

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
