"""The node-local coherent memory hierarchy.

Each node has a set of **agents** (application cores and the RMC), each
with a private L1 cache, sharing an inclusive L2 and one DRAM channel —
exactly the arrangement in paper Fig. 2 / Table 1. The RMC "integrates
into the processor's coherence hierarchy via a private L1 cache" (§4),
so WQ/CQ and page-table lines migrate between the core's and the RMC's
L1s via ordinary coherence actions, which this module models as
invalidate-on-write between the node's L1s.

Timing only: the actual bytes live in :class:`~repro.vm.PhysicalMemory`.
An access returns the level it was served from, letting tests assert
e.g. that a second WQ poll hits in the RMC's L1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim import Resource, Simulator
from ..vm.address import CACHE_LINE_SIZE, lines_in_range
from ..vm.physical import PhysicalMemory
from .cache import Cache, CacheConfig
from .dram import DRAMChannel, DRAMConfig

__all__ = ["MemoryConfig", "MemorySystem", "AgentPort"]


@dataclass(frozen=True)
class MemoryConfig:
    """Hierarchy parameters; defaults transcribe Table 1 of the paper."""

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=32 * 1024, associativity=2,
        latency_ns=1.5, mshrs=32))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=4 * 1024 * 1024, associativity=16,
        latency_ns=3.0, mshrs=64))
    dram: DRAMConfig = field(default_factory=DRAMConfig)


class AgentPort:
    """One agent's (core's or RMC's) port into the node's hierarchy."""

    def __init__(self, system: "MemorySystem", name: str,
                 l1_config: CacheConfig):
        self.system = system
        self.name = name
        self.l1 = Cache(l1_config)
        self._mshrs = Resource(system.sim, capacity=l1_config.mshrs,
                               name=f"{name}.mshrs")
        self.accesses = 0

    # -- timed path ------------------------------------------------------

    def access(self, paddr: int, is_write: bool = False,
               size: int = CACHE_LINE_SIZE, allocate: bool = True):
        """Timed access coroutine; returns the deepest level touched
        ('l1' | 'l2' | 'dram') across all lines of the access.

        ``allocate=False`` makes misses non-allocating (streaming):
        the RMC's RRPP uses it when serving remote reads, whose data
        immediately leaves the node — allocating it would only evict
        useful lines (the cache-contention effect the paper observes in
        the double-sided experiments would otherwise destroy the
        source's reply-landing buffers).
        """
        deepest = "l1"
        rank = {"l1": 0, "l2": 1, "dram": 2}
        for line in lines_in_range(paddr, size):
            covered = (min(paddr + size, line + self.l1.config.line_size)
                       - max(paddr, line))
            full_line = covered >= self.l1.config.line_size
            level = yield from self._access_line(line, is_write, full_line,
                                                 allocate)
            if rank[level] > rank[deepest]:
                deepest = level
        self.accesses += 1
        return deepest

    def _access_line(self, line: int, is_write: bool, full_line: bool,
                     allocate: bool):
        yield self.l1.config.latency_ns
        if self.l1.probe(line, is_write=is_write):
            if is_write:
                self.system._invalidate_other_l1s(self, line)
            return "l1"

        # L1 miss: take an MSHR for the duration of the fill.
        yield self._mshrs.acquire()
        try:
            yield self.system.l2.config.latency_ns
            if self.system.l2.probe(line, is_write=False):
                served = "l2"
            elif is_write and full_line:
                # A full-line overwrite needs no fill from memory: the
                # line is installed directly (write-allocate, no fetch).
                served = "l2"
                if allocate:
                    self._fill_l2(line, dirty=True)
            else:
                yield from self.system.dram.access(
                    self.l1.config.line_size, is_write=False)
                served = "dram"
                if allocate:
                    self._fill_l2(line)
            if allocate:
                victim1 = self.l1.fill(line, dirty=is_write)
                if victim1 is not None and victim1.dirty:
                    # Write the dirty victim back into the L2.
                    self.system.l2.probe(victim1.line_addr, is_write=True)
            if is_write:
                self.system._invalidate_other_l1s(self, line)
            return served
        finally:
            self._mshrs.release()

    def _fill_l2(self, line: int, dirty: bool = False) -> None:
        victim = self.system.l2.fill(line, dirty=dirty)
        if victim is not None:
            # Inclusive L2: dropping an L2 line drops L1 copies.
            self.system._invalidate_all_l1s(victim.line_addr)
            if victim.dirty:
                self.system.dram.writeback(self.l1.config.line_size)

    # -- functional data path (untimed; see DESIGN.md) -------------------

    def read_bytes(self, paddr: int, length: int) -> bytes:
        """Functional data read (untimed; pair with :meth:`access`)."""
        return self.system.physical.read(paddr, length)

    def write_bytes(self, paddr: int, data: bytes) -> None:
        """Functional data write (untimed; pair with :meth:`access`)."""
        self.system.physical.write(paddr, data)


class MemorySystem:
    """Shared L2 + DRAM + physical memory, with per-agent L1 ports."""

    def __init__(self, sim: Simulator, physical: PhysicalMemory,
                 config: Optional[MemoryConfig] = None):
        self.sim = sim
        self.physical = physical
        self.config = config or MemoryConfig()
        self.l2 = Cache(self.config.l2)
        self.dram = DRAMChannel(sim, self.config.dram)
        self.agents: Dict[str, AgentPort] = {}

    def register_agent(self, name: str,
                       l1_config: Optional[CacheConfig] = None) -> AgentPort:
        """Add an agent (core or RMC) with a private L1."""
        if name in self.agents:
            raise ValueError(f"agent {name!r} already registered")
        port = AgentPort(self, name, l1_config or self.config.l1)
        self.agents[name] = port
        return port

    def _invalidate_other_l1s(self, writer: AgentPort, line: int) -> None:
        for port in self.agents.values():
            if port is not writer:
                port.l1.invalidate(line)

    def _invalidate_all_l1s(self, line: int) -> None:
        for port in self.agents.values():
            port.l1.invalidate(line)

    # -- observability ----------------------------------------------------

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss statistics per agent L1, the L2, and DRAM."""
        stats = {
            "l2": {
                "hits": self.l2.hits,
                "misses": self.l2.misses,
                "hit_rate": self.l2.hit_rate,
            },
            "dram": {
                "reads": self.dram.reads,
                "writes": self.dram.writes,
                "bytes": self.dram.bytes_transferred,
            },
        }
        for name, port in self.agents.items():
            stats[name] = {
                "hits": port.l1.hits,
                "misses": port.l1.misses,
                "hit_rate": port.l1.hit_rate,
            }
        return stats
