"""DRAM channel model: fixed access latency + finite bandwidth.

The paper's Table 1 uses DRAMSim2 with a single DDR3-1600 channel:
60 ns access latency and 12 GB/s peak bandwidth, of which ~9.6 GB/s is
achievable in practice (the paper's Fig 7b saturates there for 8 KB
requests). We model the channel as:

* a **data bus** occupied for ``bytes / bandwidth`` per transfer
  (back-to-back transfers pipeline, giving the bandwidth ceiling), plus
* a fixed **access latency** that overlaps across banks (requests do not
  serialize on it), plus
* a small controller overhead so a full hierarchy traversal
  (L1 miss -> L2 miss -> DRAM) lands at the ~80 ns the paper attributes
  to "accessing the memory (cache hierarchy and DRAM combined)".

Bank-conflict effects are abstracted into the ``efficiency`` factor
(default 0.8: 12 GB/s peak -> 9.6 GB/s effective for streaming).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Resource, Simulator

__all__ = ["DRAMConfig", "DRAMChannel"]


@dataclass(frozen=True)
class DRAMConfig:
    """DDR3-1600 single-channel parameters (Table 1)."""

    latency_ns: float = 60.0
    bandwidth_gbps: float = 12.0       # GB/s peak (bytes per ns)
    efficiency: float = 0.8            # achievable fraction when streaming
    controller_overhead_ns: float = 15.0

    def __post_init__(self):
        if self.latency_ns < 0 or self.controller_overhead_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bytes/ns (== GB/s) for streaming transfers."""
        return self.bandwidth_gbps * self.efficiency


class DRAMChannel:
    """Timed DRAM access path shared by all agents of a node."""

    def __init__(self, sim: Simulator, config: DRAMConfig = DRAMConfig()):
        self.sim = sim
        self.config = config
        self._bus = Resource(sim, capacity=1, name="dram-bus")
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0

    def access(self, size: int, is_write: bool = False):
        """Coroutine performing one DRAM transfer of ``size`` bytes.

        Occupies the data bus for the serialization time (bandwidth
        contention), then waits out the access latency (pipelined across
        requests).
        """
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        cfg = self.config
        # Controller queueing/scheduling overhead is pipelined (does not
        # occupy the data bus), so back-to-back line reads stream at the
        # effective channel bandwidth.
        yield cfg.controller_overhead_ns
        yield self._bus.acquire()
        yield size / cfg.effective_bandwidth
        self._bus.release()
        yield cfg.latency_ns
        self.bytes_transferred += size
        if is_write:
            self.writes += 1
        else:
            self.reads += 1

    def writeback(self, size: int):
        """Fire-and-forget dirty-line writeback (consumes bus bandwidth
        but nobody waits for it)."""
        self.sim.process(self.access(size, is_write=True),
                         name="dram-writeback")

    @property
    def utilization_bytes(self) -> int:
        return self.bytes_transferred
