"""Node-local memory hierarchy: caches, DRAM channel, coherent agents."""

from .cache import Cache, CacheConfig, EvictedLine
from .dram import DRAMChannel, DRAMConfig
from .hierarchy import AgentPort, MemoryConfig, MemorySystem

__all__ = [
    "AgentPort",
    "Cache",
    "CacheConfig",
    "DRAMChannel",
    "DRAMConfig",
    "EvictedLine",
    "MemoryConfig",
    "MemorySystem",
]
