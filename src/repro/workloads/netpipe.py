"""Netpipe-style send/receive microbenchmark (Fig. 8, §7.3).

"We build a Netpipe microbenchmark to evaluate the performance of the
soNUMA unsolicited communication primitives, implemented entirely in
software. The microbenchmark consists of the following two components:
(i) a ping-pong loop that uses the smallest message size to determine
the end-to-end one-way latency and (ii) a streaming experiment where one
node is sending and the other receiving data to determine bandwidth."

The threshold sweep {0, value, inf} reproduces the paper's push-vs-pull
tradeoff curves: with threshold 0 everything is pulled; with an infinite
threshold everything is pushed; the tuned value picks per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.layout import MessagingConfig
from ..runtime.messaging import Messenger
from ..runtime.qp_api import RMCSession
from ..sim import LatencyStat, ThroughputMeter

__all__ = ["NetpipeRow", "send_recv_latency", "send_recv_bandwidth",
           "PUSH_ONLY", "PULL_ONLY"]

#: Threshold sentinel: push everything (threshold = infinity).
PUSH_ONLY = 1 << 30

#: Threshold sentinel: pull everything (threshold = 0).
PULL_ONLY = 0

_CTX = 1
_SEGMENT = 4 * 1024 * 1024


@dataclass
class NetpipeRow:
    """One (message size, threshold) measurement."""

    size: int
    threshold: int
    latency_us: float = 0.0
    gbps: float = 0.0


def _build_pair(threshold: int,
                cluster_config: Optional[ClusterConfig] = None,
                staging_bytes: int = 256 * 1024):
    config = cluster_config or ClusterConfig(num_nodes=2)
    cluster = Cluster(config=config)
    gctx = cluster.create_global_context(_CTX, _SEGMENT)
    msg_config = MessagingConfig(threshold=threshold,
                                 staging_bytes=staging_bytes)
    endpoints = {}
    for n in (0, 1):
        session = RMCSession(cluster.nodes[n].core, gctx.qp(n),
                             gctx.entry(n))
        endpoints[n] = Messenger(session, n, 2, msg_config)
    return cluster, endpoints


def send_recv_latency(sizes: Sequence[int],
                      threshold: int,
                      rounds: int = 10,
                      warmup: int = 18,
                      cluster_config: Optional[ClusterConfig] = None,
                      ) -> List[NetpipeRow]:
    """Half-duplex latency: half the ping-pong round-trip time.

    The default warm-up exceeds the push staging ring (one line per
    buffer slot), so measurements reflect steady-state cache behaviour
    rather than cold write-allocate misses.
    """
    rows = []
    for size in sizes:
        cluster, endpoints = _build_pair(threshold, cluster_config)
        stats = LatencyStat()
        payload = bytes(size)

        def ping(sim):
            for i in range(warmup + rounds):
                start = sim.now
                yield from endpoints[0].send(1, payload)
                yield from endpoints[0].recv(1)
                if i >= warmup:
                    stats.record((sim.now - start) / 2.0)

        def pong(sim):
            for _ in range(warmup + rounds):
                message = yield from endpoints[1].recv(0)
                yield from endpoints[1].send(0, message)

        cluster.sim.process(ping(cluster.sim))
        cluster.sim.process(pong(cluster.sim))
        cluster.run()
        rows.append(NetpipeRow(size=size, threshold=threshold,
                               latency_us=stats.mean / 1000.0))
    return rows


def send_recv_bandwidth(sizes: Sequence[int],
                        threshold: int,
                        messages: int = 40,
                        warmup: int = 8,
                        cluster_config: Optional[ClusterConfig] = None,
                        ) -> List[NetpipeRow]:
    """Streaming bandwidth: one sender, one receiver, back-to-back."""
    rows = []
    for size in sizes:
        staging = max(256 * 1024, 4 * size * MessagingConfig().pull_window)
        cluster, endpoints = _build_pair(threshold, cluster_config,
                                         staging_bytes=staging)
        meter = ThroughputMeter()
        payload = bytes(size)

        def sender(sim):
            for _ in range(warmup + messages):
                yield from endpoints[0].send(1, payload)

        def receiver(sim):
            for i in range(warmup + messages):
                data = yield from endpoints[1].recv(0)
                if i == warmup - 1:
                    meter.start(sim.now)
                elif i >= warmup:
                    meter.record(len(data))
            meter.stop(sim.now)

        cluster.sim.process(sender(cluster.sim))
        cluster.sim.process(receiver(cluster.sim))
        cluster.run()
        rows.append(NetpipeRow(size=size, threshold=threshold,
                               gbps=meter.gbps()))
    return rows
