"""Microbenchmark harnesses for the paper's §7.2-§7.4 experiments.

Each function builds a fresh cluster, runs the measurement loop(s), and
returns plain result rows in the units the paper plots, so benchmark
drivers and tests share one implementation:

* :func:`remote_read_latency` — Fig. 7a / 7c (synchronous reads,
  single- and double-sided, request size sweep);
* :func:`remote_read_bandwidth` — Fig. 7b (asynchronous reads);
* :func:`remote_iops` — the 10 M ops/s/core headline (Table 2);
* :func:`atomic_latency` — Table 2's fetch-and-add row;
* :func:`local_dram_latency` — the "within 4x of local DRAM" anchor.

The read buffer deliberately exceeds the LLC and is strided so remote
reads miss on the destination ("The buffer size exceeds the LLC capacity
in both setups", §7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cluster.cluster import Cluster, ClusterConfig
from ..node.node import NodeConfig
from ..runtime.qp_api import RMCSession
from ..sim import LatencyStat, Simulator, ThroughputMeter
from ..vm.address import CACHE_LINE_SIZE

__all__ = [
    "ReadLatencyRow",
    "BandwidthRow",
    "remote_read_latency",
    "remote_read_bandwidth",
    "remote_iops",
    "atomic_latency",
    "local_dram_latency",
    "DEFAULT_SIZES",
]

#: Request sizes swept in Figs. 7 and 8 (64 B .. 8 KB).
DEFAULT_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Remote region the reads stride over; larger than the 4 MB LLC.
_REGION_BYTES = 6 * 1024 * 1024

#: Context id used by all microbenchmarks.
_CTX = 1


@dataclass
class ReadLatencyRow:
    """One point of a latency sweep."""

    size: int
    mean_ns: float
    p50_ns: float
    p99_ns: float

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


@dataclass
class BandwidthRow:
    """One point of a bandwidth sweep."""

    size: int
    gbps: float
    gbytes_per_sec: float
    mops: float


def _build(num_nodes: int = 2,
           cluster_config: Optional[ClusterConfig] = None):
    config = cluster_config or ClusterConfig(num_nodes=num_nodes)
    if config.num_nodes < num_nodes:
        raise ValueError(f"need at least {num_nodes} nodes")
    cluster = Cluster(config=config)
    segment = _REGION_BYTES + 2 * 1024 * 1024  # region + headroom
    gctx = cluster.create_global_context(_CTX, segment)
    sessions = {
        n: RMCSession(cluster.nodes[n].core, gctx.qp(n), gctx.entry(n))
        for n in range(config.num_nodes)
    }
    return cluster, gctx, sessions


def _stride_offsets(size: int, count: int) -> List[int]:
    """Offsets rotating through the large region so reads miss the LLC."""
    stride = max(size, 64 * 1024)
    slots = max(1, _REGION_BYTES // stride)
    return [(i % slots) * stride for i in range(count)]


def remote_read_latency(sizes: Sequence[int] = DEFAULT_SIZES,
                        iterations: int = 12,
                        warmup: int = 3,
                        double_sided: bool = False,
                        cluster_config: Optional[ClusterConfig] = None,
                        ) -> List[ReadLatencyRow]:
    """Fig. 7a/7c: synchronous remote read latency vs request size."""
    rows = []
    for size in sizes:
        cluster, _gctx, sessions = _build(2, cluster_config)
        stats = LatencyStat()
        offsets = _stride_offsets(size, warmup + iterations)

        def reader(sim, session, peer, record):
            lbuf = session.alloc_buffer(max(size, 4096))
            for i, offset in enumerate(offsets):
                start = sim.now
                yield from session.read_sync(peer, offset, lbuf, size)
                if record and i >= warmup:
                    stats.record(sim.now - start)

        cluster.sim.process(reader(cluster.sim, sessions[0], 1, True))
        if double_sided:
            cluster.sim.process(reader(cluster.sim, sessions[1], 0, False))
        cluster.run()
        rows.append(ReadLatencyRow(size=size, mean_ns=stats.mean,
                                   p50_ns=stats.p50, p99_ns=stats.p99))
    return rows


def remote_read_bandwidth(sizes: Sequence[int] = DEFAULT_SIZES,
                          requests: int = 120,
                          warmup: int = 20,
                          window: int = 32,
                          double_sided: bool = False,
                          cluster_config: Optional[ClusterConfig] = None,
                          ) -> List[BandwidthRow]:
    """Fig. 7b: asynchronous remote read bandwidth vs request size.

    With ``double_sided`` both nodes stream reads at each other; the
    reported figure is then the *aggregate* payload bandwidth (the paper:
    "the double-sided test delivers twice the single-sided bandwidth").
    """
    rows = []
    for size in sizes:
        cluster, gctx, sessions = _build(2, cluster_config)
        meters = []
        offsets = _stride_offsets(size, requests)

        def streamer(sim, session, peer):
            meter = ThroughputMeter()
            meters.append(meter)
            lbuf = session.alloc_buffer(max(size * window, 4096))

            # Window: from the warmup-th issue to drain completion, and
            # every completion reaped inside it counts. With a window of
            # outstanding requests this slightly overcounts when the
            # sample is small relative to the window (in-flight warmup
            # requests complete inside the window); the benchmark sweeps
            # use sample sizes where the bias is negligible. Completion-
            # interval estimators are worse: callbacks fire at CQ-reap
            # time, so they measure the drain loop, not the fabric.
            def on_complete(_cq):
                meter.record(size)

            for i, offset in enumerate(offsets):
                yield from session.wait_for_slot(on_complete)
                if i == warmup:
                    meter.start(sim.now)
                slot_buf = lbuf + (i % window) * size
                yield from session.read_async(peer, offset, slot_buf, size,
                                              callback=on_complete)
            yield from session.drain_cq(on_complete)
            meter.stop(sim.now)

        cluster.sim.process(streamer(cluster.sim, sessions[0], 1))
        if double_sided:
            cluster.sim.process(streamer(cluster.sim, sessions[1], 0))
        cluster.run()
        total_bps = sum(m.gbps() for m in meters)
        total_gBps = sum(m.gbytes_per_sec() for m in meters)
        total_mops = sum(m.mops() for m in meters)
        rows.append(BandwidthRow(size=size, gbps=total_bps,
                                 gbytes_per_sec=total_gBps,
                                 mops=total_mops))
    return rows


def remote_iops(requests: int = 300, warmup: int = 50,
                cluster_config: Optional[ClusterConfig] = None) -> float:
    """Peak 64 B asynchronous read rate in Mops/s for one core/QP."""
    rows = remote_read_bandwidth(sizes=(CACHE_LINE_SIZE,),
                                 requests=requests, warmup=warmup,
                                 cluster_config=cluster_config)
    return rows[0].mops


def atomic_latency(iterations: int = 12, warmup: int = 3,
                   cluster_config: Optional[ClusterConfig] = None) -> float:
    """Mean remote fetch-and-add latency in ns (Table 2 row 3)."""
    cluster, _gctx, sessions = _build(2, cluster_config)
    stats = LatencyStat()
    # Stride the targets so the destination line is not LLC-resident,
    # matching the read microbenchmark's memory behaviour (the paper
    # reports fetch-and-add latency ~= read latency on every platform).
    offsets = _stride_offsets(8, warmup + iterations)

    def app(sim):
        session = sessions[0]
        lbuf = session.alloc_buffer(4096)
        for i, offset in enumerate(offsets):
            start = sim.now
            yield from session.fetch_add_sync(1, offset, lbuf, 1)
            if i >= warmup:
                stats.record(sim.now - start)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    return stats.mean


def local_dram_latency(iterations: int = 30) -> float:
    """Mean local DRAM-resident line read latency in ns (single node).

    The paper's 4x claim compares ~300 ns remote reads against ~60-80 ns
    local accesses through the cache hierarchy to DRAM.
    """
    from ..fabric.crossbar import CrossbarFabric
    from ..node.node import Node

    sim = Simulator()
    fabric = CrossbarFabric(sim)
    node = Node(sim, 0, fabric, NodeConfig())
    entry = node.driver.open_context(_CTX, _REGION_BYTES + 2 * 1024 * 1024)
    stats = LatencyStat()
    offsets = _stride_offsets(CACHE_LINE_SIZE, iterations)

    def app(sim):
        space = entry.address_space
        base = entry.segment.base_vaddr
        for offset in offsets:
            start = sim.now
            yield from node.core.mem_read(space, base + offset,
                                          CACHE_LINE_SIZE)
            stats.record(sim.now - start)

    sim.process(app(sim))
    sim.run()
    return stats.mean
