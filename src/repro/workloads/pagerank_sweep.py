"""The Fig. 9 harness: PageRank speedup across node/thread counts.

"Fig. 9 (left) shows the speedup over the single-threaded baseline of
the three implementations on the simulated hardware." (§7.5)

Scaling note (documented deviation): the paper runs a multi-million-
vertex Twitter subset whose working set dwarfs every cache. Simulating
that many timed edges is infeasible here, so the harness *scales the
caches down with the graph* — the LLC per node shrinks so that the
vertex working set exceeds aggregate cache capacity exactly as in the
paper's setup, preserving the regime the experiment depends on (local
edges cost ~DRAM, the SHM baseline is memory-bound). The SHM machine's
aggregate LLC is provisioned to equal the soNUMA aggregate at the
maximum node count, mirroring the paper's normalization ("no benefits
can be attributed to larger cache capacity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..apps.graph import Graph, zipf_graph
from ..apps.pagerank import run_shm, run_sonuma_bulk, run_sonuma_fine
from ..cluster.cluster import ClusterConfig
from ..memory.cache import CacheConfig
from ..memory.hierarchy import MemoryConfig
from ..node.node import NodeConfig

__all__ = ["SpeedupRow", "scaled_node_config", "pagerank_speedups"]


@dataclass
class SpeedupRow:
    """Speedup of each variant at one parallelism level."""

    parallelism: int
    shm: float
    bulk: float
    fine: float


def scaled_node_config(llc_bytes: int = 64 * 1024,
                       l1_bytes: int = 8 * 1024,
                       memory_bytes: int = 32 * 1024 * 1024) -> NodeConfig:
    """A node with scaled-down caches for the scaled-down graph."""
    base = MemoryConfig()
    return NodeConfig(
        memory_bytes=memory_bytes,
        memory=MemoryConfig(
            l1=CacheConfig(name="L1D", size_bytes=l1_bytes,
                           associativity=2, latency_ns=base.l1.latency_ns,
                           mshrs=base.l1.mshrs),
            l2=CacheConfig(name="L2", size_bytes=llc_bytes,
                           associativity=16, latency_ns=base.l2.latency_ns,
                           mshrs=base.l2.mshrs),
            dram=base.dram,
        ),
    )


def _sweep_job(job) -> float:
    """Run one point of the sweep in its own simulator; returns its
    elapsed simulated time. Module-level so it pickles into worker
    processes; every job is fully self-contained (own Simulator, fixed
    seed), so results are identical no matter which process runs it.
    """
    kind, graph, parallelism, supersteps, seed, llc_total_bytes, config = job
    if kind == "shm":
        return run_shm(
            graph, parallelism, supersteps=supersteps, seed=seed,
            llc_per_core_bytes=max(1024, llc_total_bytes // parallelism),
        ).elapsed_ns
    runner = run_sonuma_bulk if kind == "bulk" else run_sonuma_fine
    return runner(graph, parallelism, supersteps=supersteps, seed=seed,
                  cluster_config=config).elapsed_ns


def pagerank_speedups(graph: Optional[Graph] = None,
                      node_counts: Sequence[int] = (2, 4, 8),
                      supersteps: int = 1,
                      num_vertices: int = 16384,
                      avg_degree: float = 8.0,
                      llc_total_bytes: int = 64 * 1024,
                      cluster_config_factory=None,
                      seed: int = 7,
                      workers: int = 1) -> List[SpeedupRow]:
    """Run all three variants across ``node_counts``; speedups are
    relative to single-threaded SHM (the paper's baseline).

    ``llc_total_bytes`` is the *aggregate* last-level cache of every
    configuration — per-node/per-thread shares divide it evenly, which
    is the paper's normalization ("no benefits can be attributed to
    larger cache capacity in the soNUMA comparison") applied at every
    point of the sweep, not only at the maximum node count. In the
    paper's setup the dataset dwarfs every cache anyway; at our scaled
    size, equalizing aggregates keeps hit rates comparable so the
    speedup shape is driven by communication and imbalance, as intended.

    ``cluster_config_factory(n) -> ClusterConfig`` lets the Fig. 9-right
    bench substitute the development-platform configuration.

    ``workers > 1`` fans the sweep points out over a multiprocessing
    pool — one simulator per process. Every point is independently
    seeded and the merge follows the job-list order, so the returned
    rows are identical to the serial run.
    """
    graph = graph or zipf_graph(num_vertices, avg_degree=avg_degree,
                                seed=seed)

    def sonuma_config(n: int) -> ClusterConfig:
        per_node_llc = max(8 * 1024, llc_total_bytes // n)
        if cluster_config_factory is not None:
            config = cluster_config_factory(n)
            # Scale the caches of the provided config's nodes.
            scaled = scaled_node_config(llc_bytes=per_node_llc)
            node = NodeConfig(memory_bytes=scaled.memory_bytes,
                              num_cores=config.node.num_cores,
                              memory=scaled.memory,
                              rmc=config.node.rmc,
                              core=config.node.core)
            return ClusterConfig(num_nodes=config.num_nodes, node=node,
                                 fabric=config.fabric,
                                 topology=config.topology)
        return ClusterConfig(num_nodes=n, node=scaled_node_config(
            llc_bytes=per_node_llc))

    jobs = [("shm", graph, 1, supersteps, seed, llc_total_bytes, None)]
    for n in node_counts:
        config = sonuma_config(n)
        jobs.append(("shm", graph, n, supersteps, seed,
                     llc_total_bytes, None))
        jobs.append(("bulk", graph, n, supersteps, seed,
                     llc_total_bytes, config))
        jobs.append(("fine", graph, n, supersteps, seed,
                     llc_total_bytes, config))

    if workers > 1:
        import multiprocessing

        with multiprocessing.Pool(workers) as pool:
            times = pool.map(_sweep_job, jobs)
    else:
        times = [_sweep_job(job) for job in jobs]

    baseline = times[0]
    rows = []
    for i, n in enumerate(node_counts):
        shm_time, bulk_time, fine_time = times[1 + 3 * i:4 + 3 * i]
        rows.append(SpeedupRow(
            parallelism=n,
            shm=baseline / shm_time,
            bulk=baseline / bulk_time,
            fine=baseline / fine_time,
        ))
    return rows
