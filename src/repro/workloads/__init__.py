"""Evaluation workloads: microbenchmarks and netpipe-style harnesses."""

from .microbench import (
    DEFAULT_SIZES,
    BandwidthRow,
    ReadLatencyRow,
    atomic_latency,
    local_dram_latency,
    remote_iops,
    remote_read_bandwidth,
    remote_read_latency,
)
from .netpipe import (
    PULL_ONLY,
    PUSH_ONLY,
    NetpipeRow,
    send_recv_bandwidth,
    send_recv_latency,
)
from .pagerank_sweep import SpeedupRow, pagerank_speedups, scaled_node_config

__all__ = [
    "BandwidthRow",
    "DEFAULT_SIZES",
    "NetpipeRow",
    "PULL_ONLY",
    "PUSH_ONLY",
    "ReadLatencyRow",
    "SpeedupRow",
    "atomic_latency",
    "local_dram_latency",
    "pagerank_speedups",
    "remote_iops",
    "remote_read_bandwidth",
    "remote_read_latency",
    "scaled_node_config",
    "send_recv_bandwidth",
    "send_recv_latency",
]
