"""soNUMA wire protocol: stateless request/reply packets.

The protocol layer (paper §6) is "a simple request-reply protocol, with
exactly one reply message generated for each request". Messages carry a
fixed-size header and an optional cache-line-sized payload; the MTU is
header + one cache line. Two virtual lanes (request / reply) make the
protocol deadlock-free.

Request header fields: ``<dst_nid, src_nid, op, ctx_id, offset, tid>``.
Reply header fields:   ``<dst_nid, src_nid, tid, offset, status>``.
The ``tid`` is assigned by the source RMC, is opaque to the destination,
and is copied from request to reply so the source's RCP can associate
replies with ITT entries (paper §6, Fig. 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..vm.address import CACHE_LINE_SIZE

__all__ = [
    "Opcode",
    "PING_TID",
    "ReplyStatus",
    "VirtualLane",
    "HEADER_BYTES",
    "TRAILER_BYTES",
    "MTU_BYTES",
    "RequestPacket",
    "ReplyPacket",
    "packet_size",
]

#: Fixed wire header size (routing + protocol fields).
HEADER_BYTES = 16

#: Link-layer trailer: per-(src,dst) sequence number (u32), attempt
#: counter (u8), sender incarnation epoch (u16), and CRC-16 over the
#: whole packet. Like an Ethernet FCS, the trailer is link-level
#: framing: it is carried by :func:`repro.protocol.wire.encode` but
#: **not** counted in the modeled protocol size (:func:`packet_size`),
#: so enabling integrity checking adds no cost to the simulated data
#: path. The epoch lets receivers *fence* traffic from a node's earlier
#: incarnation after a crash/restart (membership layer, §5.1).
TRAILER_BYTES = 9

#: Link-layer MTU: "large enough to support a fixed-size header and an
#: optional cache-line-sized payload" (paper §6).
MTU_BYTES = HEADER_BYTES + CACHE_LINE_SIZE

#: Reserved tid carried by RPING probes and their pongs. Liveness
#: traffic is served from the RRPP itself (no context lookup) and never
#: tracked in the ITT; receivers use the reserved value to route pongs
#: to the driver's failure detector — and the NI uses it to exempt
#: probes from incarnation fencing (a fenced node's pongs are the only
#: evidence that it is reachable again).
PING_TID = 0xFFFF


class Opcode(enum.Enum):
    """Architecturally supported one-sided operations (paper §3/§5.2).

    ``RNOTIFY`` is the paper's §8 proposed extension ("the ability to
    issue remote interrupts as part of an RMC command, so that nodes can
    communicate without polling") — disabled unless the destination
    driver registers a notification handler.
    """

    RREAD = "rread"
    RWRITE = "rwrite"
    RFETCH_ADD = "rfetch_add"
    RCOMP_SWAP = "rcomp_swap"
    RNOTIFY = "rnotify"
    #: Link-liveness probe used by the driver's heartbeat failure
    #: detector; served by the RRPP without a context lookup and never
    #: tracked in the ITT (reserved tid).
    RPING = "rping"


class ReplyStatus(enum.Enum):
    """Completion status carried in the reply header.

    ``SEGMENT_VIOLATION`` implements the paper's error path: "Virtual
    addresses that fall outside of the range of the specified security
    context are signaled through an error message" (§4.2).
    """

    OK = "ok"
    SEGMENT_VIOLATION = "segment_violation"
    BAD_CONTEXT = "bad_context"
    CAS_FAILED = "cas_failed"  # compare-and-swap compare mismatch (still OK-delivered)
    NOTIFY_REJECTED = "notify_rejected"  # no handler / queue full (§8 ext.)
    #: Local completion status: the source RMC exhausted its retry budget
    #: for the transaction. Never travels on the wire — it is synthesized
    #: by the RGP watchdog and delivered through the CQ error field.
    TIMEOUT = "timeout"


class VirtualLane(enum.IntEnum):
    """Two virtual lanes guarantee request/reply deadlock freedom (§6)."""

    REQUEST = 0
    REPLY = 1


@dataclass
class RequestPacket:
    """A single line-granularity request on the REQUEST virtual lane."""

    dst_nid: int
    src_nid: int
    op: Opcode
    ctx_id: int
    offset: int            # context-segment offset at the destination
    tid: int               # source-RMC transfer identifier (opaque to dst)
    length: int = CACHE_LINE_SIZE  # bytes of this line actually used
    payload: Optional[bytes] = None          # RWRITE data
    operand: Optional[int] = None            # RFETCH_ADD addend / CAS swap value
    compare: Optional[int] = None            # RCOMP_SWAP compare value
    seq: int = 0       # per-(src,dst) link sequence number (NI-stamped)
    attempt: int = 0   # 0 = first transmission; >0 = RGP retransmission
    epoch: int = 0     # sender incarnation epoch (NI-stamped; 0 = unfenced)

    def __post_init__(self):
        if not 0 < self.length <= CACHE_LINE_SIZE:
            raise ValueError(
                f"request length {self.length} exceeds one cache line"
            )
        if self.op in (Opcode.RWRITE, Opcode.RNOTIFY):
            if self.payload is None or len(self.payload) != self.length:
                raise ValueError(
                    f"{self.op.name} payload must match request length")
        if self.op is Opcode.RFETCH_ADD and self.operand is None:
            raise ValueError("RFETCH_ADD requires an operand")
        if self.op is Opcode.RCOMP_SWAP and (self.operand is None
                                             or self.compare is None):
            raise ValueError("RCOMP_SWAP requires compare and swap values")

    @property
    def vl(self) -> VirtualLane:
        return VirtualLane.REQUEST

    @property
    def size_bytes(self) -> int:
        return packet_size(len(self.payload) if self.payload else 0)


@dataclass
class ReplyPacket:
    """The single reply generated for each request (REPLY virtual lane)."""

    dst_nid: int
    src_nid: int
    tid: int
    offset: int            # echoed so multi-line unrolls can place payloads
    status: ReplyStatus = ReplyStatus.OK
    payload: Optional[bytes] = None   # RREAD data / atomic old value encoding
    old_value: Optional[int] = None   # atomics: value before the operation
    seq: int = 0       # per-(src,dst) link sequence number (NI-stamped)
    epoch: int = 0     # sender incarnation epoch (NI-stamped; 0 = unfenced)

    @property
    def vl(self) -> VirtualLane:
        return VirtualLane.REPLY

    @property
    def size_bytes(self) -> int:
        return packet_size(len(self.payload) if self.payload else 0)


def packet_size(payload_bytes: int) -> int:
    """Wire size of a packet with ``payload_bytes`` of payload."""
    if payload_bytes < 0 or payload_bytes > CACHE_LINE_SIZE:
        raise ValueError(f"payload of {payload_bytes}B exceeds the MTU")
    return HEADER_BYTES + payload_bytes
