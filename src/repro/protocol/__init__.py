"""soNUMA stateless request/reply wire protocol."""

from .packets import (
    HEADER_BYTES,
    MTU_BYTES,
    PING_TID,
    TRAILER_BYTES,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    VirtualLane,
    packet_size,
)
from .wire import ChecksumError, crc16, decode, encode, wire_size

__all__ = [
    "ChecksumError",
    "HEADER_BYTES",
    "MTU_BYTES",
    "TRAILER_BYTES",
    "Opcode",
    "PING_TID",
    "ReplyPacket",
    "ReplyStatus",
    "RequestPacket",
    "VirtualLane",
    "crc16",
    "decode",
    "encode",
    "packet_size",
    "wire_size",
]
