"""soNUMA stateless request/reply wire protocol."""

from .packets import (
    HEADER_BYTES,
    MTU_BYTES,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
    VirtualLane,
    packet_size,
)
from .wire import decode, encode, wire_size

__all__ = [
    "HEADER_BYTES",
    "MTU_BYTES",
    "Opcode",
    "ReplyPacket",
    "ReplyStatus",
    "RequestPacket",
    "VirtualLane",
    "decode",
    "encode",
    "packet_size",
    "wire_size",
]
