"""Wire encoding of protocol packets.

The simulator passes packet objects by reference (no serialization cost
beyond the modeled header/payload sizes), but a credible protocol
definition needs an actual bit layout — and the encoder doubles as a
check that every field the pipelines rely on really fits the 16-byte
header of :data:`~repro.protocol.packets.HEADER_BYTES`.

Request header layout (16 bytes, little-endian)::

    byte  0      packet kind (0 = request, 1 = reply)
    byte  1      opcode / status
    bytes 2-3    dst_nid (u16)
    bytes 4-5    src_nid (u16)
    bytes 6-7    tid (u16)
    byte  8      ctx_id (requests) / flags (replies)
    byte  9      length - 1 (payload bytes in this line, 1..64)
    bytes 10-15  offset (u48)

Atomic operands don't fit the header; they travel in the payload area
(operand u64 | compare u64), which is accounted in the wire size.

Link-layer trailer (:data:`~repro.protocol.packets.TRAILER_BYTES`,
9 bytes, appended after the body)::

    bytes 0-3    seq (u32)       per-(src,dst) link sequence number
    byte  4      attempt (u8)    retransmission attempt (0 = first send)
    bytes 5-6    epoch (u16)     sender incarnation epoch (0 = unfenced)
    bytes 7-8    CRC-16/CCITT    over header + body + seq + attempt + epoch

The trailer is the reliability layer's framing — receivers use the CRC
to reject corrupted packets (:class:`ChecksumError`), the sequence
number to reject link-level duplicates, and the epoch to *fence* stale
traffic from a crashed-and-restarted node's earlier incarnation. Like
an Ethernet FCS it is not part of the protocol-visible packet, so the
modeled packet size (:func:`~repro.protocol.packets.packet_size`)
excludes it.
"""

from __future__ import annotations

import struct
from typing import Union

from .packets import (
    HEADER_BYTES,
    TRAILER_BYTES,
    Opcode,
    ReplyPacket,
    ReplyStatus,
    RequestPacket,
)

__all__ = ["ChecksumError", "crc16", "encode", "decode", "wire_size"]

_KIND_REQUEST = 0
_KIND_REPLY = 1

_OPCODES = {op: i for i, op in enumerate(Opcode)}
_OPCODES_REV = {i: op for op, i in _OPCODES.items()}
_STATUSES = {status: i for i, status in enumerate(ReplyStatus)}
_STATUSES_REV = {i: status for status, i in _STATUSES.items()}

_MAX_U16 = 0xFFFF
_MAX_U32 = 0xFFFFFFFF
_MAX_U48 = (1 << 48) - 1

#: Reply flag bit: an old_value u64 follows the payload (atomics).
_FLAG_OLD_VALUE = 0x01


class ChecksumError(ValueError):
    """The packet's CRC-16 does not match its contents (bit corruption)."""


def _crc16_table():
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) \
                & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _crc16_table()


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) of ``data``."""
    crc = 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[(crc >> 8) ^ byte]
    return crc


def _pack_header(kind: int, code: int, dst: int, src: int, tid: int,
                 ctx_or_flags: int, length: int, offset: int) -> bytes:
    if not 0 <= dst <= _MAX_U16 or not 0 <= src <= _MAX_U16:
        raise ValueError("node id exceeds wire width (u16)")
    if not 0 <= tid <= _MAX_U16:
        raise ValueError("tid exceeds wire width (u16)")
    if not 0 <= ctx_or_flags <= 0xFF:
        raise ValueError("ctx_id/flags exceed wire width (u8)")
    if not 1 <= length <= 64:
        raise ValueError("length field must be 1..64")
    if not 0 <= offset <= _MAX_U48:
        raise ValueError("offset exceeds wire width (u48)")
    header = struct.pack("<BBHHHBB", kind, code, dst, src, tid,
                         ctx_or_flags, length - 1)
    header += offset.to_bytes(6, "little")
    assert len(header) == HEADER_BYTES
    return header


def _seal(frame: bytes, seq: int, attempt: int, epoch: int) -> bytes:
    """Append the link-layer trailer (seq + attempt + epoch + CRC-16)."""
    if not 0 <= seq <= _MAX_U32:
        raise ValueError("seq exceeds wire width (u32)")
    if not 0 <= attempt <= 0xFF:
        raise ValueError("attempt exceeds wire width (u8)")
    if not 0 <= epoch <= _MAX_U16:
        raise ValueError("epoch exceeds wire width (u16)")
    sealed = frame + struct.pack("<IBH", seq, attempt, epoch)
    return sealed + struct.pack("<H", crc16(sealed))


def encode(packet: Union[RequestPacket, ReplyPacket]) -> bytes:
    """Serialize a packet to its wire representation (with trailer)."""
    if isinstance(packet, RequestPacket):
        header = _pack_header(_KIND_REQUEST, _OPCODES[packet.op],
                              packet.dst_nid, packet.src_nid, packet.tid,
                              packet.ctx_id, packet.length, packet.offset)
        body = packet.payload or b""
        if packet.op is Opcode.RFETCH_ADD:
            body = struct.pack("<Q", packet.operand & (2 ** 64 - 1))
        elif packet.op is Opcode.RCOMP_SWAP:
            body = struct.pack("<QQ", packet.operand & (2 ** 64 - 1),
                               packet.compare & (2 ** 64 - 1))
        return _seal(header + body, packet.seq, packet.attempt, packet.epoch)
    if isinstance(packet, ReplyPacket):
        flags = _FLAG_OLD_VALUE if packet.old_value is not None else 0
        length = len(packet.payload) if packet.payload else 1
        header = _pack_header(_KIND_REPLY, _STATUSES[packet.status],
                              packet.dst_nid, packet.src_nid, packet.tid,
                              flags, max(length, 1), packet.offset)
        body = packet.payload or b""
        if packet.old_value is not None:
            body += struct.pack("<Q", packet.old_value & (2 ** 64 - 1))
        return _seal(header + body, packet.seq, 0, packet.epoch)
    raise TypeError(f"cannot encode {type(packet).__name__}")


def decode(wire: bytes) -> Union[RequestPacket, ReplyPacket]:
    """Parse a wire representation back into a packet object.

    Verifies the CRC-16 first (raising :class:`ChecksumError` on any
    corruption), so truncated or bit-flipped buffers are never delivered.
    """
    if len(wire) < HEADER_BYTES + TRAILER_BYTES:
        raise ValueError(f"truncated packet: {len(wire)} bytes")
    (stored_crc,) = struct.unpack("<H", wire[-2:])
    if crc16(wire[:-2]) != stored_crc:
        raise ChecksumError(
            f"CRC mismatch: stored {stored_crc:#06x}, "
            f"computed {crc16(wire[:-2]):#06x}")
    seq, attempt, epoch = struct.unpack("<IBH", wire[-TRAILER_BYTES:-2])
    kind, code, dst, src, tid, ctx_or_flags, length_m1 = struct.unpack(
        "<BBHHHBB", wire[:10])
    offset = int.from_bytes(wire[10:16], "little")
    length = length_m1 + 1
    body = wire[HEADER_BYTES:-TRAILER_BYTES]

    if kind == _KIND_REQUEST:
        op = _OPCODES_REV.get(code)
        if op is None:
            raise ValueError(f"unknown opcode {code}")
        payload = None
        operand = None
        compare = None
        if op in (Opcode.RWRITE, Opcode.RNOTIFY):
            payload = body[:length]
            if len(payload) != length:
                raise ValueError("payload shorter than header length")
        elif op is Opcode.RFETCH_ADD:
            (operand,) = struct.unpack_from("<Q", body)
        elif op is Opcode.RCOMP_SWAP:
            operand, compare = struct.unpack_from("<QQ", body)
        return RequestPacket(dst_nid=dst, src_nid=src, op=op,
                             ctx_id=ctx_or_flags, offset=offset, tid=tid,
                             length=length, payload=payload,
                             operand=operand, compare=compare,
                             seq=seq, attempt=attempt, epoch=epoch)

    if kind == _KIND_REPLY:
        status = _STATUSES_REV.get(code)
        if status is None:
            raise ValueError(f"unknown status {code}")
        old_value = None
        payload = body
        if ctx_or_flags & _FLAG_OLD_VALUE:
            if len(body) < 8:
                raise ValueError("missing old_value field")
            (old_value,) = struct.unpack_from("<Q", body, len(body) - 8)
            payload = body[:-8]
        payload = payload if payload else None
        return ReplyPacket(dst_nid=dst, src_nid=src, tid=tid,
                           offset=offset, status=status, payload=payload,
                           old_value=old_value, seq=seq, epoch=epoch)

    raise ValueError(f"unknown packet kind {kind}")


def wire_size(packet: Union[RequestPacket, ReplyPacket]) -> int:
    """Exact on-wire byte count (== len(encode(packet)), incl. trailer)."""
    return len(encode(packet))
