"""repro — a full-system reproduction of Scale-Out NUMA (ASPLOS 2014).

Scale-Out NUMA (soNUMA) is an architecture, programming model, and
communication protocol for low-latency, distributed in-memory processing
(Novakovic, Daglis, Bugnion, Falsafi, Grot — ASPLOS 2014).

This package implements the complete system as a calibrated-functional
discrete-event simulation:

* :mod:`repro.sim` — the discrete-event kernel and measurement tools;
* :mod:`repro.vm` / :mod:`repro.memory` — virtual memory and the
  node-local coherent cache hierarchy (Table 1 parameters);
* :mod:`repro.fabric` / :mod:`repro.protocol` — the NUMA memory fabric
  and the stateless request/reply wire protocol;
* :mod:`repro.rmc` — the Remote Memory Controller (RGP/RRPP/RCP
  pipelines, CT/CT$, ITT, MAQ, TLB);
* :mod:`repro.node` / :mod:`repro.cluster` — node and rack assembly,
  device driver, security model;
* :mod:`repro.runtime` — the access library (sync/async one-sided
  reads/writes/atomics), messaging (send/receive with the push/pull
  threshold), and barriers;
* :mod:`repro.baselines` — RDMA/InfiniBand, commodity TCP/IP, and
  cache-coherent SHM comparators;
* :mod:`repro.emulation` — the Xen/RMCemu development platform;
* :mod:`repro.apps` — PageRank (three variants) and a key-value store;
* :mod:`repro.serving` — the sharded million-client serving tier
  (consistent-hash placement, pipelined doorbell-batched clients,
  open-loop load generation, tail-latency SLOs).

Quickstart::

    from repro import Cluster, ClusterConfig, RMCSession

    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    ctx = cluster.create_global_context(ctx_id=1, segment_size=1 << 20)
    node0 = cluster.nodes[0]
    session = RMCSession(node0.core, ctx.qp(0), ctx.entry(0))
    buf = session.alloc_buffer(4096)

    def app(sim):
        yield from session.read_sync(dst_nid=1, offset=0,
                                     local_vaddr=buf, length=64)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
"""

from .cluster import (
    Cluster,
    ClusterConfig,
    GlobalContext,
    MembershipService,
    NodeFaultController,
)
from .node import Node, NodeConfig
from .resilience import (
    CheckpointUnrecoverable,
    OneSidedWriteLog,
    RSCode,
    StripedCheckpointStore,
    XORCode,
)
from .runtime import (
    Barrier,
    Messenger,
    MessagingConfig,
    MessagingTimeout,
    NodeEvicted,
    PeerFailure,
    RankFailed,
    RemoteOpError,
    RemoteOpFailed,
    RMCSession,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Barrier",
    "CheckpointUnrecoverable",
    "Cluster",
    "ClusterConfig",
    "GlobalContext",
    "MembershipService",
    "Messenger",
    "MessagingConfig",
    "MessagingTimeout",
    "Node",
    "NodeConfig",
    "NodeEvicted",
    "NodeFaultController",
    "OneSidedWriteLog",
    "PeerFailure",
    "RankFailed",
    "RemoteOpError",
    "RemoteOpFailed",
    "RMCSession",
    "RSCode",
    "Simulator",
    "StripedCheckpointStore",
    "XORCode",
    "__version__",
]
