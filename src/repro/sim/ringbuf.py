"""Single-producer/single-consumer ring buffers over shared memory.

The parallel engine's ``shm`` transport moves window-protocol messages
through a pair of these rings per worker (coordinator->worker and
worker->coordinator) instead of pickling dataclasses over a pipe. Each
ring is a fixed byte region with a small header:

* byte 0:   head cursor (u64, bytes ever pushed, written by producer)
* byte 64:  tail cursor (u64, bytes ever consumed, written by consumer)
* byte 128: data region of ``capacity`` bytes

Cursors live on separate cache lines so the two sides never write the
same line. Records are ``[u32 size | u32 seq | u32 crc | u32 pad |
payload | pad-to-8]`` stored contiguously; a record that would straddle
the region end is preceded by a wrap marker (``size == 0xFFFFFFFF``)
and starts at offset 0 instead. Publication is seqlock-style: the
producer writes the payload first, then the header words, then advances
the head cursor.

Like any seqlock, the *reader* must tolerate observing the writer's
stores before they have all become visible in its own mapping — kernels
are free to make shared-memory propagation page-granular and slightly
delayed (this shows up readily under virtualization). The consumer
therefore treats an out-of-sequence header as "not published yet" and
re-reads with a bounded patience window (``stale_timeout_s``), and every
payload carries a CRC32 so a record spanning several pages can never be
consumed half-new/half-stale. Only a mismatch that persists past the
patience window raises :class:`RingCorrupted`.

Backpressure: a full ring makes ``push`` spin briefly and then sleep
in 50 us steps until the consumer frees space (or the timeout lapses).
A single record is capped at half the ring capacity — beyond that a
record could deadlock against the wrap skip — and raises
:class:`RingOverflow`.
"""

from __future__ import annotations

import struct
import time
import zlib
from typing import Optional

__all__ = [
    "HEADER_BYTES",
    "RingError",
    "RingFull",
    "RingCorrupted",
    "RingOverflow",
    "SpscRing",
]

HEADER_BYTES = 128

_HEAD_OFF = 0
_TAIL_OFF = 64
_WRAP = 0xFFFFFFFF
_REC = struct.Struct("<IIII")   # size, seq, crc32(payload), pad
_REC_BYTES = _REC.size
_CUR = struct.Struct("<Q")
_SPINS = 200
_SLEEP_S = 50e-6

#: How long the consumer keeps re-reading a not-yet-visible record
#: before declaring the ring corrupt. Cross-mapping visibility delays
#: are typically well under a millisecond; 2 s means a genuine framing
#: bug still surfaces quickly while no real delay can trip it.
DEFAULT_STALE_TIMEOUT_S = 2.0


class RingError(RuntimeError):
    """Base class for ring-buffer failures."""


class RingFull(RingError):
    """Non-blocking push found no room (or the blocking timeout lapsed)."""


class RingCorrupted(RingError):
    """A record stayed out-of-sequence or failed its CRC past the
    stale-read patience window."""


class RingOverflow(RingError):
    """A single record is larger than the ring can safely hold."""


class SpscRing:
    """One direction of a shared-memory message channel.

    ``buf`` is a writable memoryview whose first ``HEADER_BYTES`` bytes
    are the cursor header and whose remaining ``capacity`` bytes are the
    data region. Exactly one process may push and exactly one may pop.
    """

    def __init__(self, buf, capacity: int, create: bool = False,
                 stale_timeout_s: float = DEFAULT_STALE_TIMEOUT_S):
        if capacity % 8 != 0 or capacity < 64:
            raise ValueError(f"capacity must be a multiple of 8 >= 64, "
                             f"got {capacity}")
        if len(buf) < HEADER_BYTES + capacity:
            raise ValueError("buffer smaller than header + capacity")
        self._buf = buf
        self.capacity = capacity
        self.stale_timeout_s = stale_timeout_s
        if create:
            _CUR.pack_into(buf, _HEAD_OFF, 0)
            _CUR.pack_into(buf, _TAIL_OFF, 0)
        # Each side caches the cursor it owns, plus the last value it
        # *observed* of the other side's cursor. The observed copies cut
        # shared-cursor traffic to one re-read per batch instead of one
        # per message (Lamport-queue cursor caching) — cursors only ever
        # grow, so a stale observation is merely conservative.
        self._head = _CUR.unpack_from(buf, _HEAD_OFF)[0]
        self._tail = _CUR.unpack_from(buf, _TAIL_OFF)[0]
        self._seen_head = self._head
        self._seen_tail = self._tail
        self._push_seq = 0
        self._pop_seq = 0
        self.msgs_pushed = 0
        self.bytes_pushed = 0

    # -- producer side ----------------------------------------------------

    def push(self, data: bytes, block: bool = True,
             timeout: Optional[float] = None) -> bool:
        size = len(data)
        rec = _REC_BYTES + size
        rec += (-rec) % 8
        # Capping records at half the capacity guarantees that any
        # record either fits in the room before the region end or can
        # wrap to offset 0 without its space demand exceeding the ring.
        if rec > self.capacity // 2:
            raise RingOverflow(
                f"record of {size} bytes exceeds half the ring capacity "
                f"({self.capacity})")
        head = self._head
        cap = self.capacity
        off = head % cap
        room = cap - off
        need = rec if room >= rec else room + rec
        buf = self._buf
        # Fast path: enough room against the last-observed tail (the
        # common case); re-read the shared tail, then spin/sleep, only
        # when the cached view looks full.
        if cap - (head - self._seen_tail) < need \
                and cap - (head - self._shared_tail()) < need:
            if not self._wait_for(
                    lambda: cap - (head - self._shared_tail()) >= need,
                    block, timeout):
                if block:
                    raise RingFull(f"ring full for {timeout}s")
                return False
        if room < rec:
            if room >= _REC_BYTES:
                _REC.pack_into(buf, HEADER_BYTES + off, _WRAP,
                               self._push_seq, 0, 0)
            head += room
            off = 0
        base = HEADER_BYTES + off
        buf[base + _REC_BYTES:base + _REC_BYTES + size] = data
        _REC.pack_into(buf, base, size, self._push_seq,
                       zlib.crc32(data), 0)
        self._head = head + rec
        _CUR.pack_into(buf, _HEAD_OFF, self._head)
        self._push_seq = (self._push_seq + 1) & 0xFFFFFFFF
        self.msgs_pushed += 1
        self.bytes_pushed += size
        return True

    # -- consumer side ----------------------------------------------------

    def pop(self, block: bool = True,
            timeout: Optional[float] = None) -> Optional[bytes]:
        while True:
            tail = self._tail
            # Fast path: a record is already known published (observed
            # head ahead of tail); only then touch the shared cursor.
            if self._seen_head == tail and self._shared_head() == tail:
                if not self._wait_for(lambda: self._shared_head() != tail,
                                      block, timeout):
                    return None
            off = tail % self.capacity
            room = self.capacity - off
            if room < _REC_BYTES:
                self._advance_tail(tail + room)
                continue
            header = self._stable_header(tail, off, room)
            if header is None:
                continue   # the head cursor itself was stale: re-wait
            size, crc = header
            if size == _WRAP:
                self._advance_tail(tail + room)
                continue
            base = HEADER_BYTES + off
            data = self._stable_payload(base, size, crc)
            rec = _REC_BYTES + size
            rec += (-rec) % 8
            self._advance_tail(tail + rec)
            self._pop_seq = (self._pop_seq + 1) & 0xFFFFFFFF
            return data

    def release(self) -> None:
        """Drop the underlying memoryview so the shared-memory segment
        can be closed without dangling buffer exports."""
        buf, self._buf = self._buf, None
        if buf is not None:
            try:
                buf.release()
            except BufferError:
                pass

    # -- internals ---------------------------------------------------------

    def _stable_header(self, tail: int, off: int, room: int):
        """Read the record header at ``off``, waiting out delayed store
        visibility. Returns (size, crc), or None if a re-read of the
        head cursor shows there is no record after all (the head itself
        had been read stale)."""
        buf = self._buf
        deadline = None
        while True:
            size, seq, crc, _pad = _REC.unpack_from(buf, HEADER_BYTES + off)
            if seq == self._pop_seq \
                    and (size == _WRAP or _REC_BYTES + size <= room):
                return size, crc
            if self._shared_head() == tail:
                return None
            if deadline is None:
                deadline = time.perf_counter() + self.stale_timeout_s
            elif time.perf_counter() >= deadline:
                raise RingCorrupted(
                    f"record seq {seq} != expected {self._pop_seq} "
                    f"(or misframed size {size:#x}) at offset {off}, "
                    f"stale past {self.stale_timeout_s}s")
            time.sleep(_SLEEP_S)

    def _stable_payload(self, base: int, size: int, crc: int) -> bytes:
        """Copy the payload, re-reading until its CRC matches — a record
        spanning several pages may become visible page by page."""
        buf = self._buf
        deadline = None
        while True:
            data = bytes(buf[base + _REC_BYTES:base + _REC_BYTES + size])
            if zlib.crc32(data) == crc:
                return data
            if deadline is None:
                deadline = time.perf_counter() + self.stale_timeout_s
            elif time.perf_counter() >= deadline:
                raise RingCorrupted(
                    f"payload crc mismatch for record seq "
                    f"{self._pop_seq}, stale past {self.stale_timeout_s}s")
            time.sleep(_SLEEP_S)

    def _shared_head(self) -> int:
        self._seen_head = _CUR.unpack_from(self._buf, _HEAD_OFF)[0]
        return self._seen_head

    def _shared_tail(self) -> int:
        self._seen_tail = _CUR.unpack_from(self._buf, _TAIL_OFF)[0]
        return self._seen_tail

    def _advance_tail(self, tail: int) -> None:
        self._tail = tail
        _CUR.pack_into(self._buf, _TAIL_OFF, tail)

    @staticmethod
    def _wait_for(ready, block: bool, timeout: Optional[float]) -> bool:
        if ready():
            return True
        if not block:
            return False
        for _ in range(_SPINS):
            if ready():
                return True
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while True:
            if ready():
                return True
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            time.sleep(_SLEEP_S)
