"""Measurement collectors used by every benchmark harness.

The paper reports latencies (ns/us), bandwidths (Gbps / GBps), operation
rates (Mops/s) and speedups. These collectors accumulate raw samples during
a simulation and expose the derived quantities with explicit units, so each
bench prints rows in the same units the paper uses.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["LatencyStat", "ThroughputMeter", "Counter", "Histogram"]


class LatencyStat:
    """Streaming latency statistics (ns): count/mean/min/max/percentiles.

    Samples are kept (the evaluation sweeps are small) so percentiles are
    exact rather than approximated.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        """Add one latency sample (ns)."""
        if value < 0:
            raise ValueError(f"negative latency sample: {value}")
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, pct: float) -> float:
        """Exact percentile via linear interpolation (pct in [0, 100])."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def mean_us(self) -> float:
        """Mean latency in microseconds (paper's unit for Figs 7c/8)."""
        return self.mean / 1000.0

    def summary(self) -> Dict[str, float]:
        """The headline statistics as a dict (for reports)."""
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "min_ns": self.minimum,
            "p50_ns": self.p50,
            "p99_ns": self.p99,
            "max_ns": self.maximum,
        }


class ThroughputMeter:
    """Accumulates (bytes, ops) over a measured simulated interval.

    ``start``/``stop`` bracket the measurement window; the derived rates
    use only the bracketed interval so warm-up traffic can be excluded.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes_total = 0
        self.ops_total = 0
        self._start: Optional[float] = None
        self._stop: Optional[float] = None

    def start(self, now: float) -> None:
        """Open the measurement window at simulated time ``now``."""
        self._start = now
        self.bytes_total = 0
        self.ops_total = 0

    def stop(self, now: float) -> None:
        """Close the measurement window at simulated time ``now``."""
        self._stop = now

    def record(self, nbytes: int, ops: int = 1) -> None:
        """Account ``nbytes`` transferred across ``ops`` operations."""
        self.bytes_total += nbytes
        self.ops_total += ops

    @property
    def elapsed_ns(self) -> float:
        if self._start is None or self._stop is None:
            return 0.0
        return max(self._stop - self._start, 0.0)

    def bytes_per_ns(self) -> float:
        """Raw rate over the bracketed window (== GB/s)."""
        dt = self.elapsed_ns
        return self.bytes_total / dt if dt > 0 else 0.0

    def gbps(self) -> float:
        """Bandwidth in gigabits per second (paper's unit for Figs 1/7b/8b)."""
        return self.bytes_per_ns() * 8.0

    def gbytes_per_sec(self) -> float:
        """Bandwidth in GB/s (paper quotes 9.6 GBps for DDR3-1600)."""
        return self.bytes_per_ns()

    def mops(self) -> float:
        """Operation rate in millions of operations per second."""
        dt = self.elapsed_ns
        return (self.ops_total / dt) * 1e3 if dt > 0 else 0.0


class Counter:
    """Named integer counters (cache hits/misses, packets, stalls...)."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """numerator/denominator counters (0.0 when denominator is 0)."""
        denom = self._counts.get(denominator, 0)
        return self._counts.get(numerator, 0) / denom if denom else 0.0


class Histogram:
    """Fixed-bucket histogram for latency distributions (ablation benches)."""

    def __init__(self, bucket_width: float, name: str = ""):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0

    def record(self, value: float) -> None:
        """Drop one sample into its bucket."""
        index = int(value // self.bucket_width)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1

    def bucket_bounds(self, index: int) -> tuple:
        """(low, high) value bounds of bucket ``index``."""
        return (index * self.bucket_width, (index + 1) * self.bucket_width)

    def mode_bucket(self) -> Optional[tuple]:
        """(low, high) bounds of the most populated bucket."""
        if not self.buckets:
            return None
        index = max(self.buckets, key=lambda k: self.buckets[k])
        return self.bucket_bounds(index)

    def cumulative_fraction_below(self, value: float) -> float:
        """Fraction of samples strictly below ``value``'s bucket."""
        if self.count == 0:
            return 0.0
        limit = int(value // self.bucket_width)
        below = sum(n for idx, n in self.buckets.items() if idx < limit)
        return below / self.count
