"""Queueing primitives built on the simulation kernel.

Three primitives cover every queueing structure in the soNUMA model:

* :class:`Store` — a FIFO buffer of items with optional capacity. Used for
  NI queues, router input buffers, and pipeline hand-off queues.
* :class:`Resource` — a counting semaphore with FIFO granting. Used for
  MSHR/MAQ occupancy limits and DRAM channel arbitration.
* :class:`Channel` — a latency + bandwidth pipe (items appear at the far
  end after serialization + propagation delay). Used for fabric links.

All waiting is expressed as events, so processes compose them freely with
timeouts via :meth:`Simulator.any_of`.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any, Deque, Optional

from .engine import Event, Simulator

__all__ = ["Store", "Resource", "Channel"]


class Store:
    """FIFO item buffer with optional capacity.

    ``put(item)`` returns an event that fires when the item has been
    accepted (immediately if below capacity). ``get()`` returns an event
    that fires with the next item in FIFO order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self.peak_occupancy = 0
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Offer an item; the returned event fires once it is enqueued."""
        event = self.sim.event()
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._enqueue(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._enqueue(item)
        return True

    def get(self) -> Event:
        """Take the next item; the returned event fires with the item."""
        event = self.sim.event()
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple:
        """Non-blocking get; returns (ok, item)."""
        if self.items:
            item = self.items.popleft()
            self._admit_waiting_putter()
            return True, item
        return False, None

    def _enqueue(self, item: Any) -> None:
        self.items.append(item)
        self.total_puts += 1
        if len(self.items) > self.peak_occupancy:
            self.peak_occupancy = len(self.items)

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._enqueue(item)
            event.succeed()


class Resource:
    """Counting semaphore with FIFO grant order.

    ``acquire()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot. Used to bound concurrency (e.g. the RMC's
    32-entry MAQ limits in-flight memory accesses).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        self.peak_in_use = 0
        self.total_acquires = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        event = self.sim.event()
        if self.in_use < self.capacity and not self._waiters:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a slot immediately if one is free; never blocks."""
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.total_acquires += 1
            self.peak_in_use = max(self.peak_in_use, self.in_use)
            return True
        return False

    def release(self) -> None:
        """Free a slot, granting the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"resource {self.name!r}: release without acquire")
        self.in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self.in_use += 1
        self.total_acquires += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        event.succeed()


class Channel:
    """A latency/bandwidth pipe between a producer and a consumer.

    An item of ``size`` bytes put at time *t* becomes available to
    ``get()`` at ``t + size/bandwidth + latency``. Serialization is
    modeled on the sender side: the next item cannot begin transmission
    before the previous one finished serializing (a busy line).

    ``bandwidth`` is in bytes/ns (i.e. GB/s); ``latency`` in ns.
    """

    def __init__(self, sim: Simulator, latency: float,
                 bandwidth: Optional[float] = None, name: str = ""):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name
        self._line_free_at = 0.0
        self._delivery = Store(sim, name=f"{name}.delivery")
        self.bytes_sent = 0

    def put(self, item: Any, size: int = 0) -> float:
        """Send an item; returns the delivery time. Never blocks the caller
        (flow control is the responsibility of the link layer above)."""
        now = self.sim.now
        serialize = (size / self.bandwidth) if (self.bandwidth and size) else 0.0
        start = max(now, self._line_free_at)
        self._line_free_at = start + serialize
        deliver_at = self._line_free_at + self.latency
        self.bytes_sent += size
        # Elision: delivery is a deferred callback, not a spawned process,
        # so each item in flight costs one kernel event instead of two.
        self.sim.call_later(deliver_at - now,
                            partial(self._delivery.try_put, item))
        return deliver_at

    def get(self) -> Event:
        """Receive the next delivered item (FIFO)."""
        return self._delivery.get()

    def __len__(self) -> int:
        return len(self._delivery)
