"""Discrete-event simulation substrate (kernel, queues, measurement)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
    WakeSignal,
)
from .parallel import (
    TRANSPORTS,
    PartitionError,
    PartitionPlan,
    PartitionedRun,
    RemoteMessage,
    ZeroLookaheadError,
    default_transport,
    resolve_run_options,
    plan_from_spec,
    profile_weights,
    run_partitioned,
)
from .resources import Channel, Resource, Store
from .stats import Counter, Histogram, LatencyStat, ThroughputMeter

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Counter",
    "Event",
    "Histogram",
    "LatencyStat",
    "PartitionError",
    "PartitionPlan",
    "PartitionedRun",
    "Process",
    "RemoteMessage",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "TRANSPORTS",
    "WakeSignal",
    "ZeroLookaheadError",
    "default_transport",
    "resolve_run_options",
    "plan_from_spec",
    "profile_weights",
    "run_partitioned",
]
