"""Discrete-event simulation substrate (kernel, queues, measurement)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
    WakeSignal,
)
from .parallel import (
    PartitionError,
    PartitionPlan,
    PartitionedRun,
    RemoteMessage,
    ZeroLookaheadError,
    run_partitioned,
)
from .resources import Channel, Resource, Store
from .stats import Counter, Histogram, LatencyStat, ThroughputMeter

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Counter",
    "Event",
    "Histogram",
    "LatencyStat",
    "PartitionError",
    "PartitionPlan",
    "PartitionedRun",
    "Process",
    "RemoteMessage",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "WakeSignal",
    "ZeroLookaheadError",
    "run_partitioned",
]
