"""Discrete-event simulation kernel.

This is the substrate on which every timed component of the soNUMA model
runs: RMC pipelines, cores, links, routers, DRAM channels, and baseline
models are all :class:`Process` coroutines scheduled by a single
:class:`Simulator`.

The design is deliberately small and explicit (a few hundred lines rather
than a dependency): an event heap keyed by simulated time, generator-based
processes, and condition events. Time is measured in **nanoseconds** and
stored as a float; all component models in this repository quote their
parameters in ns so that Table 1 of the paper can be transcribed directly.

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(50.0)          # sleep 50 ns
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

Processes may yield:

* a :class:`Timeout` (or a bare ``int``/``float`` delay, as a convenience),
* any other :class:`Event` (including another :class:`Process`),
* ``None`` to simply yield control at the same timestamp.

A process finishes when its generator returns; the generator's return value
becomes the process's :attr:`Event.value`. Exceptions raised inside a
process propagate to any process waiting on it, and to :meth:`Simulator.run`
if nobody is waiting (errors never pass silently).

Performance model (see docs/architecture.md, "Kernel fast paths"):

* **Bare-number yields are the fast path.** ``yield 0.5`` resumes the
  process through a pooled internal event — no :class:`Timeout` object is
  allocated, and the pool is recycled after every delivery. Component hot
  loops use this idiom (optionally via :meth:`Simulator.delay`, which also
  documents coalesced delays).
* **Zero-delay and same-timestamp events skip the heap.** Anything
  scheduled at the current timestamp goes onto a FIFO deque (the
  "now-queue") instead of the heap; heap entries that mature at the
  current timestamp are always drained before the now-queue, so the total
  FIFO order of equal-time events is exactly the order they were
  scheduled in — bit-identical to the heap-only kernel.
* **:meth:`Simulator.call_later` schedules a bare callback** without
  spawning a process (used for credit returns and in-flight packet
  delivery), again through the pooled-event path.

None of the fast paths changes simulated timestamps: they remove Python
objects and heap traffic, not simulated time.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "WakeSignal",
]

#: Upper bound on the recycled-event free list (plenty for every model in
#: the repo; merely caps memory if a workload bursts).
_POOL_LIMIT = 4096


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then notifies its callbacks.
    Processes wait on events by yielding them.

    A *daemon* event (watchdog timers, heartbeat ticks) does not keep the
    simulation alive: :meth:`Simulator.run` returns once only daemon
    events remain in the heap, so background reliability machinery never
    extends a run past its last piece of real work.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "value", "daemon",
                 "_pooled", "_cb")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._ok = True
        self.value: Any = None
        self.daemon = False
        self._pooled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (vs. with an exception)."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self.value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will re-raise it."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self.value = exception
        self.sim._queue_event(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.1f}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Hot paths should prefer yielding the bare delay (``yield 0.5``), which
    goes through the simulator's pooled-event fast path; a :class:`Timeout`
    object is for when the event itself is needed (``any_of`` arms,
    carrying a ``value``, daemon timers).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 daemon: bool = False):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ (this constructor is hot).
        self.sim = sim
        self.callbacks = []
        self._triggered = True  # scheduled immediately, fires at now+delay
        self._ok = True
        self.value = value
        self.daemon = daemon
        self._pooled = False
        self.delay = delay
        sim._schedule_at(sim.now + delay, self)


def _run_deferred(event: Event) -> None:
    """Delivery callback for :meth:`Simulator.call_later`: the scheduled
    function rides in ``event.value``."""
    event.value()


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The process is itself an :class:`Event` that fires when the generator
    returns (successfully) or raises (failure). Other processes can wait
    for it by yielding it.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw",
                 "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "",
                 daemon: bool = False):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        # A daemon process's *completion* event does not keep the run
        # alive (nor count as real work): background timers that happen
        # to return (a retransmission watchdog standing down) must not
        # extend the run past its last piece of real work.
        self.daemon = daemon
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bound once: resumed on every event the process waits for (a
        # fresh bound method per wait would be an allocation each).
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        sim._schedule_resume(self, sim.now)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value (or exception) of `trigger`."""
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger._ok:
                target = self._send(trigger.value)
            else:
                target = self._throw(trigger.value)
        except StopIteration as stop:
            sim._active_process = None
            self._triggered = True
            self._ok = True
            self.value = stop.value
            sim._queue_event(self)
            return
        except BaseException as exc:
            sim._active_process = None
            self._triggered = True
            self._ok = False
            self.value = exc
            sim._queue_event(self)
            return
        sim._active_process = None

        # Wait on whatever the process yielded. Bare numbers and ``None``
        # take the pooled fast path: no Timeout object, no heap traffic
        # for zero delays. The scheduling is inlined (vs. calling
        # _schedule_resume) because this is the hottest branch in the
        # repository.
        cls = target.__class__
        if cls is float or cls is int or target is None:
            pool = sim._pool
            if pool:
                event = pool.pop()
                event._ok = True
                event.value = None
                event.daemon = False
            else:
                event = sim._pooled_event()
            event._cb = self._resume_cb
            self._waiting_on = event
            sim._pending_real += 1
            if target:
                if target < 0:
                    raise ValueError(f"negative timeout delay: {target}")
                heapq.heappush(sim._heap,
                               (sim.now + target, next(sim._counter), event))
            else:
                sim._now_queue.append(event)
        elif isinstance(target, Event):
            if target.callbacks is None:
                # Already processed: resume at the current time with the
                # event's outcome (success value or failure exception).
                sim._schedule_resume(self, sim.now, target.value, target._ok)
            else:
                target.callbacks.append(self._resume_cb)
                self._waiting_on = target
        elif isinstance(target, (int, float)):
            # Numeric subclasses (bool, numpy scalars) missed the exact-
            # type fast path above; honour them like the bare numbers.
            delay = float(target)
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            sim._schedule_resume(self, sim.now + delay)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev.callbacks is None
        }


class AnyOf(_Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires once all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({i: ev.value for i, ev in enumerate(self.events)})


class WakeSignal:
    """A level-triggered wake-up for polling loops.

    Hardware that continuously polls a memory location (the RGP sweeping
    its WQs) would swamp a discrete-event simulation with no-op events.
    A :class:`WakeSignal` gives the same semantics event-efficiently: the
    poller waits on :meth:`wait`; producers call :meth:`trigger`. A
    trigger with no waiter is latched (level- rather than edge-
    triggered), so a wake between two ``wait`` calls is never lost.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._event: Optional[Event] = None
        self._latched = False

    def wait(self) -> Event:
        """An event that fires at the next (or a latched) trigger."""
        if self._latched:
            self._latched = False
            fired = self.sim.event()
            fired.succeed()
            return fired
        if self._event is None or self._event.triggered:
            self._event = self.sim.event()
        return self._event

    def trigger(self) -> None:
        """Wake the waiter, or latch the wake if nobody waits yet."""
        if self._event is not None and not self._event.triggered:
            self._event.succeed()
        else:
            self._latched = True


class Simulator:
    """The event loop: a heap of (time, tiebreak, event) triples plus a
    FIFO "now-queue" for events at the current timestamp.

    All timestamps are nanoseconds. Events scheduled at equal times fire
    in FIFO order of scheduling: heap entries that matured to the current
    timestamp were necessarily scheduled before anything appended to the
    now-queue at that timestamp, so draining matured heap entries first
    and the now-queue second reproduces the exact total order a pure
    (time, tiebreak) heap would give, while zero-delay traffic — the bulk
    of all events — never touches the heap.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._now_queue: deque = deque()
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self._stopped = False
        self._pending_real = 0   # scheduled non-daemon events
        self._pool: List[Event] = []   # recycled internal events
        self.events_processed = 0      # lifetime dispatch count

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if not event.daemon:
            self._pending_real += 1
        if when <= self.now:
            if when < self.now:
                raise SimulationError("time went backwards")
            self._now_queue.append(event)
        else:
            heapq.heappush(self._heap, (when, next(self._counter), event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event for callback delivery *now*."""
        if not event.daemon:
            self._pending_real += 1
        self._now_queue.append(event)

    def _pooled_event(self) -> Event:
        """An internal one-callback event from the free list.

        Pooled events never escape the kernel: their ``callbacks`` stays
        ``None`` (they dispatch through the ``_cb`` slot instead) and
        they return to the pool right after delivery.
        """
        pool = self._pool
        if pool:
            return pool.pop()
        event = Event.__new__(Event)
        event.sim = self
        event.callbacks = None
        event._triggered = True
        event._ok = True
        event.value = None
        event.daemon = False
        event._pooled = True
        return event

    def _schedule_resume(self, process: Process, when: float,
                         value: Any = None, ok: bool = True) -> None:
        """Resume ``process`` at ``when`` through a pooled event (the
        bare-delay / already-processed-event fast path)."""
        event = self._pooled_event()
        event._ok = ok
        event.value = value
        event.daemon = False
        event._cb = process._resume_cb
        process._waiting_on = event
        self._pending_real += 1
        if when <= self.now:
            self._now_queue.append(event)
        else:
            heapq.heappush(self._heap, (when, next(self._counter), event))

    def call_later(self, delay: float, fn: Callable[[], None],
                   daemon: bool = False) -> None:
        """Run ``fn()`` after ``delay`` ns without spawning a process.

        The bookkeeping fast path: credit returns, in-flight packet
        delivery, and similar fire-and-forget actions cost one pooled
        event instead of a process + generator + completion event. ``fn``
        must not yield; it runs synchronously at dispatch time.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = self._pooled_event()
        event._ok = True
        event.value = fn
        event.daemon = daemon
        event._cb = _run_deferred
        if not daemon:
            self._pending_real += 1
        when = self.now + delay
        if when <= self.now:
            self._now_queue.append(event)
        else:
            heapq.heappush(self._heap, (when, next(self._counter), event))

    # -- public factory helpers -----------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                daemon: bool = False) -> Timeout:
        """Create an event that fires ``delay`` ns from now.

        ``daemon`` timers do not keep :meth:`run` alive (used by
        retransmission watchdogs and failure detectors)."""
        return Timeout(self, delay, value, daemon=daemon)

    @staticmethod
    def delay(ns: float) -> float:
        """A coalesced fixed delay for the pooled fast path.

        ``yield sim.delay(a + b)`` is the idiom for back-to-back fixed
        delays that used to be separate ``timeout`` yields: one pooled
        event replaces N Timeout objects, and simulated time is identical
        because nothing observable happens between the legs. Returns the
        bare number — the kernel's resume path does the rest.
        """
        if ns < 0:
            raise ValueError(f"negative timeout delay: {ns}")
        return ns

    def process(self, generator: Generator, name: str = "",
                daemon: bool = False) -> Process:
        """Register a generator as a new process starting immediately.

        ``daemon`` marks the process's completion event as a daemon
        event: background machinery (per-transaction watchdogs) that
        finishes by *returning* then cannot keep the run alive on its
        own, mirroring the daemon-timer semantics of :meth:`timeout`.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child event fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all child events have fired."""
        return AllOf(self, events)

    def stop(self) -> None:
        """Request that :meth:`run` return at the end of the current step."""
        self._stopped = True

    # -- the event loop --------------------------------------------------

    def _next_when(self) -> float:
        """Timestamp of the next event to dispatch (heap or now-queue)."""
        if self._heap and self._heap[0][0] <= self.now:
            return self.now
        if self._now_queue:
            return self.now
        return self._heap[0][0]

    def _dispatch(self, event: Event) -> None:
        if not event.daemon:
            self._pending_real -= 1
        self.events_processed += 1
        if event._pooled:
            event._cb(event)
            if len(self._pool) < _POOL_LIMIT:
                event.value = None
                self._pool.append(event)
            return
        callbacks = event.callbacks
        event.callbacks = None  # marks the event as fully processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event nobody waited for: surface it.
            raise event.value

    def _step(self) -> None:
        heap = self._heap
        if heap and heap[0][0] <= self.now:
            # Matured heap entries predate anything in the now-queue.
            event = heapq.heappop(heap)[2]
        elif self._now_queue:
            event = self._now_queue.popleft()
        else:
            when, _tiebreak, event = heapq.heappop(heap)
            if when < self.now:
                raise SimulationError("time went backwards")
            self.now = when
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or :meth:`stop`.

        Daemon events alone do not sustain the run: once no non-daemon
        event remains, the run ends as if the heap had drained.

        Returns the simulated time at which the run ended.
        """
        self._stopped = False
        # The dispatch loop is inlined (vs. calling _step per event):
        # local bindings of the heap, now-queue, and pool cut attribute
        # lookups on the hottest path in the repository.
        heap = self._heap
        nowq = self._now_queue
        pop = heapq.heappop
        pool = self._pool
        processed = 0
        try:
            while not self._stopped and self._pending_real > 0:
                if heap and heap[0][0] <= self.now:
                    event = pop(heap)[2]
                elif nowq:
                    event = nowq.popleft()
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    self.now = when
                    event = pop(heap)[2]
                else:
                    break
                if not event.daemon:
                    self._pending_real -= 1
                processed += 1
                if event._pooled:
                    event._cb(event)
                    if len(pool) < _POOL_LIMIT:
                        event.value = None
                        pool.append(event)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                elif not event._ok:
                    raise event.value
        finally:
            self.events_processed += processed
        if until is not None and self.now < until:
            self.now = until
        return self.now

    # -- windowed execution (conservative parallel engine support) -------

    def peek_next_event_time(self) -> float:
        """Timestamp of the earliest pending event (daemons included),
        or ``inf`` when nothing is scheduled.

        Used by the conservative parallel runner to compute each
        partition's earliest possible next action. Daemon events count:
        a retransmission watchdog can fire and *emit* real traffic, so
        the lower bound must cover it.
        """
        if self._now_queue:
            return self.now
        if self._heap:
            return self._heap[0][0]
        return float("inf")

    def run_window(self, bound: float):
        """Process every pending event strictly before ``bound``.

        The conservative-window primitive: unlike :meth:`run`, the loop
        does not stop when real work drains (another partition may still
        revive this one through a message) and never advances ``now`` to
        ``bound`` — it stays at the last dispatched event so repeated
        windows compose into exactly one serial execution.

        Returns ``(last_real, processed)``: the timestamp of the last
        non-daemon event dispatched in this window (``None`` if none
        was) and the number of events processed.
        """
        if bound <= self.now:
            return None, 0
        heap = self._heap
        nowq = self._now_queue
        pop = heapq.heappop
        pool = self._pool
        processed = 0
        last_real = None
        try:
            while True:
                if heap and heap[0][0] <= self.now:
                    event = pop(heap)[2]
                elif nowq:
                    event = nowq.popleft()
                elif heap:
                    when = heap[0][0]
                    if when >= bound:
                        break
                    self.now = when
                    event = pop(heap)[2]
                else:
                    break
                if not event.daemon:
                    self._pending_real -= 1
                    last_real = self.now
                processed += 1
                if event._pooled:
                    event._cb(event)
                    if len(pool) < _POOL_LIMIT:
                        event.value = None
                        pool.append(event)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                elif not event._ok:
                    raise event.value
        finally:
            self.events_processed += processed
        return last_real, processed

    def run_until_process(self, process: Process, limit: float = 1e15) -> Any:
        """Run until ``process`` completes; return its value.

        ``limit`` guards against runaway simulations (raises if exceeded).
        Mirrors :meth:`run`'s daemon accounting: if only daemon events
        remain (e.g. a watchdog-only heap), the process can never
        complete, so a deadlock error is raised instead of spinning the
        daemon timers forever.
        """
        while not process.triggered:
            if not self._heap and not self._now_queue:
                raise SimulationError(
                    f"deadlock: no events pending but {process.name!r} "
                    "has not completed"
                )
            if self._pending_real <= 0:
                raise SimulationError(
                    f"deadlock: only daemon events remain but "
                    f"{process.name!r} has not completed"
                )
            if self._next_when() > limit:
                raise SimulationError(
                    f"simulation exceeded time limit {limit} ns"
                )
            self._step()
        # Drain same-timestamp callbacks associated with completion.
        if not process.ok:
            raise process.value
        return process.value
