"""Discrete-event simulation kernel.

This is the substrate on which every timed component of the soNUMA model
runs: RMC pipelines, cores, links, routers, DRAM channels, and baseline
models are all :class:`Process` coroutines scheduled by a single
:class:`Simulator`.

The design is deliberately small and explicit (a few hundred lines rather
than a dependency): an event heap keyed by simulated time, generator-based
processes, and condition events. Time is measured in **nanoseconds** and
stored as a float; all component models in this repository quote their
parameters in ns so that Table 1 of the paper can be transcribed directly.

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(50.0)          # sleep 50 ns
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"

Processes may yield:

* a :class:`Timeout` (or a bare ``int``/``float`` delay, as a convenience),
* any other :class:`Event` (including another :class:`Process`),
* ``None`` to simply yield control at the same timestamp.

A process finishes when its generator returns; the generator's return value
becomes the process's :attr:`Event.value`. Exceptions raised inside a
process propagate to any process waiting on it, and to :meth:`Simulator.run`
if nobody is waiting (errors never pass silently).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "WakeSignal",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then notifies its callbacks.
    Processes wait on events by yielding them.

    A *daemon* event (watchdog timers, heartbeat ticks) does not keep the
    simulation alive: :meth:`Simulator.run` returns once only daemon
    events remain in the heap, so background reliability machinery never
    extends a run past its last piece of real work.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "value", "daemon")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._ok = True
        self.value: Any = None
        self.daemon = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (vs. with an exception)."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self.value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will re-raise it."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self.value = exception
        self.sim._queue_event(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.1f}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 daemon: bool = False):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.daemon = daemon
        self._triggered = True  # scheduled immediately, fires at now+delay
        self.value = value
        sim._schedule_at(sim.now + delay, self)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._triggered = True
        sim._schedule_at(sim.now, self)


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The process is itself an :class:`Event` that fires when the generator
    returns (successfully) or raises (failure). Other processes can wait
    for it by yielding it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value (or exception) of `trigger`."""
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger.ok:
                target = self.generator.send(trigger.value)
            else:
                target = self.generator.throw(trigger.value)
        except StopIteration as stop:
            sim._active_process = None
            self._triggered = True
            self._ok = True
            self.value = stop.value
            sim._queue_event(self)
            return
        except BaseException as exc:
            sim._active_process = None
            self._triggered = True
            self._ok = False
            self.value = exc
            exc.__traceback__ = exc.__traceback__
            sim._queue_event(self)
            return
        sim._active_process = None

        # Normalize what the process yielded into an Event to wait on.
        if target is None:
            target = Timeout(sim, 0.0)
        elif isinstance(target, (int, float)):
            target = Timeout(sim, float(target))
        elif not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )

        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(sim)
            immediate.callbacks.append(self._resume)
            if target.ok:
                immediate.succeed(target.value)
            else:
                immediate.fail(target.value)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev.callbacks is None
        }


class AnyOf(_Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires once all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({i: ev.value for i, ev in enumerate(self.events)})


class WakeSignal:
    """A level-triggered wake-up for polling loops.

    Hardware that continuously polls a memory location (the RGP sweeping
    its WQs) would swamp a discrete-event simulation with no-op events.
    A :class:`WakeSignal` gives the same semantics event-efficiently: the
    poller waits on :meth:`wait`; producers call :meth:`trigger`. A
    trigger with no waiter is latched (level- rather than edge-
    triggered), so a wake between two ``wait`` calls is never lost.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._event: Optional[Event] = None
        self._latched = False

    def wait(self) -> Event:
        """An event that fires at the next (or a latched) trigger."""
        if self._latched:
            self._latched = False
            fired = self.sim.event()
            fired.succeed()
            return fired
        if self._event is None or self._event.triggered:
            self._event = self.sim.event()
        return self._event

    def trigger(self) -> None:
        """Wake the waiter, or latch the wake if nobody waits yet."""
        if self._event is not None and not self._event.triggered:
            self._event.succeed()
        else:
            self._latched = True


class Simulator:
    """The event loop: a heap of (time, tiebreak, event) triples.

    All timestamps are nanoseconds. Events scheduled at equal times fire
    in FIFO order of scheduling (the tiebreak counter guarantees a total
    order, keeping runs deterministic).
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self._stopped = False
        self._pending_real = 0   # scheduled non-daemon events

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if not event.daemon:
            self._pending_real += 1
        heapq.heappush(self._heap, (when, next(self._counter), event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event for callback delivery *now*."""
        self._schedule_at(self.now, event)

    # -- public factory helpers -----------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                daemon: bool = False) -> Timeout:
        """Create an event that fires ``delay`` ns from now.

        ``daemon`` timers do not keep :meth:`run` alive (used by
        retransmission watchdogs and failure detectors)."""
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a new process starting immediately."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child event fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all child events have fired."""
        return AllOf(self, events)

    def stop(self) -> None:
        """Request that :meth:`run` return at the end of the current step."""
        self._stopped = True

    # -- the event loop --------------------------------------------------

    def _step(self) -> None:
        when, _tiebreak, event = heapq.heappop(self._heap)
        if not event.daemon:
            self._pending_real -= 1
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None  # marks the event as fully processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event.ok and not isinstance(event, Process):
            # A failed event nobody waited for: surface it.
            raise event.value
        elif not event.ok and isinstance(event, Process):
            raise event.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or :meth:`stop`.

        Daemon events alone do not sustain the run: once no non-daemon
        event remains, the run ends as if the heap had drained.

        Returns the simulated time at which the run ended.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            if self._pending_real <= 0:
                break
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self._step()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until_process(self, process: Process, limit: float = 1e15) -> Any:
        """Run until ``process`` completes; return its value.

        ``limit`` guards against runaway simulations (raises if exceeded).
        """
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: no events pending but {process.name!r} "
                    "has not completed"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(
                    f"simulation exceeded time limit {limit} ns"
                )
            self._step()
        # Drain same-timestamp callbacks associated with completion.
        if not process.ok:
            raise process.value
        return process.value
