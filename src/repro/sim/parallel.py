"""Conservative parallel discrete-event engine (node-partitioned PDES).

The cluster model partitions naturally at fabric-link boundaries: every
inter-node interaction crosses a link with a known minimum delay, which
is exactly the *lookahead* a conservative synchronization scheme needs
(DRackSim runs rack-scale simulations the same way). Each worker process
owns one or more nodes — CPU, caches, RMC, NI — plus its half of the
attached links; cross-partition packets travel as timestamped messages
injected into the destination partition at ``send_time + link_latency``.

Synchronization is a coordinator-based variant of the classic
time-window (YAWNS) protocol:

1. Every worker reports its next-event time ``NE``, its count of
   scheduled non-daemon events, whether it still holds undrained
   remote frames (*credit obligations*), and the messages it emitted.
2. The coordinator routes messages, then computes each worker's safe
   emission horizon ``lb = NE_eff + L`` where ``NE_eff`` also counts
   freshly routed inbound messages and ``L`` is the worker's minimum
   outbound latency: the credit-return latency while it owes credits,
   the full link latency otherwise.
3. The global window bound is ``min(lb)``; every worker processes all
   events strictly below it, and no message can ever arrive in a
   worker's past (``arrival >= NE_sender + L_sender >= bound``).

Windows always make global progress because the worker holding the
globally minimum ``NE`` has ``bound > NE`` whenever every lookahead is
positive — which is why a zero lookahead is rejected with
:class:`ZeroLookaheadError` instead of being allowed to deadlock.

Determinism: with a fixed seed and partition plan the parallel engine
produces bit-identical per-node telemetry and workload results vs. the
serial engine. Partitioned runs require ``paired`` flow control (see
:class:`~repro.fabric.ni.FabricConfig`), whose end-of-instant delivery
staging orders same-timestamp frames by a canonical key on both sides
of the cut — the serial engine running the same paired configuration
executes the exact same event sequence per node.

Workers are forked (``multiprocessing`` "fork" start method), so the
builder callable is inherited, not pickled; only the cross-partition
messages travel through pipes. An ``inline`` transport runs every
partition round-robin in one process with the identical protocol —
useful for tests and single-core machines.
"""

from __future__ import annotations

import math
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .engine import SimulationError

__all__ = [
    "PartitionError",
    "ZeroLookaheadError",
    "PartitionPlan",
    "RemoteMessage",
    "PartitionedRun",
    "run_partitioned",
]

#: RemoteMessage kinds.
MSG_FRAME = "frame"
MSG_CREDIT = "credit"


class PartitionError(SimulationError):
    """A partitioned run was configured in an unsupported way (routed
    topology, membership service, touching a node another rank owns)."""


class ZeroLookaheadError(PartitionError):
    """Partitioned synchronization needs strictly positive link and
    credit-return latencies: with zero lookahead no worker could ever
    safely advance and the window protocol would deadlock."""


@dataclass(frozen=True)
class PartitionPlan:
    """Assignment of node ids to worker ranks.

    ``owner[node_id]`` is the rank that simulates the node. Ranks must
    be dense (0..num_parts-1) and each must own at least one node, so a
    plan fully describes the worker fleet.
    """

    owner: Tuple[int, ...]

    def __post_init__(self):
        if not self.owner:
            raise PartitionError("partition plan is empty")
        ranks = set(self.owner)
        num_parts = max(ranks) + 1
        if ranks != set(range(num_parts)):
            raise PartitionError(
                f"ranks must be dense 0..{num_parts - 1}: {sorted(ranks)}")

    @property
    def num_nodes(self) -> int:
        return len(self.owner)

    @property
    def num_parts(self) -> int:
        return max(self.owner) + 1

    @classmethod
    def contiguous(cls, num_nodes: int, num_parts: int) -> "PartitionPlan":
        """Blocks of consecutive node ids, sizes as equal as possible."""
        if not 1 <= num_parts <= num_nodes:
            raise PartitionError(
                f"need 1..{num_nodes} partitions, got {num_parts}")
        base, rem = divmod(num_nodes, num_parts)
        owner: List[int] = []
        for rank in range(num_parts):
            owner.extend([rank] * (base + (1 if rank < rem else 0)))
        return cls(owner=tuple(owner))

    @classmethod
    def single(cls, num_nodes: int) -> "PartitionPlan":
        return cls.contiguous(num_nodes, 1)

    def rank_of(self, node_id: int) -> int:
        return self.owner[node_id]

    def nodes_of(self, rank: int) -> List[int]:
        return [n for n, r in enumerate(self.owner) if r == rank]


@dataclass(frozen=True)
class RemoteMessage:
    """One cross-partition link-layer message (frame or credit).

    ``key`` is the canonical end-of-instant ordering key; messages that
    share an arrival timestamp are replayed in key order, which is the
    same order the serial engine's delivery stager uses — that is what
    keeps simultaneous arrivals at a partition boundary deterministic.
    """

    arrival: float
    dst_rank: int
    key: Tuple
    kind: str
    payload: object


# -- coordinator <-> worker protocol (pickled over pipes) -----------------


@dataclass(frozen=True)
class _Hello:
    frame_lookahead_ns: float
    credit_lookahead_ns: float


@dataclass(frozen=True)
class _Report:
    outbox: Tuple[RemoteMessage, ...]
    next_event: float
    pending: int
    obligations: bool
    last_real: Optional[float]


@dataclass(frozen=True)
class _RunCmd:
    bound: float
    msgs: Tuple[RemoteMessage, ...]


@dataclass(frozen=True)
class _StopCmd:
    final_time: float


@dataclass(frozen=True)
class _Final:
    result: object = None
    events_processed: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None


@dataclass
class PartitionedRun:
    """Outcome of :func:`run_partitioned`."""

    results: Dict[int, object]
    final_time: float
    rounds: int
    wall_s: float
    #: Per-rank engine accounting: ``{"rank", "nodes", "events_processed",
    #: "wall_s"}`` — feeds telemetry's per-partition throughput report.
    partitions: List[Dict[str, object]] = field(default_factory=list)

    def engine_stats(self) -> Dict[str, object]:
        """Telemetry-ready aggregation (see telemetry.merge_snapshots)."""
        total_events = sum(p["events_processed"] for p in self.partitions)
        return {
            "partitions": self.partitions,
            "total_events_processed": total_events,
            "rounds": self.rounds,
            "wall_s": self.wall_s,
            "events_per_sec": (total_events / self.wall_s
                               if self.wall_s > 0 else 0.0),
        }


# -- worker side ----------------------------------------------------------


class _WorkerState:
    """One partition's engine loop, shared by both transports."""

    def __init__(self, rank: int, plan: PartitionPlan, build: Callable):
        self.rank = rank
        self.sim, self.fabric, self.finalize = build(rank, plan)
        self.wall_s = 0.0

    def hello(self) -> _Hello:
        frame_ns, credit_ns = self.fabric.lookahead()
        if frame_ns <= 0 or credit_ns <= 0:
            raise ZeroLookaheadError(
                "partitioned runs need positive link_latency_ns and "
                f"credit_return_ns (got {frame_ns}, {credit_ns})")
        return _Hello(frame_lookahead_ns=frame_ns,
                      credit_lookahead_ns=credit_ns)

    def report(self, last_real: Optional[float]) -> _Report:
        return _Report(outbox=tuple(self.fabric.drain_outbox()),
                       next_event=self.sim.peek_next_event_time(),
                       pending=self.sim._pending_real,
                       obligations=self.fabric.has_credit_obligations(),
                       last_real=last_real)

    def handle(self, cmd):
        """Execute one coordinator command; returns (reply, done)."""
        if isinstance(cmd, _StopCmd):
            self.sim.now = cmd.final_time
            result = self.finalize()
            return _Final(result=result,
                          events_processed=self.sim.events_processed,
                          wall_s=self.wall_s), True
        t0 = time.perf_counter()
        self.fabric.inject_messages(cmd.msgs)
        last_real, _processed = self.sim.run_window(cmd.bound)
        self.wall_s += time.perf_counter() - t0
        return self.report(last_real), False


def _worker_main(conn, rank: int, plan: PartitionPlan,
                 build: Callable) -> None:
    try:
        state = _WorkerState(rank, plan, build)
        conn.send(state.hello())
        conn.send(state.report(None))
        while True:
            reply, done = state.handle(conn.recv())
            conn.send(reply)
            if done:
                return
    except BaseException:
        try:
            conn.send(_Final(error=traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


class _ProcessWorker:
    """A forked partition process on the far end of a pipe."""

    def __init__(self, ctx, rank: int, plan: PartitionPlan,
                 build: Callable):
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child, rank, plan, build),
                                daemon=True,
                                name=f"sim-partition-{rank}")
        self.proc.start()
        child.close()

    def send(self, cmd) -> None:
        self.conn.send(cmd)

    def recv(self):
        try:
            return self.conn.recv()
        except EOFError:
            return _Final(error=f"partition process {self.proc.pid} "
                                "exited without a reply")

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join()


class _InlineWorker:
    """Runs a partition in-process with the identical protocol (no pipes,
    no pickling) — determinism does not depend on the transport."""

    def __init__(self, rank: int, plan: PartitionPlan, build: Callable):
        self._replies: List = []
        try:
            self.state = _WorkerState(rank, plan, build)
            self._replies.append(self.state.hello())
            self._replies.append(self.state.report(None))
        except ZeroLookaheadError:
            raise
        except BaseException:
            self._replies.append(_Final(error=traceback.format_exc()))

    def send(self, cmd) -> None:
        try:
            reply, _done = self.state.handle(cmd)
            self._replies.append(reply)
        except BaseException:
            self._replies.append(_Final(error=traceback.format_exc()))

    def recv(self):
        return self._replies.pop(0)

    def close(self) -> None:
        pass


# -- coordinator ----------------------------------------------------------


def _fail(workers, message: str):
    for w in workers:
        try:
            w.close()
        except Exception:
            pass
    raise PartitionError(f"partitioned run failed:\n{message}")


def run_partitioned(build: Callable, plan: PartitionPlan,
                    until: Optional[float] = None,
                    transport: str = "process") -> PartitionedRun:
    """Run one partitioned simulation to completion.

    ``build(rank, plan)`` constructs a partition and returns
    ``(sim, fabric, finalize)`` where ``fabric`` is a
    :class:`~repro.fabric.partition.PartitionedCrossbar` and
    ``finalize()`` produces the rank's result after the clocks stop.
    ``until`` bounds simulated time exactly like ``Simulator.run``.

    With a single-partition plan the builder's simulator simply runs
    serially — the parallel layer adds zero overhead at ``workers=1``.
    """
    if transport not in ("process", "inline"):
        raise ValueError(f"unknown transport: {transport}")
    t_start = time.perf_counter()
    if plan.num_parts == 1:
        state = _WorkerState(0, plan, build)
        state.hello()   # validates lookahead
        t0 = time.perf_counter()
        final = state.sim.run(until=until)
        wall = time.perf_counter() - t0
        return PartitionedRun(
            results={0: state.finalize()}, final_time=final, rounds=0,
            wall_s=time.perf_counter() - t_start,
            partitions=[{"rank": 0, "nodes": plan.nodes_of(0),
                         "events_processed": state.sim.events_processed,
                         "wall_s": wall}])

    num_parts = plan.num_parts
    if transport == "process":
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise PartitionError(
                "process transport needs the 'fork' start method "
                "(POSIX); use transport='inline' instead")
        ctx = mp.get_context("fork")
        workers = [_ProcessWorker(ctx, r, plan, build)
                   for r in range(num_parts)]
    else:
        workers = [_InlineWorker(r, plan, build) for r in range(num_parts)]

    def expect(reply, kind):
        if isinstance(reply, _Final) and reply.error is not None:
            _fail(workers, reply.error)
        if not isinstance(reply, kind):
            _fail(workers, f"protocol error: expected {kind.__name__}, "
                           f"got {type(reply).__name__}")
        return reply

    hellos = [expect(w.recv(), _Hello) for w in workers]
    frame_ns = min(h.frame_lookahead_ns for h in hellos)
    credit_ns = min(h.credit_lookahead_ns for h in hellos)
    reports: List[_Report] = [expect(w.recv(), _Report) for w in workers]
    inboxes: List[List[RemoteMessage]] = [[] for _ in range(num_parts)]
    last_reals: List[Optional[float]] = [None] * num_parts
    horizon = (math.nextafter(until, math.inf)
               if until is not None else math.inf)
    rounds = 0

    while True:
        for rep in reports:
            for msg in rep.outbox:
                inboxes[msg.dst_rank].append(msg)
        for rank, rep in enumerate(reports):
            if rep.last_real is not None:
                prev = last_reals[rank]
                if prev is None or rep.last_real > prev:
                    last_reals[rank] = rep.last_real

        bound = math.inf
        all_idle = True
        min_next = math.inf
        for rank, rep in enumerate(reports):
            inbox = inboxes[rank]
            next_event = rep.next_event
            frames_inbound = False
            for msg in inbox:
                if msg.arrival < next_event:
                    next_event = msg.arrival
                if msg.kind == MSG_FRAME:
                    frames_inbound = True
            if rep.pending or inbox:
                all_idle = False
            if next_event < min_next:
                min_next = next_event
            lookahead = (credit_ns if (rep.obligations or frames_inbound)
                         else frame_ns)
            lb = next_event + lookahead
            if lb < bound:
                bound = lb

        if all_idle:
            final = (until if until is not None
                     else max((t for t in last_reals if t is not None),
                              default=0.0))
            break
        if until is not None and min_next > until:
            final = until
            break
        bound = min(bound, horizon)

        rounds += 1
        for rank, worker in enumerate(workers):
            inbox = inboxes[rank]
            inbox.sort(key=lambda m: (m.arrival, m.key))
            worker.send(_RunCmd(bound=bound, msgs=tuple(inbox)))
            inboxes[rank] = []
        reports = [expect(w.recv(), _Report) for w in workers]

    for worker in workers:
        worker.send(_StopCmd(final_time=final))
    finals = [expect(w.recv(), _Final) for w in workers]
    for worker in workers:
        worker.close()

    return PartitionedRun(
        results={rank: f.result for rank, f in enumerate(finals)},
        final_time=final, rounds=rounds,
        wall_s=time.perf_counter() - t_start,
        partitions=[{"rank": rank, "nodes": plan.nodes_of(rank),
                     "events_processed": f.events_processed,
                     "wall_s": f.wall_s}
                    for rank, f in enumerate(finals)])
