"""Conservative parallel discrete-event engine (node-partitioned PDES).

The cluster model partitions naturally at fabric-link boundaries: every
inter-node interaction crosses a link with a known minimum delay, which
is exactly the *lookahead* a conservative synchronization scheme needs
(DRackSim runs rack-scale simulations the same way). Each worker process
owns one or more nodes — CPU, caches, RMC, NI — plus its half of the
attached links; cross-partition packets travel as timestamped messages
injected into the destination partition at ``send_time + link_latency``.

Synchronization is a coordinator-based variant of the classic
time-window (YAWNS) protocol:

1. Every worker reports its next-event time ``NE``, its count of
   scheduled non-daemon events, whether it still holds undrained
   remote frames (*credit obligations*), and the messages it emitted.
2. The coordinator routes messages, then computes each worker's safe
   emission horizon ``lb = NE_eff + L`` where ``NE_eff`` also counts
   freshly routed inbound messages and ``L`` is the worker's minimum
   outbound latency: the credit-return latency while it owes credits,
   the full link latency otherwise.
3. The global window bound is ``min(lb)``; every worker processes all
   events strictly below it, and no message can ever arrive in a
   worker's past (``arrival >= NE_sender + L_sender >= bound``).

Windows always make global progress because the worker holding the
globally minimum ``NE`` has ``bound > NE`` whenever every lookahead is
positive — which is why a zero lookahead is rejected with
:class:`ZeroLookaheadError` instead of being allowed to deadlock.

**Overlapped windows.** Each grant is double-buffered: alongside the
window bound ``B`` the coordinator pre-authorizes a per-worker *eager
horizon* ``E_i = min(min_{j != i} lb_j, B + L_min, next until)``. After
a worker sends its report it keeps executing local events below ``E_i``
while the coordinator round-trip is in flight. This changes no horizon
math: messages from other workers arrive at ``>= lb_j >= E_i``, eager
emissions arrive at ``>= B + L_min >= E_i``, and the next bound
satisfies ``B' >= B + L_min >= E_i``, so the eager range is always a
prefix of the next window — the protocol trace (reports, outboxes,
bounds) is bit-identical with overlap on or off. Workers only run
eagerly while they still hold non-daemon events, which guarantees a
next grant exists to cover the eager range.

Determinism: with a fixed seed and partition plan the parallel engine
produces bit-identical per-node telemetry and workload results vs. the
serial engine. Partitioned runs require ``paired`` flow control (see
:class:`~repro.fabric.ni.FabricConfig`), whose end-of-instant delivery
staging orders same-timestamp frames by a canonical key on both sides
of the cut — the serial engine running the same paired configuration
executes the exact same event sequence per node.

Transports (identical protocol, identical results):

* ``shm`` — forked workers, messages in per-worker shared-memory ring
  buffers (:mod:`repro.sim.ringbuf`) with a fixed-layout binary codec;
  the fastest multi-core option (no pipe syscalls, no dataclass
  pickling on the hot path).
* ``process`` — forked workers over pipes with pickled dataclasses.
* ``inline`` — every partition round-robin in one process; useful for
  tests, profiling pre-runs, and single-core machines.
"""

from __future__ import annotations

import math
import pickle
import struct
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..protocol import VirtualLane
from .engine import SimulationError
from .ringbuf import HEADER_BYTES, SpscRing

__all__ = [
    "PartitionError",
    "ZeroLookaheadError",
    "PartitionPlan",
    "RemoteMessage",
    "PartitionedRun",
    "TRANSPORTS",
    "default_transport",
    "plan_from_spec",
    "resolve_run_options",
    "profile_weights",
    "run_partitioned",
]

#: RemoteMessage kinds.
MSG_FRAME = "frame"
MSG_CREDIT = "credit"

#: Supported transports, fastest first.
TRANSPORTS = ("shm", "process", "inline")

#: Default per-direction ring capacity for the shm transport.
DEFAULT_RING_BYTES = 1 << 20


class PartitionError(SimulationError):
    """A partitioned run was configured in an unsupported way (routed
    topology, membership service, touching a node another rank owns)."""


class ZeroLookaheadError(PartitionError):
    """Partitioned synchronization needs strictly positive link and
    credit-return latencies: with zero lookahead no worker could ever
    safely advance and the window protocol would deadlock."""


@dataclass(frozen=True)
class PartitionPlan:
    """Assignment of node ids to worker ranks.

    ``owner[node_id]`` is the rank that simulates the node. Ranks must
    be dense (0..num_parts-1) and each must own at least one node, so a
    plan fully describes the worker fleet.
    """

    owner: Tuple[int, ...]

    def __post_init__(self):
        if not self.owner:
            raise PartitionError("partition plan is empty")
        ranks = set(self.owner)
        num_parts = max(ranks) + 1
        if ranks != set(range(num_parts)):
            raise PartitionError(
                f"ranks must be dense 0..{num_parts - 1}: {sorted(ranks)}")

    @property
    def num_nodes(self) -> int:
        return len(self.owner)

    @property
    def num_parts(self) -> int:
        return max(self.owner) + 1

    @classmethod
    def contiguous(cls, num_nodes: int, num_parts: int) -> "PartitionPlan":
        """Blocks of consecutive node ids, sizes as equal as possible."""
        if not 1 <= num_parts <= num_nodes:
            raise PartitionError(
                f"need 1..{num_nodes} partitions, got {num_parts}")
        base, rem = divmod(num_nodes, num_parts)
        owner: List[int] = []
        for rank in range(num_parts):
            owner.extend([rank] * (base + (1 if rank < rem else 0)))
        return cls(owner=tuple(owner))

    @classmethod
    def single(cls, num_nodes: int) -> "PartitionPlan":
        return cls.contiguous(num_nodes, 1)

    @classmethod
    def from_profile(cls, weights, num_parts: int) -> "PartitionPlan":
        """Load-aware plan from per-node event weights.

        ``weights`` is a sequence (or node->weight mapping) of per-node
        event counts, typically from :func:`profile_weights` or a prior
        :class:`PartitionedRun`'s per-partition stats. Greedy LPT
        bin-packing: nodes in decreasing weight order, each to the
        currently lightest rank (ties broken toward the emptier, then
        lower-numbered bin). Ranks are relabeled so rank order follows
        each bin's lowest node id — the plan is a pure function of the
        weights, independent of dict ordering or float noise sources.
        """
        if isinstance(weights, Mapping):
            weights = [weights[n] for n in range(len(weights))]
        weights = [float(w) for w in weights]
        num_nodes = len(weights)
        if not 1 <= num_parts <= num_nodes:
            raise PartitionError(
                f"need 1..{num_nodes} partitions, got {num_parts}")
        if any(w < 0 or math.isnan(w) for w in weights):
            raise PartitionError(f"weights must be >= 0: {weights}")
        order = sorted(range(num_nodes), key=lambda i: (-weights[i], i))
        loads = [0.0] * num_parts
        bins: List[List[int]] = [[] for _ in range(num_parts)]
        for node in order:
            rank = min(range(num_parts),
                       key=lambda r: (loads[r], len(bins[r]), r))
            loads[rank] += weights[node]
            bins[rank].append(node)
        bins.sort(key=min)
        owner = [0] * num_nodes
        for rank, members in enumerate(bins):
            for node in members:
                owner[node] = rank
        return cls(owner=tuple(owner))

    def rank_of(self, node_id: int) -> int:
        return self.owner[node_id]

    def nodes_of(self, rank: int) -> List[int]:
        return [n for n, r in enumerate(self.owner) if r == rank]

    def balance_bound(self, weights: Sequence[float]) -> float:
        """Analytic speedup ceiling from partition balance alone:
        total weight / busiest partition's weight."""
        loads = [0.0] * self.num_parts
        for node, w in enumerate(weights):
            loads[self.owner[node]] += float(w)
        busiest = max(loads)
        return sum(loads) / busiest if busiest else float(self.num_parts)


@dataclass(frozen=True)
class RemoteMessage:
    """One cross-partition link-layer message (frame or credit).

    ``key`` is the canonical end-of-instant ordering key; messages that
    share an arrival timestamp are replayed in key order, which is the
    same order the serial engine's delivery stager uses — that is what
    keeps simultaneous arrivals at a partition boundary deterministic.
    """

    arrival: float
    dst_rank: int
    key: Tuple
    kind: str
    payload: object


# -- coordinator <-> worker protocol --------------------------------------


@dataclass(frozen=True)
class _Hello:
    frame_lookahead_ns: float
    credit_lookahead_ns: float


@dataclass(frozen=True)
class _Report:
    outbox: Tuple[RemoteMessage, ...]
    next_event: float
    pending: int
    obligations: bool
    last_real: Optional[float]


@dataclass(frozen=True)
class _RunCmd:
    bound: float
    msgs: Tuple[RemoteMessage, ...]
    #: Pre-authorized eager horizon for *after* this window's report
    #: (0.0 disables overlap for the round).
    eager: float = 0.0


@dataclass(frozen=True)
class _StopCmd:
    final_time: float


@dataclass(frozen=True)
class _Final:
    result: object = None
    events_processed: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None
    #: Worker-side time breakdown (busy/eager/blocked/send/serialize).
    stats: Optional[Dict[str, float]] = None


# -- fixed-layout wire codec (shm transport) -------------------------------
#
# Every protocol object maps to [u8 type | fixed fields | messages...].
# RemoteMessages carry their canonical 5-int ordering key and arrival
# inline; credit payloads are fully binary, frame payloads (a packet +
# fault decision) travel as a length-prefixed pickle blob. Anything that
# does not fit the fixed layout falls back to a pickled record (type
# 255) so exotic messages stay correct, just slower.

_MT_HELLO, _MT_REPORT, _MT_RUN, _MT_STOP, _MT_FINAL = 1, 2, 3, 4, 5
_MK_FRAME, _MK_CREDIT, _MK_PICKLED = 0, 1, 255

_S_TYPE = struct.Struct("<B")
_S_HELLO = struct.Struct("<dd")
_S_REPORT = struct.Struct("<dqBdI")    # next_event, pending, obl, last, n
_S_RUN = struct.Struct("<ddI")         # bound, eager, n
_S_STOP = struct.Struct("<d")
_S_MSGHDR = struct.Struct("<Bdi")      # msg kind, arrival, dst_rank
_S_KEY = struct.Struct("<5q")
_S_CREDIT = struct.Struct("<4q")       # src, dst, vl, seq
_S_LEN = struct.Struct("<I")


def _encode_msg(out: bytearray, msg: RemoteMessage) -> None:
    try:
        head = (_S_MSGHDR.pack(
            _MK_CREDIT if msg.kind == MSG_CREDIT else _MK_FRAME,
            msg.arrival, msg.dst_rank) + _S_KEY.pack(*msg.key))
        if msg.kind == MSG_CREDIT:
            src, dst, vl, seq = msg.payload
            body = _S_CREDIT.pack(src, dst, int(vl.value), seq)
        elif msg.kind == MSG_FRAME:
            blob = pickle.dumps(msg.payload, pickle.HIGHEST_PROTOCOL)
            body = _S_LEN.pack(len(blob)) + blob
        else:
            raise ValueError(msg.kind)
    except (struct.error, TypeError, ValueError, AttributeError):
        blob = pickle.dumps(msg, pickle.HIGHEST_PROTOCOL)
        out += _S_MSGHDR.pack(_MK_PICKLED, 0.0, 0)
        out += _S_LEN.pack(len(blob)) + blob
        return
    out += head
    out += body


def _decode_msg(data, off: int) -> Tuple[RemoteMessage, int]:
    mkind, arrival, dst_rank = _S_MSGHDR.unpack_from(data, off)
    off += _S_MSGHDR.size
    if mkind == _MK_PICKLED:
        (n,) = _S_LEN.unpack_from(data, off)
        off += _S_LEN.size
        return pickle.loads(data[off:off + n]), off + n
    key = _S_KEY.unpack_from(data, off)
    off += _S_KEY.size
    if mkind == _MK_CREDIT:
        src, dst, vl, seq = _S_CREDIT.unpack_from(data, off)
        off += _S_CREDIT.size
        return RemoteMessage(arrival=arrival, dst_rank=dst_rank, key=key,
                             kind=MSG_CREDIT,
                             payload=(src, dst, VirtualLane(vl), seq)), off
    (n,) = _S_LEN.unpack_from(data, off)
    off += _S_LEN.size
    return RemoteMessage(arrival=arrival, dst_rank=dst_rank, key=key,
                         kind=MSG_FRAME,
                         payload=pickle.loads(data[off:off + n])), off + n


def encode_wire(obj) -> bytes:
    """Serialize one protocol object to the fixed-layout wire format."""
    out = bytearray()
    if isinstance(obj, _Report):
        out += _S_TYPE.pack(_MT_REPORT)
        last = math.nan if obj.last_real is None else obj.last_real
        out += _S_REPORT.pack(obj.next_event, obj.pending,
                              1 if obj.obligations else 0, last,
                              len(obj.outbox))
        for msg in obj.outbox:
            _encode_msg(out, msg)
    elif isinstance(obj, _RunCmd):
        out += _S_TYPE.pack(_MT_RUN)
        out += _S_RUN.pack(obj.bound, obj.eager, len(obj.msgs))
        for msg in obj.msgs:
            _encode_msg(out, msg)
    elif isinstance(obj, _Hello):
        out += _S_TYPE.pack(_MT_HELLO)
        out += _S_HELLO.pack(obj.frame_lookahead_ns, obj.credit_lookahead_ns)
    elif isinstance(obj, _StopCmd):
        out += _S_TYPE.pack(_MT_STOP)
        out += _S_STOP.pack(obj.final_time)
    elif isinstance(obj, _Final):
        blob = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        out += _S_TYPE.pack(_MT_FINAL)
        out += _S_LEN.pack(len(blob))
        out += blob
    else:
        raise PartitionError(f"cannot encode {type(obj).__name__}")
    return bytes(out)


def decode_wire(data: bytes):
    """Inverse of :func:`encode_wire`."""
    (mtype,) = _S_TYPE.unpack_from(data, 0)
    off = _S_TYPE.size
    if mtype == _MT_REPORT:
        next_event, pending, obligations, last, n = \
            _S_REPORT.unpack_from(data, off)
        off += _S_REPORT.size
        msgs = []
        for _ in range(n):
            msg, off = _decode_msg(data, off)
            msgs.append(msg)
        return _Report(outbox=tuple(msgs), next_event=next_event,
                       pending=pending, obligations=bool(obligations),
                       last_real=None if math.isnan(last) else last)
    if mtype == _MT_RUN:
        bound, eager, n = _S_RUN.unpack_from(data, off)
        off += _S_RUN.size
        msgs = []
        for _ in range(n):
            msg, off = _decode_msg(data, off)
            msgs.append(msg)
        return _RunCmd(bound=bound, msgs=tuple(msgs), eager=eager)
    if mtype == _MT_HELLO:
        frame_ns, credit_ns = _S_HELLO.unpack_from(data, off)
        return _Hello(frame_lookahead_ns=frame_ns,
                      credit_lookahead_ns=credit_ns)
    if mtype == _MT_STOP:
        (final_time,) = _S_STOP.unpack_from(data, off)
        return _StopCmd(final_time=final_time)
    if mtype == _MT_FINAL:
        (n,) = _S_LEN.unpack_from(data, off)
        off += _S_LEN.size
        return pickle.loads(data[off:off + n])
    raise PartitionError(f"unknown wire message type {mtype}")


@dataclass
class PartitionedRun:
    """Outcome of :func:`run_partitioned`."""

    results: Dict[int, object]
    final_time: float
    rounds: int
    wall_s: float
    #: Per-rank engine accounting: ``{"rank", "nodes", "events_processed",
    #: "wall_s"}`` plus the busy/eager/blocked/send/serialize breakdown —
    #: feeds telemetry's per-partition throughput report.
    partitions: List[Dict[str, object]] = field(default_factory=list)
    transport: str = "inline"
    #: Coordinator-side overhead: grant round-trips, routing/compute
    #: time, time blocked waiting on worker reports, codec time.
    coordination: Dict[str, object] = field(default_factory=dict)

    def engine_stats(self) -> Dict[str, object]:
        """Telemetry-ready aggregation (see telemetry.merge_snapshots)."""
        total_events = sum(p["events_processed"] for p in self.partitions)
        return {
            "partitions": self.partitions,
            "total_events_processed": total_events,
            "rounds": self.rounds,
            "wall_s": self.wall_s,
            "events_per_sec": (total_events / self.wall_s
                               if self.wall_s > 0 else 0.0),
            "transport": self.transport,
            "coordination": self.coordination,
            "eager_events_total": sum(
                p.get("eager_events", 0) for p in self.partitions),
        }


# -- worker side ----------------------------------------------------------


_EMPTY_STATS = {"busy_s": 0.0, "blocked_s": 0.0, "send_s": 0.0,
                "serialize_s": 0.0, "eager_events": 0, "eager_windows": 0}


class _WorkerState:
    """One partition's engine loop, shared by all transports."""

    def __init__(self, rank: int, plan: PartitionPlan, build: Callable):
        self.rank = rank
        self.sim, self.fabric, self.finalize = build(rank, plan)
        self.wall_s = 0.0          # busy: window + eager execution
        self.blocked_s = 0.0       # waiting for the next grant
        self.send_s = 0.0          # pushing replies to the coordinator
        self.serialize_s = 0.0     # codec time (shm transport only)
        self.eager_events = 0
        self.eager_windows = 0
        self._pending_eager = 0.0
        self._eager_last: Optional[float] = None

    def hello(self) -> _Hello:
        frame_ns, credit_ns = self.fabric.lookahead()
        if frame_ns <= 0 or credit_ns <= 0:
            raise ZeroLookaheadError(
                "partitioned runs need positive link_latency_ns and "
                f"credit_return_ns (got {frame_ns}, {credit_ns})")
        return _Hello(frame_lookahead_ns=frame_ns,
                      credit_lookahead_ns=credit_ns)

    def report(self, last_real: Optional[float]) -> _Report:
        return _Report(outbox=tuple(self.fabric.drain_outbox()),
                       next_event=self.sim.peek_next_event_time(),
                       pending=self.sim._pending_real,
                       obligations=self.fabric.has_credit_obligations(),
                       last_real=last_real)

    def handle(self, cmd):
        """Execute one coordinator command; returns (reply, done)."""
        if isinstance(cmd, _StopCmd):
            self.sim.now = cmd.final_time
            result = self.finalize()
            return _Final(result=result,
                          events_processed=self.sim.events_processed,
                          wall_s=self.wall_s,
                          stats={"busy_s": self.wall_s,
                                 "blocked_s": self.blocked_s,
                                 "send_s": self.send_s,
                                 "serialize_s": self.serialize_s,
                                 "eager_events": self.eager_events,
                                 "eager_windows": self.eager_windows}), True
        t0 = time.perf_counter()
        self.fabric.inject_messages(cmd.msgs)
        last_real, _processed = self.sim.run_window(cmd.bound)
        if self._eager_last is not None:
            # Events executed eagerly after the previous report belong
            # to this window; fold their last-dispatch time in so the
            # report is identical to a non-overlapped execution.
            last_real = (self._eager_last if last_real is None
                         else max(last_real, self._eager_last))
            self._eager_last = None
        reply = self.report(last_real)
        self.wall_s += time.perf_counter() - t0
        self._pending_eager = cmd.eager
        return reply, False

    def run_eager(self) -> None:
        """Execute local events below the pre-authorized eager horizon
        while the coordinator round-trip is in flight. Only runs while
        non-daemon events remain, which guarantees another grant is
        coming whose window covers the eager range exactly."""
        eager = self._pending_eager
        self._pending_eager = 0.0
        if eager <= self.sim.now or self.sim._pending_real <= 0:
            return
        t0 = time.perf_counter()
        last_real, processed = self.sim.run_window(eager)
        self.wall_s += time.perf_counter() - t0
        if processed:
            self.eager_events += processed
            self.eager_windows += 1
        if last_real is not None:
            self._eager_last = (last_real if self._eager_last is None
                                else max(self._eager_last, last_real))


def _worker_main(conn, rank: int, plan: PartitionPlan,
                 build: Callable) -> None:
    try:
        state = _WorkerState(rank, plan, build)
        conn.send(state.hello())
        conn.send(state.report(None))
        while True:
            t0 = time.perf_counter()
            cmd = conn.recv()
            state.blocked_s += time.perf_counter() - t0
            reply, done = state.handle(cmd)
            t0 = time.perf_counter()
            conn.send(reply)
            state.send_s += time.perf_counter() - t0
            if done:
                return
            state.run_eager()
    except BaseException:
        try:
            conn.send(_Final(error=traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


def _shm_worker_main(shm, ring_in: SpscRing, ring_out: SpscRing,
                     rank: int, plan: PartitionPlan,
                     build: Callable) -> None:
    try:
        state = _WorkerState(rank, plan, build)
        ring_out.push(encode_wire(state.hello()))
        ring_out.push(encode_wire(state.report(None)))
        while True:
            t0 = time.perf_counter()
            data = ring_in.pop()
            t1 = time.perf_counter()
            cmd = decode_wire(data)
            t2 = time.perf_counter()
            state.blocked_s += t1 - t0
            state.serialize_s += t2 - t1
            reply, done = state.handle(cmd)
            t0 = time.perf_counter()
            data = encode_wire(reply)
            t1 = time.perf_counter()
            ring_out.push(data)
            t2 = time.perf_counter()
            state.serialize_s += t1 - t0
            state.send_s += t2 - t1
            if done:
                return
            state.run_eager()
    except BaseException:
        try:
            ring_out.push(encode_wire(_Final(error=traceback.format_exc())),
                          timeout=5.0)
        except Exception:
            pass
    finally:
        ring_in.release()
        ring_out.release()
        try:
            shm.close()
        except (BufferError, OSError):
            pass


class _ProcessWorker:
    """A forked partition process on the far end of a pipe."""

    def __init__(self, ctx, rank: int, plan: PartitionPlan,
                 build: Callable):
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child, rank, plan, build),
                                daemon=True,
                                name=f"sim-partition-{rank}")
        self.proc.start()
        child.close()

    def send(self, cmd) -> None:
        self.conn.send(cmd)

    def recv(self):
        try:
            return self.conn.recv()
        except EOFError:
            return _Final(error=f"partition process {self.proc.pid} "
                                "exited without a reply")

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join()


class _ShmWorker:
    """A forked partition process reached through a pair of
    shared-memory rings (coordinator->worker and worker->coordinator)
    carrying the fixed-layout wire format."""

    def __init__(self, ctx, rank: int, plan: PartitionPlan,
                 build: Callable, ring_bytes: int = DEFAULT_RING_BYTES):
        from multiprocessing import shared_memory

        half = HEADER_BYTES + ring_bytes
        self.shm = shared_memory.SharedMemory(create=True, size=2 * half)
        view = self.shm.buf
        self._to_worker = SpscRing(view[:half], ring_bytes, create=True)
        self._from_worker = SpscRing(view[half:2 * half], ring_bytes,
                                     create=True)
        self.serialize_s = 0.0
        # Fork start method: the rings (and the mapping) are inherited,
        # nothing is pickled. The child closes its mapping on exit; the
        # coordinator owns the unlink.
        self.proc = ctx.Process(
            target=_shm_worker_main,
            args=(self.shm, self._to_worker, self._from_worker,
                  rank, plan, build),
            daemon=True, name=f"sim-partition-{rank}")
        self.proc.start()

    def send(self, cmd) -> None:
        t0 = time.perf_counter()
        data = encode_wire(cmd)
        self.serialize_s += time.perf_counter() - t0
        self._to_worker.push(data)

    def recv(self):
        while True:
            data = self._from_worker.pop(timeout=0.5)
            if data is not None:
                t0 = time.perf_counter()
                obj = decode_wire(data)
                self.serialize_s += time.perf_counter() - t0
                return obj
            if not self.proc.is_alive():
                return _Final(error=f"partition process {self.proc.pid} "
                                    "exited without a reply")

    def close(self) -> None:
        self.proc.join(timeout=30)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join()
        self._to_worker.release()
        self._from_worker.release()
        try:
            self.shm.close()
        except (BufferError, OSError):
            pass
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


class _InlineWorker:
    """Runs a partition in-process with the identical protocol (no pipes,
    no pickling) — determinism does not depend on the transport."""

    def __init__(self, rank: int, plan: PartitionPlan, build: Callable):
        self._replies: List = []
        try:
            self.state = _WorkerState(rank, plan, build)
            self._replies.append(self.state.hello())
            self._replies.append(self.state.report(None))
        except ZeroLookaheadError:
            raise
        except BaseException:
            self._replies.append(_Final(error=traceback.format_exc()))

    def send(self, cmd) -> None:
        try:
            reply, done = self.state.handle(cmd)
            self._replies.append(reply)
            if not done:
                self.state.run_eager()
        except BaseException:
            self._replies.append(_Final(error=traceback.format_exc()))

    def recv(self):
        return self._replies.pop(0)

    def close(self) -> None:
        pass


# -- coordinator ----------------------------------------------------------


def default_transport(num_parts: int = 2) -> str:
    """Best transport available on this host: ``shm`` when POSIX fork +
    shared memory are available, ``process`` without shared memory,
    ``inline`` otherwise (or for single-partition runs)."""
    if num_parts <= 1:
        return "inline"
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        return "inline"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return "process"
    return "shm"


def resolve_run_options(workers: int, transport: str = "auto",
                        partition: str = "auto"):
    """Resolve ``auto`` transport/partition choices for CLI-style entry
    points.

    Returns ``(transport, partition, note)`` where ``note`` is a
    one-line human-readable explanation when the resolution fell back
    from the preferred ``shm`` + ``adaptive`` combination (single
    worker, or a host without POSIX fork/shared memory), else ``None``.
    """
    note = None
    if transport == "auto":
        transport = default_transport(workers)
        if workers <= 1:
            note = "single worker: running serial (transport/plan moot)"
        elif transport != "shm":
            note = (f"shm transport unavailable on this host "
                    f"(no POSIX fork/shared memory); using {transport}")
    if partition == "auto":
        partition = "adaptive" if workers > 1 else "contiguous"
    return transport, partition, note


def _profiling_build(build: Callable) -> Callable:
    """Wrap a builder for a truncated profiling pre-run: the app's
    finalizer is replaced with a no-op so stopping mid-workload cannot
    trip result assembly."""
    def wrapped(rank, plan):
        sim, fabric, _finalize = build(rank, plan)
        return sim, fabric, (lambda: None)
    return wrapped


def profile_weights(build: Callable, num_nodes: int,
                    until: Optional[float] = None) -> List[int]:
    """Per-node event counts from an inline profiling pre-run.

    Runs the builder with one node per rank on the inline transport
    (no processes spawned) up to ``until`` simulated ns and returns
    each node's processed-event count — the input
    :meth:`PartitionPlan.from_profile` expects.
    """
    plan = PartitionPlan.contiguous(num_nodes, num_nodes)
    run = run_partitioned(_profiling_build(build), plan, until=until,
                          transport="inline", overlap=False)
    parts = sorted(run.partitions, key=lambda p: p["rank"])
    return [p["events_processed"] for p in parts]


#: Default simulated horizon for the adaptive plan's profiling pre-run.
#: Long enough to cover the opening communication pattern of the
#: workloads here; short enough that the pre-run stays a small fraction
#: of the real run. The plan only affects load balance, never results.
DEFAULT_PROFILE_UNTIL_NS = 50_000.0


def plan_from_spec(spec, build: Callable, num_nodes: int, num_parts: int,
                   profile_until: Optional[float] = None) -> PartitionPlan:
    """Resolve a partition spec into a concrete plan.

    ``spec`` is a :class:`PartitionPlan` (returned as-is),
    ``"contiguous"`` (static equal-size blocks), or ``"adaptive"``
    (profiling pre-run via :func:`profile_weights`, then
    :meth:`PartitionPlan.from_profile` bin-packing).
    """
    if isinstance(spec, PartitionPlan):
        return spec
    if spec == "contiguous":
        return PartitionPlan.contiguous(num_nodes, num_parts)
    if spec == "adaptive":
        if profile_until is None:
            profile_until = DEFAULT_PROFILE_UNTIL_NS
        weights = profile_weights(build, num_nodes, until=profile_until)
        return PartitionPlan.from_profile(weights, num_parts)
    raise PartitionError(
        f"unknown partition spec {spec!r} "
        "(expected a PartitionPlan, 'contiguous', or 'adaptive')")


def _fail(workers, message: str):
    for w in workers:
        try:
            w.close()
        except Exception:
            pass
    raise PartitionError(f"partitioned run failed:\n{message}")


def run_partitioned(build: Callable, plan: PartitionPlan,
                    until: Optional[float] = None,
                    transport: str = "process",
                    overlap: bool = True,
                    ring_bytes: int = DEFAULT_RING_BYTES) -> PartitionedRun:
    """Run one partitioned simulation to completion.

    ``build(rank, plan)`` constructs a partition and returns
    ``(sim, fabric, finalize)`` where ``fabric`` is a
    :class:`~repro.fabric.partition.PartitionedCrossbar` and
    ``finalize()`` produces the rank's result after the clocks stop.
    ``until`` bounds simulated time exactly like ``Simulator.run``.
    ``transport`` is ``shm``, ``process``, or ``inline`` (results are
    bit-identical across all three); ``overlap=False`` disables the
    eager window overlap (results are unchanged, only wall clock).

    With a single-partition plan the builder's simulator simply runs
    serially — the parallel layer adds zero overhead at ``workers=1``.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"unknown transport: {transport} "
                         f"(choose from {'/'.join(TRANSPORTS)})")
    t_start = time.perf_counter()
    if plan.num_parts == 1:
        state = _WorkerState(0, plan, build)
        state.hello()   # validates lookahead
        t0 = time.perf_counter()
        final = state.sim.run(until=until)
        wall = time.perf_counter() - t0
        return PartitionedRun(
            results={0: state.finalize()}, final_time=final, rounds=0,
            wall_s=time.perf_counter() - t_start,
            partitions=[dict(_EMPTY_STATS, rank=0, nodes=plan.nodes_of(0),
                             events_processed=state.sim.events_processed,
                             wall_s=wall, busy_s=wall)],
            transport=transport)

    num_parts = plan.num_parts
    if transport in ("process", "shm"):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise PartitionError(
                f"{transport} transport needs the 'fork' start method "
                "(POSIX); use transport='inline' instead")
        ctx = mp.get_context("fork")
        if transport == "shm":
            workers = [_ShmWorker(ctx, r, plan, build, ring_bytes)
                       for r in range(num_parts)]
        else:
            workers = [_ProcessWorker(ctx, r, plan, build)
                       for r in range(num_parts)]
    else:
        workers = [_InlineWorker(r, plan, build) for r in range(num_parts)]

    def expect(reply, kind):
        if isinstance(reply, _Final) and reply.error is not None:
            _fail(workers, reply.error)
        if not isinstance(reply, kind):
            _fail(workers, f"protocol error: expected {kind.__name__}, "
                           f"got {type(reply).__name__}")
        return reply

    hellos = [expect(w.recv(), _Hello) for w in workers]
    frame_ns = min(h.frame_lookahead_ns for h in hellos)
    credit_ns = min(h.credit_lookahead_ns for h in hellos)
    min_lookahead = min(frame_ns, credit_ns)
    reports: List[_Report] = [expect(w.recv(), _Report) for w in workers]
    inboxes: List[List[RemoteMessage]] = [[] for _ in range(num_parts)]
    last_reals: List[Optional[float]] = [None] * num_parts
    lbs: List[float] = [math.inf] * num_parts
    horizon = (math.nextafter(until, math.inf)
               if until is not None else math.inf)
    rounds = 0
    route_s = 0.0
    wait_s = 0.0

    while True:
        t_route = time.perf_counter()
        for rep in reports:
            for msg in rep.outbox:
                inboxes[msg.dst_rank].append(msg)
        for rank, rep in enumerate(reports):
            if rep.last_real is not None:
                prev = last_reals[rank]
                if prev is None or rep.last_real > prev:
                    last_reals[rank] = rep.last_real

        bound = math.inf
        all_idle = True
        min_next = math.inf
        for rank, rep in enumerate(reports):
            inbox = inboxes[rank]
            next_event = rep.next_event
            frames_inbound = False
            for msg in inbox:
                if msg.arrival < next_event:
                    next_event = msg.arrival
                if msg.kind == MSG_FRAME:
                    frames_inbound = True
            if rep.pending or inbox:
                all_idle = False
            if next_event < min_next:
                min_next = next_event
            lookahead = (credit_ns if (rep.obligations or frames_inbound)
                         else frame_ns)
            lb = next_event + lookahead
            lbs[rank] = lb
            if lb < bound:
                bound = lb

        if all_idle:
            final = (until if until is not None
                     else max((t for t in last_reals if t is not None),
                              default=0.0))
            break
        if until is not None and min_next > until:
            final = until
            break
        bound = min(bound, horizon)

        rounds += 1
        for rank, worker in enumerate(workers):
            inbox = inboxes[rank]
            inbox.sort(key=lambda m: (m.arrival, m.key))
            eager = 0.0
            if overlap:
                # Double-buffered grant: pre-authorize execution past
                # the bound, up to where any message could possibly
                # land — other workers' current safe-emission floors
                # and the floor of everything emitted after the bound.
                others = min((lbs[j] for j in range(num_parts)
                              if j != rank), default=math.inf)
                eager = min(others, bound + min_lookahead, horizon)
                if eager <= bound:
                    eager = 0.0
            worker.send(_RunCmd(bound=bound, msgs=tuple(inbox),
                                eager=eager))
            inboxes[rank] = []
        route_s += time.perf_counter() - t_route
        t_wait = time.perf_counter()
        reports = [expect(w.recv(), _Report) for w in workers]
        wait_s += time.perf_counter() - t_wait

    for worker in workers:
        worker.send(_StopCmd(final_time=final))
    finals = [expect(w.recv(), _Final) for w in workers]
    for worker in workers:
        worker.close()

    def _row(rank: int, fin: _Final) -> Dict[str, object]:
        row = dict(_EMPTY_STATS, rank=rank, nodes=plan.nodes_of(rank),
                   events_processed=fin.events_processed,
                   wall_s=fin.wall_s)
        if fin.stats:
            row.update(fin.stats)
        return row

    return PartitionedRun(
        results={rank: f.result for rank, f in enumerate(finals)},
        final_time=final, rounds=rounds,
        wall_s=time.perf_counter() - t_start,
        partitions=[_row(rank, f) for rank, f in enumerate(finals)],
        transport=transport,
        coordination={
            "grant_roundtrips": rounds,
            "overlap": overlap,
            "route_s": route_s,
            "wait_s": wait_s,
            "serialize_s": sum(getattr(w, "serialize_s", 0.0)
                               for w in workers),
        })
