"""Transparent one-sided write logging for uncoordinated recovery.

Besta & Hoefler's RMA fault-tolerance design pairs coded checkpoints
with *access-side logs*: every one-sided put a node issues is recorded
at the issuer, and when the **target** of those puts crashes and
restarts, each peer simply replays its own log since the target's last
durable checkpoint. The failed node alone rolls back; nobody else loses
a cycle of progress — *uncoordinated* recovery, in contrast to the BSP
engine's coordinated rollback where every rank rewinds together.

The log attaches transparently to an :class:`RMCSession`
(``session.attach_write_log(log)``): ``write_sync`` / ``write_async``
record destination, offset, and a snapshot of the payload at post time
— application code does not change. Log growth is bounded by
checkpoint cadence: when a target's checkpoint becomes durable, peers
:meth:`truncate` their logs for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["LoggedWrite", "OneSidedWriteLog"]


@dataclass(frozen=True)
class LoggedWrite:
    """One recorded one-sided write, replayable verbatim."""

    seq: int
    time_ns: float
    dst_nid: int
    offset: int
    data: bytes


class OneSidedWriteLog:
    """Issuer-side log of outbound one-sided writes, per destination."""

    def __init__(self, counters=None):
        self._logs: Dict[int, List[LoggedWrite]] = {}
        self._seq = 0
        self.records_logged = 0
        self.records_replayed = 0
        self.records_truncated = 0
        #: Optional :class:`~repro.resilience.counters.ResilienceCounters`
        #: of the replaying node (telemetry).
        self.counters = counters

    def record(self, dst_nid: int, offset: int, data: bytes,
               time_ns: float) -> LoggedWrite:
        """Append one write (called by the session's write path)."""
        entry = LoggedWrite(seq=self._seq, time_ns=time_ns,
                            dst_nid=dst_nid, offset=offset,
                            data=bytes(data))
        self._seq += 1
        self.records_logged += 1
        self._logs.setdefault(dst_nid, []).append(entry)
        return entry

    def pending(self, dst_nid: int) -> List[LoggedWrite]:
        """Writes toward ``dst_nid`` since its last truncation."""
        return list(self._logs.get(dst_nid, []))

    def pending_bytes(self, dst_nid: int) -> int:
        return sum(len(e.data) for e in self._logs.get(dst_nid, []))

    def truncate(self, dst_nid: int,
                 upto_seq: Optional[int] = None) -> int:
        """Drop log entries for ``dst_nid`` (its checkpoint is durable).

        With ``upto_seq`` only entries with ``seq <= upto_seq`` go —
        writes issued *after* the checkpoint cut stay replayable.
        Returns the number of entries dropped.
        """
        entries = self._logs.get(dst_nid, [])
        if upto_seq is None:
            kept: List[LoggedWrite] = []
        else:
            kept = [e for e in entries if e.seq > upto_seq]
        dropped = len(entries) - len(kept)
        self._logs[dst_nid] = kept
        self.records_truncated += dropped
        return dropped

    def replay(self, session, dst_nid: int):
        """Timed coroutine: re-issue every pending write toward
        ``dst_nid`` in original order (after its restart). The replayed
        writes go through the normal timed one-sided path — and are
        *not* re-logged, so replay does not feed the log it drains.
        Returns the number of writes replayed."""
        entries = self._logs.get(dst_nid, [])
        if not entries:
            return 0
        scratch = session.alloc_buffer(max(len(e.data) for e in entries))
        replayed = 0
        log_attached = getattr(session, "write_log", None)
        session.write_log = None      # no self-feeding during replay
        try:
            for entry in entries:
                session.buffer_poke(scratch, entry.data)
                yield from session.write_sync(dst_nid, entry.offset,
                                              scratch, len(entry.data))
                replayed += 1
        finally:
            session.write_log = log_attached
        self.records_replayed += replayed
        if self.counters is not None:
            self.counters.log_replays += replayed
        return replayed
