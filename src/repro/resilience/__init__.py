"""Holistic RMA fault tolerance: coded checkpoints + op logging.

The production-grade resilience recipe for one-sided programming models
(Besta & Hoefler, "Fault Tolerance for RMA Programming Models"):

* :mod:`~repro.resilience.coding` — XOR parity and GF(256)
  Reed-Solomon shard codes (pure python, property-tested);
* :mod:`~repro.resilience.checkpoint` — the striped checkpoint store:
  scatter ``k + m`` shards to distinct healthy peers over one-sided
  writes, track durability per (epoch, stripe), rebuild from any k;
* :mod:`~repro.resilience.oplog` — transparent issuer-side logging of
  one-sided writes for uncoordinated single-node recovery;
* :mod:`~repro.resilience.counters` — per-node resilience telemetry.

`FaultTolerantBSPEngine` (``repro.apps.bsp``) selects these behind its
checkpoint API (``checkpoint_mode="replica" | "xor" | "rs(k,m)"``), and
`CodedKVServer` / degraded reads (``repro.apps.kvstore``) apply the
same codes to the replicated KV's backup path.
"""

from .coding import ErasureCode, RSCode, XORCode, parse_checkpoint_mode
from .checkpoint import (
    CheckpointUnrecoverable,
    HEADER_BYTES,
    StripedCheckpointStore,
)
from .counters import ResilienceCounters
from .oplog import LoggedWrite, OneSidedWriteLog

__all__ = [
    "CheckpointUnrecoverable",
    "ErasureCode",
    "HEADER_BYTES",
    "LoggedWrite",
    "OneSidedWriteLog",
    "ResilienceCounters",
    "RSCode",
    "StripedCheckpointStore",
    "XORCode",
    "parse_checkpoint_mode",
]
