"""Striped in-memory checkpoints: scatter coded shards to peers.

The store turns one rank's partition snapshot into ``k + m`` coded
shards (see :mod:`repro.resilience.coding`) and scatters them to
``k + m`` *distinct* peers with one-sided writes through the existing
:class:`~repro.runtime.qp_api.RMCSession` — the same data path every
other byte in the system takes. Durability is per ``(epoch, stripe)``
and crash-consistent by construction:

* shard payloads are bulk ``write_async`` operations, drained before
  any header is written;
* each holder then gets a 16-byte header ``(epoch, shard_index + 1)``
  with a synchronous write — a stripe is durable at an epoch only where
  its header says so, so a writer crashing mid-scatter leaves the
  previous double-buffered slot intact and the half-written one
  unclaimed;
* recovery *scans headers on live nodes only*: it never trusts writer-
  side bookkeeping (the writer may be the node that died) and rebuilds
  the stripe from **any k** surviving shards.

Placement consults the membership service and the fault controller, so
shards never land on evicted, crashed, or gray-degraded nodes. When
fewer than ``k + m`` healthy peers remain the stripe is written with as
many parity shards as fit (graceful degradation); below ``k`` peers the
checkpoint is skipped entirely and the caller decides what that means.

Losing more than ``m`` shards of a stripe is the unrecoverable case,
surfaced as the typed :class:`CheckpointUnrecoverable` carrying the
epoch and the missing shard indices — diagnostics first, because this
is the error an operator pages on.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from .coding import ErasureCode
from .counters import ResilienceCounters

__all__ = ["CheckpointUnrecoverable", "StripedCheckpointStore",
           "HEADER_BYTES"]

#: Reserved per (source, slot) header line; 16 bytes are used.
HEADER_BYTES = 64

_HEADER = struct.Struct("<QQ")


class CheckpointUnrecoverable(RuntimeError):
    """More shards of a checkpoint stripe are gone than the code can
    repair (> m losses): the epoch cannot be reconstructed. Carries the
    diagnostics recovery tooling needs: whose stripe, which epoch, and
    exactly which shard indices are missing."""

    def __init__(self, source: int, epoch: int,
                 missing_shards: List[int], needed: int, have: int):
        super().__init__(
            f"checkpoint stripe of rank {source} at epoch {epoch} is "
            f"unrecoverable: shards {missing_shards} are lost "
            f"({have} survive, {needed} needed)")
        self.source = source
        self.epoch = epoch
        self.missing_shards = list(missing_shards)
        self.needed = needed
        self.have = have


class StripedCheckpointStore:
    """Scatter, track, and rebuild coded checkpoint stripes.

    The store is a *cluster-shared* object (the modeled out-of-band
    control plane owns the geometry); each rank drives its own timed
    writes through its own session. Geometry: every node reserves, per
    source rank, two double-buffered shard slots of ``shard_stride``
    bytes at ``shard_base`` plus two header lines at ``hdr_base`` —
    identical offsets on every host, so placement is pure choice of
    destination node.
    """

    def __init__(self, cluster, ctx_id: int, code: ErasureCode,
                 num_sources: int, shard_base: int, shard_stride: int,
                 hdr_base: int, membership=None, controller=None,
                 excluded: Optional[Set[int]] = None):
        self.cluster = cluster
        self.ctx_id = ctx_id
        self.code = code
        self.num_sources = num_sources
        self.shard_base = shard_base
        self.shard_stride = shard_stride
        self.hdr_base = hdr_base
        self.membership = membership
        self.controller = controller
        #: Externally-owned set of permanently failed ranks (the BSP
        #: engine's ``failed_ranks``); treated as dead hosts even if
        #: the node later restarts and rejoins the cluster.
        self.excluded = excluded if excluded is not None else set()
        self.stripes_written = 0
        self._scratch: Dict[int, Tuple[List[int], int]] = {}

    # -- geometry ------------------------------------------------------------

    def shard_offset(self, source: int, slot: int) -> int:
        return self.shard_base + (source * 2 + slot) * self.shard_stride

    def header_offset(self, source: int, slot: int) -> int:
        return self.hdr_base + (source * 2 + slot) * HEADER_BYTES

    # -- placement (consults membership + fault controller) ------------------

    def host_healthy(self, host: int) -> bool:
        """Is ``host`` a sane place to put (or read) a shard right now?"""
        if host in self.excluded:
            return False
        if self.controller is not None and (
                self.controller.is_down(host)
                or self.controller.is_gray(host)):
            return False
        if self.membership is not None \
                and not self.membership.is_live(host):
            return False
        return True

    def eligible_hosts(self, source: int) -> List[int]:
        return [h for h in range(len(self.cluster.nodes))
                if h != source and self.host_healthy(h)]

    def place(self, source: int) -> List[int]:
        """Choose hosts for the stripe's shards: up to ``k + m``
        distinct healthy peers, rotated by source rank so parity load
        spreads. Fewer than ``k + m`` healthy peers degrades ``m``;
        fewer than ``k`` returns ``[]`` (stripe cannot be stored)."""
        candidates = self.eligible_hosts(source)
        if len(candidates) < self.code.k:
            return []
        count = min(self.code.num_shards, len(candidates))
        start = source % len(candidates)
        return [candidates[(start + i) % len(candidates)]
                for i in range(count)]

    # -- the timed scatter path ----------------------------------------------

    def _buffers(self, session) -> Tuple[List[int], int]:
        key = id(session)
        if key not in self._scratch:
            shard_bufs = [session.alloc_buffer(self.shard_stride)
                          for _ in range(self.code.num_shards)]
            hdr_buf = session.alloc_buffer(HEADER_BYTES)
            self._scratch[key] = (shard_bufs, hdr_buf)
        return self._scratch[key]

    def write_stripe(self, session, source: int, data: bytes,
                     progress: int, slot: int, rebuilt: bool = False):
        """Timed coroutine: encode ``data`` and scatter the shards.

        Bulk shard writes are posted asynchronously (overlapped across
        holders), drained, and only then are the per-holder headers
        written — the durability point. Raises
        :class:`~repro.runtime.qp_api.RemoteOpFailed` if a holder died
        mid-scatter. Returns the number of shards written (0 if too few
        healthy peers remain to store the stripe at all).
        """
        from ..runtime.qp_api import RemoteOpFailed

        holders = self.place(source)
        if not holders:
            return 0
        shards = self.code.encode(data)
        shard_bufs, hdr_buf = self._buffers(session)
        data_off = self.shard_offset(source, slot)
        for index, host in enumerate(holders):
            session.buffer_poke(shard_bufs[index], shards[index])
            yield from session.wait_for_slot()
            yield from session.write_async(host, data_off,
                                           shard_bufs[index],
                                           len(shards[index]))
        yield from session.drain_cq()
        if session.errors:
            entry = session.errors[0]
            raise RemoteOpFailed(entry.wq_index, entry.error)
        hdr_off = self.header_offset(source, slot)
        for index, host in enumerate(holders):
            session.buffer_poke(
                hdr_buf, _HEADER.pack(progress, index + 1))
            yield from session.write_sync(host, hdr_off, hdr_buf,
                                          _HEADER.size)
        self.stripes_written += 1
        counters = self._counters(source)
        counters.checkpoint_bytes_written += sum(len(s) for s in
                                                 shards[:len(holders)])
        if rebuilt:
            counters.shards_rebuilt += len(holders)
        return len(holders)

    def _counters(self, node_id: int) -> ResilienceCounters:
        return self.cluster.resilience_counters(node_id)

    # -- functional recovery scans (control-plane reads) ---------------------

    def scan(self, source: int) -> Dict[int, Dict[int, Tuple[int, int]]]:
        """Headers on *healthy* nodes: ``{epoch: {shard_index: (host,
        slot)}}``. Never consults writer-side state."""
        found: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for host in range(len(self.cluster.nodes)):
            if host == source or not self.host_healthy(host):
                continue
            for slot in (0, 1):
                raw = self.cluster.peek_segment(
                    host, self.ctx_id, self.header_offset(source, slot),
                    _HEADER.size)
                progress, index_p1 = _HEADER.unpack(raw)
                if progress == 0 or index_p1 == 0:
                    continue
                found.setdefault(progress, {}) \
                     .setdefault(index_p1 - 1, (host, slot))
        return found

    def durable_epoch(self, source: int) -> int:
        """Highest epoch with >= k distinct surviving shards (0: none)."""
        best = 0
        for progress, shards in self.scan(source).items():
            if len(shards) >= self.code.k and progress > best:
                best = progress
        return best

    def reconstruct(self, source: int, epoch: int, nbytes: int) -> bytes:
        """Rebuild ``source``'s ``nbytes`` snapshot at ``epoch`` from any
        k surviving shards. Raises :class:`CheckpointUnrecoverable` when
        more than m shards are gone."""
        located = self.scan(source).get(epoch, {})
        if len(located) < self.code.k:
            missing = sorted(set(range(self.code.num_shards))
                             - set(located))
            raise CheckpointUnrecoverable(
                source, epoch, missing,
                needed=self.code.k, have=len(located))
        shard_len = self.code.shard_length(nbytes)
        shards = {}
        for index, (host, slot) in sorted(located.items())[:self.code.k]:
            shards[index] = self.cluster.peek_segment(
                host, self.ctx_id, self.shard_offset(source, slot),
                shard_len)
        return self.code.decode(shards, nbytes)
