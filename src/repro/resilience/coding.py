"""Erasure-coding core: XOR parity and GF(256) Reed-Solomon.

Besta & Hoefler's "Fault Tolerance for RMA Programming Models"
(PAPERS.md) replaces full checkpoint replicas with *coded* in-memory
checkpoints: a partition snapshot is split into ``k`` data shards, ``m``
parity shards are computed over them, and the ``k + m`` shards are
scattered to distinct peers. Any ``k`` surviving shards reconstruct the
original bytes, so up to ``m`` simultaneous losses are survivable at a
storage cost of ``(k + m) / k`` instead of the ``2x`` a full replica
pays (local snapshot + remote copy).

This module is the pure-python coding layer — no simulation, no I/O:

* :class:`XORCode` — the classic diskless-checkpointing parity (m = 1):
  one XOR shard over ``k`` data shards, single-loss tolerant;
* :class:`RSCode` — a small systematic Reed-Solomon over GF(256) built
  from a normalized Vandermonde matrix (any ``k`` of the ``k + m``
  shards are an invertible system), multi-loss tolerant;
* :func:`parse_checkpoint_mode` — the ``replica | xor | xor(k) |
  rs(k,m)`` mode strings the checkpoint API accepts.

Both codes are *systematic*: shards ``0..k-1`` are the original bytes
split contiguously (zero-padded to equal length), so the fast path —
nothing lost — is plain concatenation.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ErasureCode", "XORCode", "RSCode", "parse_checkpoint_mode"]


# -- GF(256) arithmetic (AES polynomial x^8 + x^4 + x^3 + x^2 + 1) -----------

_GF_POLY = 0x11D
_GF_EXP = [0] * 512
_GF_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _GF_EXP[power] = value
        _GF_LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _GF_POLY
    for power in range(255, 512):
        _GF_EXP[power] = _GF_EXP[power - 255]


_build_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of 0")
    return _GF_EXP[255 - _GF_LOG[a]]


def _matrix_invert(matrix: List[List[int]]) -> List[List[int]]:
    """Gauss-Jordan inversion over GF(256)."""
    size = len(matrix)
    work = [row[:] + [1 if i == j else 0 for j in range(size)]
            for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = next((r for r in range(col, size) if work[r][col] != 0),
                     None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        work[col], work[pivot] = work[pivot], work[col]
        inv = _gf_inv(work[col][col])
        work[col] = [_gf_mul(value, inv) for value in work[col]]
        for row in range(size):
            if row == col or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = [value ^ _gf_mul(factor, pivot_value)
                         for value, pivot_value
                         in zip(work[row], work[col])]
    return [row[size:] for row in work]


# -- shard splitting ----------------------------------------------------------

def _split(data: bytes, k: int, shard_len: int) -> List[bytes]:
    """Split ``data`` into ``k`` contiguous shards, zero-padded."""
    padded = data + bytes(k * shard_len - len(data))
    return [padded[i * shard_len:(i + 1) * shard_len] for i in range(k)]


class ErasureCode:
    """Common surface of the shard codes.

    ``encode(data)`` returns ``k + m`` equal-length shards (systematic:
    the first ``k`` are the split data). ``decode(shards, length)``
    takes *any* ``k`` shards keyed by shard index and returns the first
    ``length`` original bytes. Shard length for a payload is
    ``shard_length(length)`` — fixed by ``k`` alone, so peers can size
    their hosting regions without seeing the data.
    """

    k: int
    m: int
    name: str

    @property
    def num_shards(self) -> int:
        return self.k + self.m

    @property
    def storage_overhead(self) -> float:
        """Checkpoint bytes stored per data byte: ``(k + m) / k``."""
        return (self.k + self.m) / self.k

    def shard_length(self, data_len: int) -> int:
        return max((data_len + self.k - 1) // self.k, 1)

    def encode(self, data: bytes) -> List[bytes]:
        raise NotImplementedError

    def decode(self, shards: Dict[int, bytes], length: int) -> bytes:
        raise NotImplementedError

    def _check_decode_args(self, shards: Dict[int, bytes]) -> None:
        if len(shards) < self.k:
            raise ValueError(
                f"{self.name}: need {self.k} shards, got {len(shards)}")
        lengths = {len(shard) for shard in shards.values()}
        if len(lengths) > 1:
            raise ValueError(f"{self.name}: unequal shard lengths")
        for index in shards:
            if not 0 <= index < self.num_shards:
                raise ValueError(f"{self.name}: shard index {index} "
                                 f"out of range")


class XORCode(ErasureCode):
    """K data shards + one XOR parity shard (single-loss tolerant)."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("XOR code needs k >= 1")
        self.k = k
        self.m = 1
        self.name = f"xor({k})"

    def encode(self, data: bytes) -> List[bytes]:
        shard_len = self.shard_length(len(data))
        shards = _split(data, self.k, shard_len)
        parity = bytearray(shard_len)
        for shard in shards:
            for i, byte in enumerate(shard):
                parity[i] ^= byte
        return shards + [bytes(parity)]

    def decode(self, shards: Dict[int, bytes], length: int) -> bytes:
        self._check_decode_args(shards)
        missing = [i for i in range(self.k) if i not in shards]
        if not missing:
            return b"".join(shards[i] for i in range(self.k))[:length]
        if len(missing) > 1 or self.k not in shards:
            raise ValueError(f"{self.name}: cannot rebuild shards "
                             f"{missing} from one parity")
        rebuilt = bytearray(shards[self.k])
        for index in range(self.k):
            if index == missing[0]:
                continue
            for i, byte in enumerate(shards[index]):
                rebuilt[i] ^= byte
        parts = [shards[i] if i in shards else bytes(rebuilt)
                 for i in range(self.k)]
        return b"".join(parts)[:length]


class RSCode(ErasureCode):
    """Systematic Reed-Solomon over GF(256): k data + m parity shards.

    The encoding matrix is a ``(k + m) x k`` Vandermonde matrix
    normalized so its top ``k x k`` block is the identity; any ``k``
    rows of such a matrix are linearly independent, so any ``k``
    surviving shards (data or parity, in any mix) reconstruct the data.
    """

    def __init__(self, k: int, m: int):
        if k < 1 or m < 1:
            raise ValueError("RS code needs k >= 1 and m >= 1")
        if k + m > 256:
            raise ValueError("RS over GF(256) caps k + m at 256")
        self.k = k
        self.m = m
        self.name = f"rs({k},{m})"
        vandermonde = [[_pow_gf(row, col) for col in range(k)]
                       for row in range(k + m)]
        top_inverse = _matrix_invert([row[:] for row in vandermonde[:k]])
        self._matrix = [_row_times_matrix(row, top_inverse)
                        for row in vandermonde]

    def encode(self, data: bytes) -> List[bytes]:
        shard_len = self.shard_length(len(data))
        data_shards = _split(data, self.k, shard_len)
        shards = list(data_shards)
        for row in self._matrix[self.k:]:
            parity = bytearray(shard_len)
            for coefficient, shard in zip(row, data_shards):
                if coefficient == 0:
                    continue
                log_c = _GF_LOG[coefficient]
                for i, byte in enumerate(shard):
                    if byte:
                        parity[i] ^= _GF_EXP[log_c + _GF_LOG[byte]]
            shards.append(bytes(parity))
        return shards

    def decode(self, shards: Dict[int, bytes], length: int) -> bytes:
        self._check_decode_args(shards)
        if all(i in shards for i in range(self.k)):
            return b"".join(shards[i] for i in range(self.k))[:length]
        chosen = sorted(shards)[:self.k]
        sub = _matrix_invert([self._matrix[i][:] for i in chosen])
        shard_len = len(shards[chosen[0]])
        data_shards = []
        for out_row in range(self.k):
            rebuilt = bytearray(shard_len)
            for coefficient, index in zip(sub[out_row], chosen):
                if coefficient == 0:
                    continue
                log_c = _GF_LOG[coefficient]
                shard = shards[index]
                for i, byte in enumerate(shard):
                    if byte:
                        rebuilt[i] ^= _GF_EXP[log_c + _GF_LOG[byte]]
            data_shards.append(bytes(rebuilt))
        return b"".join(data_shards)[:length]


def _pow_gf(base: int, exponent: int) -> int:
    if exponent == 0:
        return 1
    if base == 0:
        return 0
    return _GF_EXP[(_GF_LOG[base] * exponent) % 255]


def _row_times_matrix(row: Sequence[int],
                      matrix: List[List[int]]) -> List[int]:
    size = len(matrix)
    out = []
    for col in range(size):
        acc = 0
        for i, coefficient in enumerate(row):
            acc ^= _gf_mul(coefficient, matrix[i][col])
        out.append(acc)
    return out


_MODE_RE = re.compile(
    r"^(replica|xor(?:\((\d+)\))?|rs\((\d+),\s*(\d+)\))$")


def parse_checkpoint_mode(spec: str, num_peers: Optional[int] = None
                          ) -> Tuple[str, Optional[ErasureCode]]:
    """Parse a checkpoint-mode string into ``(mode, code)``.

    Accepted: ``"replica"`` (code is None), ``"xor"`` / ``"xor(k)"``
    (default k = num_peers - 1 so one parity fits the peer set), and
    ``"rs(k,m)"``. When ``num_peers`` (the number of *other* nodes) is
    given, the shard count is validated against it: every shard must
    land on a distinct peer.
    """
    match = _MODE_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"unknown checkpoint mode {spec!r} "
            f"(expected replica | xor | xor(k) | rs(k,m))")
    if match.group(1) == "replica":
        return "replica", None
    if match.group(1).startswith("xor"):
        if match.group(2) is not None:
            k = int(match.group(2))
        elif num_peers is not None:
            k = max(num_peers - 1, 1)
        else:
            raise ValueError("xor without (k) needs num_peers to size it")
        code: ErasureCode = XORCode(k)
        mode = "xor"
    else:
        code = RSCode(int(match.group(3)), int(match.group(4)))
        mode = "rs"
    if num_peers is not None and code.num_shards > num_peers:
        raise ValueError(
            f"{code.name} scatters {code.num_shards} shards but only "
            f"{num_peers} peers exist to hold them")
    return mode, code
