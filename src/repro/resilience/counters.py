"""Per-node resilience telemetry counters.

One :class:`ResilienceCounters` per node, registered with the cluster
(``cluster.resilience_counters(node_id)``) so :mod:`repro.telemetry`
can fold them into its per-node snapshot. The resilience subsystem —
striped checkpoint store, op log, coded KV — increments them; nothing
here is simulated state, it is pure observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ResilienceCounters"]


@dataclass
class ResilienceCounters:
    """What fault tolerance cost this node, in countable units."""

    #: Checkpoint payload bytes this node pushed onto the fabric
    #: (replica copies or coded shards, headers excluded).
    checkpoint_bytes_written: int = 0
    #: Shards this node re-encoded and re-scattered after a holder was
    #: lost (the re-encode-on-shard-loss invariant restoration).
    shards_rebuilt: int = 0
    #: Logged one-sided writes this node replayed into a restarted peer.
    log_replays: int = 0
    #: KV GETs this node served by reconstructing a bucket from coded
    #: backup shards because the primary was unreachable.
    degraded_reads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "checkpoint_bytes_written": self.checkpoint_bytes_written,
            "shards_rebuilt": self.shards_rebuilt,
            "log_replays": self.log_replays,
            "degraded_reads": self.degraded_reads,
        }

    def any(self) -> bool:
        return any(self.as_dict().values())
