"""Remote notifications — the paper's §8 architectural extension.

"A complete architecture will probably require extensions such as the
ability to issue remote interrupts as part of an RMC command, so that
nodes can communicate without polling. This will have a number of
implications for system software, e.g., to efficiently convert
interrupts into application messages."

This module implements that extension end to end:

* a new one-sided command, ``RNOTIFY``, carrying a small payload;
* at the destination, the RRPP delivers it to the driver-registered
  :class:`NotificationQueue` instead of touching application memory and
  raises a (modeled) interrupt;
* the OS model converts the interrupt into an application message: a
  blocked receiver wakes after the interrupt-delivery cost, with *zero*
  polling while idle — the contrast with the §5.3 messaging library's
  receive loop.

A destination without a registered queue rejects RNOTIFY with a
``BAD_CONTEXT``-class error, keeping the base architecture's stateless
guarantee (nothing is buffered for unwilling receivers).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..sim import Simulator, Store

__all__ = ["NotificationQueue", "Notification", "INTERRUPT_COST_NS"]

#: Modeled cost of interrupt delivery + kernel hand-off to the blocked
#: thread (IPI + context switch on an ARM-class core). Two orders of
#: magnitude above a poll hit — the trade the paper's open issue weighs:
#: interrupts free the core while idle, polling wins on raw latency.
INTERRUPT_COST_NS = 1200.0


@dataclass
class Notification:
    """One delivered remote notification."""

    src_nid: int
    ctx_id: int
    payload: bytes
    delivered_at_ns: float


class NotificationQueue:
    """Driver-owned queue converting RMC interrupts into app messages."""

    def __init__(self, sim: Simulator, capacity: int = 64,
                 interrupt_cost_ns: float = INTERRUPT_COST_NS):
        if capacity < 1:
            raise ValueError("notification queue needs capacity >= 1")
        if interrupt_cost_ns < 0:
            raise ValueError("interrupt cost must be non-negative")
        self.sim = sim
        self.capacity = capacity
        self.interrupt_cost_ns = interrupt_cost_ns
        self._queue = Store(sim, capacity=capacity)
        self.delivered = 0
        self.dropped = 0

    def deliver(self, src_nid: int, ctx_id: int, payload: bytes) -> bool:
        """RMC-side: enqueue and raise the interrupt. Returns False if
        the queue is full (the RMC then reports an error reply, keeping
        the protocol stateless — no retry buffering in hardware)."""
        notification = Notification(src_nid=src_nid, ctx_id=ctx_id,
                                    payload=payload,
                                    delivered_at_ns=self.sim.now)
        if not self._queue.try_put(notification):
            self.dropped += 1
            return False
        self.delivered += 1
        return True

    def wait(self):
        """Application-side coroutine: block (no polling!) until a
        notification arrives; charged the interrupt delivery cost."""
        notification = yield self._queue.get()
        yield self.interrupt_cost_ns
        return notification

    def __len__(self) -> int:
        return len(self._queue)
