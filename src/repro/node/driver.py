"""The RMC device driver (OS model).

"The role of the operating system on an soNUMA node is to establish the
global virtual address spaces. This includes the management of the
context namespace, virtual memory, QP registration, etc. The RMC device
driver manages the RMC itself, responds to application requests, and
interacts with the virtual memory subsystem to allocate and pin pages in
physical memory." (§5.1)

Security model: "access control is granted on a per ctx_id basis. To
join a global address space <ctx_id>, a process first opens the device
/dev/rmc_contexts/<ctx_id>, which requires the user to have appropriate
permissions." We model the permission check with an explicit ACL.

The driver is also the failure-notification sink: "the RMC notifies the
driver of failures within the soNUMA fabric, including the loss of links
and nodes. Such transitions typically require a reset of the RMC's
state."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rmc.context import ContextEntry
from ..rmc.queues import CompletionQueue, QueuePair, WorkQueue
from ..vm.address import CACHE_LINE_SIZE
from ..vm.address_space import AddressSpace

__all__ = ["RMCDriver", "FabricFailure", "ContextPermissionError"]


class ContextPermissionError(PermissionError):
    """Process lacks permission to open /dev/rmc_contexts/<ctx_id>."""


@dataclass
class FabricFailure:
    """One observed delivery failure (lost link or node)."""

    time_ns: float
    dst_nid: int
    description: str


class RMCDriver:
    """Kernel-side management of one node's RMC."""

    #: Default QP depth (WQ and CQ are "bounded buffers of the same size").
    DEFAULT_QP_SIZE = 64

    def __init__(self, node):
        self.node = node
        self._acl: Optional[set] = None   # None => allow-all (single domain)
        self._next_asid = 1
        self._next_qp_id = 1
        self.contexts: Dict[int, ContextEntry] = {}
        self.failures: List[FabricFailure] = []
        #: When True, a fabric failure resets the RMC automatically.
        self.auto_reset_on_failure = False
        node.ni.on_delivery_failure = self._on_delivery_failure

    # -- access control -----------------------------------------------------

    def restrict_contexts(self, allowed_ctx_ids) -> None:
        """Install an ACL; only listed contexts may be opened."""
        self._acl = set(allowed_ctx_ids)

    def _check_permission(self, ctx_id: int) -> None:
        if self._acl is not None and ctx_id not in self._acl:
            raise ContextPermissionError(
                f"opening /dev/rmc_contexts/{ctx_id} denied")

    # -- context + QP management (ioctl surface, §5.1) -----------------------

    def open_context(self, ctx_id: int, segment_size: int) -> ContextEntry:
        """Join global address space ``ctx_id`` with a pinned segment.

        Creates the process address space, allocates and pins the context
        segment, and installs the CT entry so the RRPP can serve incoming
        requests against it.
        """
        self._check_permission(ctx_id)
        if ctx_id in self.contexts:
            raise ValueError(f"ctx_id {ctx_id} already open on this node")
        space = AddressSpace(self._next_asid, self.node.frames)
        self._next_asid += 1
        segment = space.register_segment(ctx_id, segment_size)
        entry = ContextEntry(ctx_id=ctx_id, address_space=space,
                             segment=segment)
        self.node.rmc.install_context(entry)
        self.contexts[ctx_id] = entry
        return entry

    def create_qp(self, ctx_id: int,
                  size: int = DEFAULT_QP_SIZE) -> QueuePair:
        """Allocate WQ/CQ rings in the context's address space and
        register the pair with the RMC's polling schedule."""
        entry = self.contexts.get(ctx_id)
        if entry is None:
            raise ValueError(f"context {ctx_id} not open (call open_context)")
        space = entry.address_space
        wq_base = space.allocate(size * CACHE_LINE_SIZE, pinned=True)
        cq_base = space.allocate(size * CACHE_LINE_SIZE, pinned=True)
        qp = QueuePair(qp_id=self._next_qp_id, ctx_id=ctx_id,
                       asid=space.asid,
                       wq=WorkQueue(size, wq_base),
                       cq=CompletionQueue(size, cq_base))
        self._next_qp_id += 1
        self.node.rmc.register_qp(qp)
        return qp

    def alloc_buffer(self, ctx_id: int, size: int) -> int:
        """Allocate a pinned local buffer usable as a remote-op source or
        destination (§4.1 "local buffers")."""
        entry = self.contexts.get(ctx_id)
        if entry is None:
            raise ValueError(f"context {ctx_id} not open")
        return entry.address_space.allocate(size, pinned=True)

    # -- failure handling ----------------------------------------------------

    def _on_delivery_failure(self, packet) -> None:
        failure = FabricFailure(
            time_ns=self.node.sim.now,
            dst_nid=packet.dst_nid,
            description=f"undeliverable {type(packet).__name__} "
                        f"to node {packet.dst_nid}")
        self.failures.append(failure)
        if self.auto_reset_on_failure:
            self.node.rmc.reset()

    def reset_rmc(self) -> int:
        """Explicit RMC reset (returns number of aborted transactions)."""
        return self.node.rmc.reset()

    # -- notifications (§8 extension) ----------------------------------------

    def enable_notifications(self, capacity: int = 64,
                             interrupt_cost_ns: Optional[float] = None):
        """Register a notification queue so remote RNOTIFY commands are
        accepted; returns the queue applications wait on."""
        from .notifications import INTERRUPT_COST_NS, NotificationQueue

        queue = NotificationQueue(
            self.node.sim, capacity=capacity,
            interrupt_cost_ns=(INTERRUPT_COST_NS
                               if interrupt_cost_ns is None
                               else interrupt_cost_ns))
        self.node.rmc.notification_sink = queue.deliver
        return queue
