"""The RMC device driver (OS model).

"The role of the operating system on an soNUMA node is to establish the
global virtual address spaces. This includes the management of the
context namespace, virtual memory, QP registration, etc. The RMC device
driver manages the RMC itself, responds to application requests, and
interacts with the virtual memory subsystem to allocate and pin pages in
physical memory." (§5.1)

Security model: "access control is granted on a per ctx_id basis. To
join a global address space <ctx_id>, a process first opens the device
/dev/rmc_contexts/<ctx_id>, which requires the user to have appropriate
permissions." We model the permission check with an explicit ACL.

The driver is also the failure-notification sink: "the RMC notifies the
driver of failures within the soNUMA fabric, including the loss of links
and nodes. Such transitions typically require a reset of the RMC's
state."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..protocol import Opcode, RequestPacket
from ..rmc.context import ContextEntry
from ..rmc.queues import CompletionQueue, QueuePair, WorkQueue
from ..rmc.rmc import PING_TID
from ..vm.address import CACHE_LINE_SIZE
from ..vm.address_space import AddressSpace

__all__ = ["RMCDriver", "FabricFailure", "ContextPermissionError"]


class ContextPermissionError(PermissionError):
    """Process lacks permission to open /dev/rmc_contexts/<ctx_id>."""


@dataclass
class FabricFailure:
    """One observed delivery failure (lost link or node)."""

    time_ns: float
    dst_nid: int
    description: str


class RMCDriver:
    """Kernel-side management of one node's RMC."""

    #: Default QP depth (WQ and CQ are "bounded buffers of the same size").
    DEFAULT_QP_SIZE = 64

    def __init__(self, node):
        self.node = node
        self._acl: Optional[set] = None   # None => allow-all (single domain)
        self._next_asid = 1
        self._next_qp_id = 1
        self.contexts: Dict[int, ContextEntry] = {}
        self.failures: List[FabricFailure] = []
        #: When True, a fabric failure resets the RMC automatically.
        self.auto_reset_on_failure = False
        node.ni.on_delivery_failure = self._on_delivery_failure
        node.rmc.failure_sink = self._on_transaction_timeout
        # -- heartbeat failure detector state --------------------------------
        self.suspects: Set[int] = set()
        #: ``fn(peer_nid)`` callbacks fired on lease expiry / pong return.
        self.on_node_failure: Optional[Callable[[int], None]] = None
        self.on_node_recovery: Optional[Callable[[int], None]] = None
        self._hb_last_pong: Dict[int, float] = {}
        self._hb_running = False
        # Generation token: each enable starts a new loop generation so a
        # disable immediately followed by a re-enable (node restart) can
        # never leave two heartbeat loops running.
        self._hb_generation = 0
        #: Detector transition counters (availability telemetry).
        self.failure_transitions = 0
        self.recovery_transitions = 0

    # -- access control -----------------------------------------------------

    def restrict_contexts(self, allowed_ctx_ids) -> None:
        """Install an ACL; only listed contexts may be opened."""
        self._acl = set(allowed_ctx_ids)

    def _check_permission(self, ctx_id: int) -> None:
        if self._acl is not None and ctx_id not in self._acl:
            raise ContextPermissionError(
                f"opening /dev/rmc_contexts/{ctx_id} denied")

    # -- context + QP management (ioctl surface, §5.1) -----------------------

    def open_context(self, ctx_id: int, segment_size: int) -> ContextEntry:
        """Join global address space ``ctx_id`` with a pinned segment.

        Creates the process address space, allocates and pins the context
        segment, and installs the CT entry so the RRPP can serve incoming
        requests against it.
        """
        self._check_permission(ctx_id)
        if ctx_id in self.contexts:
            raise ValueError(f"ctx_id {ctx_id} already open on this node")
        space = AddressSpace(self._next_asid, self.node.frames)
        self._next_asid += 1
        segment = space.register_segment(ctx_id, segment_size)
        entry = ContextEntry(ctx_id=ctx_id, address_space=space,
                             segment=segment)
        self.node.rmc.install_context(entry)
        self.contexts[ctx_id] = entry
        return entry

    def create_qp(self, ctx_id: int,
                  size: int = DEFAULT_QP_SIZE) -> QueuePair:
        """Allocate WQ/CQ rings in the context's address space and
        register the pair with the RMC's polling schedule."""
        entry = self.contexts.get(ctx_id)
        if entry is None:
            raise ValueError(f"context {ctx_id} not open (call open_context)")
        space = entry.address_space
        wq_base = space.allocate(size * CACHE_LINE_SIZE, pinned=True)
        cq_base = space.allocate(size * CACHE_LINE_SIZE, pinned=True)
        qp = QueuePair(qp_id=self._next_qp_id, ctx_id=ctx_id,
                       asid=space.asid,
                       wq=WorkQueue(size, wq_base),
                       cq=CompletionQueue(size, cq_base))
        self._next_qp_id += 1
        self.node.rmc.register_qp(qp)
        return qp

    def alloc_buffer(self, ctx_id: int, size: int) -> int:
        """Allocate a pinned local buffer usable as a remote-op source or
        destination (§4.1 "local buffers")."""
        entry = self.contexts.get(ctx_id)
        if entry is None:
            raise ValueError(f"context {ctx_id} not open")
        return entry.address_space.allocate(size, pinned=True)

    # -- failure handling ----------------------------------------------------

    def _on_delivery_failure(self, packet) -> None:
        failure = FabricFailure(
            time_ns=self.node.sim.now,
            dst_nid=packet.dst_nid,
            description=f"undeliverable {type(packet).__name__} "
                        f"to node {packet.dst_nid}")
        self.failures.append(failure)
        if self.auto_reset_on_failure:
            self.node.rmc.reset()

    def _on_transaction_timeout(self, itt_entry) -> None:
        """RMC watchdog exhausted a transaction's retry budget."""
        failure = FabricFailure(
            time_ns=self.node.sim.now,
            dst_nid=itt_entry.wq_entry.dst_nid if itt_entry.wq_entry else -1,
            description=f"transaction tid {itt_entry.tid} timed out after "
                        f"{itt_entry.attempt} retransmission(s)")
        self.failures.append(failure)
        if self.auto_reset_on_failure:
            self.node.rmc.reset()

    def reset_rmc(self) -> int:
        """Explicit RMC reset (returns number of aborted transactions)."""
        return self.node.rmc.reset()

    # -- heartbeat failure detector ------------------------------------------

    def enable_failure_detector(self, peers,
                                interval_ns: float = 20_000.0,
                                lease_ns: Optional[float] = None) -> None:
        """Probe ``peers`` with RPING at ``interval_ns``; a peer whose
        pong lease (default 3 intervals) expires is declared suspect and
        ``on_node_failure`` fires; a pong from a suspect fires
        ``on_node_recovery``. Heartbeat sleeps are daemon events, so an
        idle detector never keeps the simulation alive.
        """
        if self._hb_running:
            raise RuntimeError("failure detector already running")
        if lease_ns is None:
            lease_ns = 3 * interval_ns
        self._hb_running = True
        self._hb_generation += 1
        self.node.rmc.ping_sink = self._on_pong
        sim = self.node.sim
        now = sim.now
        for peer in peers:
            self._hb_last_pong.setdefault(peer, now)
        sim.process(self._heartbeat_loop(list(peers), interval_ns, lease_ns,
                                         self._hb_generation),
                    name=f"driver{self.node.node_id}.heartbeat")

    def disable_failure_detector(self) -> None:
        self._hb_running = False

    def reset_failure_detector(self) -> None:
        """Forget all detector state (node restart).

        Without this, re-enabling after downtime would compare fresh
        leases against pre-crash pong timestamps and instantly suspect
        every peer.
        """
        self._hb_running = False
        self._hb_last_pong.clear()
        self.suspects.clear()

    def is_suspect(self, peer: int) -> bool:
        return peer in self.suspects

    def _heartbeat_loop(self, peers, interval_ns: float, lease_ns: float,
                        generation: int):
        sim = self.node.sim
        ni = self.node.ni
        while self._hb_running and self._hb_generation == generation:
            for peer in peers:
                ni.inject(RequestPacket(
                    dst_nid=peer, src_nid=self.node.node_id,
                    op=Opcode.RPING, ctx_id=0, offset=0,
                    tid=PING_TID, length=1))
                last = self._hb_last_pong.get(peer)
                if last is None:
                    # Detector state was reset underneath us: restart the
                    # peer's lease from now.
                    self._hb_last_pong[peer] = last = sim.now
                if sim.now - last > lease_ns and peer not in self.suspects:
                    self.suspects.add(peer)
                    self.failure_transitions += 1
                    self.failures.append(FabricFailure(
                        time_ns=sim.now, dst_nid=peer,
                        description=f"node {peer} heartbeat lease expired"))
                    if self.on_node_failure is not None:
                        self.on_node_failure(peer)
            yield sim.timeout(interval_ns, daemon=True)

    def _on_pong(self, peer: int) -> None:
        self._hb_last_pong[peer] = self.node.sim.now
        if peer in self.suspects:
            self.suspects.discard(peer)
            self.recovery_transitions += 1
            if self.on_node_recovery is not None:
                self.on_node_recovery(peer)

    # -- notifications (§8 extension) ----------------------------------------

    def enable_notifications(self, capacity: int = 64,
                             interrupt_cost_ns: Optional[float] = None):
        """Register a notification queue so remote RNOTIFY commands are
        accepted; returns the queue applications wait on."""
        from .notifications import INTERRUPT_COST_NS, NotificationQueue

        queue = NotificationQueue(
            self.node.sim, capacity=capacity,
            interrupt_cost_ns=(INTERRUPT_COST_NS
                               if interrupt_cost_ns is None
                               else interrupt_cost_ns))
        self.node.rmc.notification_sink = queue.deliver
        return queue
