"""Node assembly: cores + caches + RMC + NI over one coherence domain.

A node is the unit of the soNUMA scale-out model (paper Fig. 2): an SoC
with application cores, a shared cache hierarchy, one RMC with its own
L1, and an on-die NI attached to the fabric. One OS instance (the
device-driver model) runs per node — "soNUMA exposes the abstraction of
global virtual address spaces on top of multiple OS instances, one per
coherence domain" (§9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..memory.hierarchy import MemoryConfig, MemorySystem
from ..rmc.rmc import RMC, RMCConfig
from ..sim import Simulator
from ..vm.physical import FrameAllocator, PhysicalMemory
from .core import Core, CoreConfig
from .driver import RMCDriver

__all__ = ["NodeConfig", "Node"]


@dataclass(frozen=True)
class NodeConfig:
    """Per-node configuration.

    ``memory_bytes`` defaults to 32 MB rather than the paper's 4 GB: the
    physical memory is *really allocated* (functional correctness), and
    the evaluation workloads fit comfortably. All timing parameters are
    independent of capacity.
    """

    memory_bytes: int = 32 * 1024 * 1024
    num_cores: int = 1
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    rmc: RMCConfig = field(default_factory=RMCConfig)
    core: CoreConfig = field(default_factory=CoreConfig)

    def __post_init__(self):
        if self.num_cores < 1:
            raise ValueError("a node needs at least one core")


class Node:
    """One soNUMA node: memory, cores, RMC, NI, driver."""

    def __init__(self, sim: Simulator, node_id: int, fabric,
                 config: Optional[NodeConfig] = None):
        self.sim = sim
        self.node_id = node_id
        self.config = config or NodeConfig()

        self.phys = PhysicalMemory(self.config.memory_bytes)
        self.frames = FrameAllocator(self.phys)
        self.memsys = MemorySystem(sim, self.phys, self.config.memory)

        self.ni = fabric.attach(node_id)

        rmc_port = self.memsys.register_agent("rmc")
        ct_base_paddr = self.frames.alloc_frame()  # the in-memory CT
        self.rmc = RMC(sim, node_id, self.ni, rmc_port, ct_base_paddr,
                       self.config.rmc)

        self.cores: List[Core] = []
        for core_id in range(self.config.num_cores):
            port = self.memsys.register_agent(f"core{core_id}")
            self.cores.append(Core(sim, core_id, port, self.config.core))

        self.driver = RMCDriver(self)

    @property
    def core(self) -> Core:
        """The first core (single-core nodes are the common case)."""
        return self.cores[0]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.node_id}: {len(self.cores)} cores>"
