"""Node model: cores, device driver, node assembly."""

from .core import Core, CoreConfig
from .driver import ContextPermissionError, FabricFailure, RMCDriver
from .node import Node, NodeConfig
from .notifications import INTERRUPT_COST_NS, Notification, NotificationQueue

__all__ = [
    "ContextPermissionError",
    "Core",
    "CoreConfig",
    "FabricFailure",
    "INTERRUPT_COST_NS",
    "Node",
    "NodeConfig",
    "Notification",
    "NotificationQueue",
    "RMCDriver",
]
