"""Application core model.

The paper's evaluation uses ARM Cortex-A15-like cores (Table 1) running
real software under Flexus. Here, application code runs as simulator
coroutines on a :class:`Core`, which charges time for:

* local memory accesses (through the core's L1 port into the node's
  coherent hierarchy — the same hierarchy the RMC lives in), and
* fixed software overheads for the access-library entry points. The
  paper measures ~10 M remote operations per second per core, i.e.
  ~100 ns of software cost per asynchronous request ("the software
  API's overhead on each request", §7.5); ``issue_overhead_ns`` is that
  cost, and the Table 2 IOPS bench reproduces the 10 M figure from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..memory.hierarchy import AgentPort
from ..sim import Process, Simulator
from ..vm.address import CACHE_LINE_SIZE
from ..vm.address_space import AddressSpace

__all__ = ["CoreConfig", "Core"]


@dataclass(frozen=True)
class CoreConfig:
    """Core timing parameters."""

    #: Software cost to compose and post one WQ entry (inline API path).
    issue_overhead_ns: float = 85.0
    #: Software cost of one CQ polling loop iteration.
    poll_overhead_ns: float = 10.0
    #: Cost of invoking a completion callback.
    callback_overhead_ns: float = 15.0

    def __post_init__(self):
        if min(self.issue_overhead_ns, self.poll_overhead_ns,
               self.callback_overhead_ns) < 0:
            raise ValueError("core overheads must be non-negative")


class Core:
    """One application core: runs app coroutines, owns an L1 port."""

    def __init__(self, sim: Simulator, core_id: int, port: AgentPort,
                 config: CoreConfig = CoreConfig()):
        self.sim = sim
        self.core_id = core_id
        self.port = port
        self.config = config
        self.instructions_retired = 0  # coarse op counter for reporting

    def run(self, generator: Generator, name: str = "") -> Process:
        """Launch an application thread on this core."""
        return self.sim.process(generator,
                                name=name or f"core{self.core_id}.thread")

    def compute(self, ns: float):
        """Pure computation for ``ns`` nanoseconds."""
        self.instructions_retired += 1
        return self.sim.timeout(ns)

    # -- local memory operations (timed + functional) ----------------------

    def mem_read(self, space: AddressSpace, vaddr: int, length: int):
        """Timed coroutine: read ``length`` bytes of local virtual memory.

        Core-side translation is charged as free (core TLBs hit in steady
        state and are not the subject of the paper's evaluation).
        """
        data = bytearray()
        position = vaddr
        remaining = length
        while remaining > 0:
            line_room = CACHE_LINE_SIZE - (position % CACHE_LINE_SIZE)
            span = min(remaining, line_room)
            paddr = space.translate(position)
            yield from self.port.access(paddr, size=span)
            data += self.port.read_bytes(paddr, span)
            position += span
            remaining -= span
        return bytes(data)

    def mem_write(self, space: AddressSpace, vaddr: int, data: bytes):
        """Timed coroutine: write local virtual memory."""
        position = vaddr
        offset = 0
        while offset < len(data):
            line_room = CACHE_LINE_SIZE - (position % CACHE_LINE_SIZE)
            span = min(len(data) - offset, line_room)
            paddr = space.translate(position)
            yield from self.port.access(paddr, is_write=True, size=span)
            self.port.write_bytes(paddr, data[offset:offset + span])
            position += span
            offset += span
        return len(data)

    def touch(self, space: AddressSpace, vaddr: int, is_write: bool = False,
              size: int = CACHE_LINE_SIZE):
        """Timed access without moving data (queue polling etc.)."""
        paddr = space.translate(vaddr)
        level = yield from self.port.access(paddr, is_write=is_write,
                                            size=size)
        return level
