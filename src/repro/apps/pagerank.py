"""PageRank, three ways (the paper's §7.5 application study).

All three implementations follow the Bulk Synchronous Processing model:
"every node computes its own portion of the dataset (range of vertices)
and then synchronizes with other participants, before proceeding with
the next iteration (so-called superstep)."

* ``SHM(pthreads)`` — :func:`run_shm`: threads on one cache-coherent
  multiprocessor (the :mod:`repro.baselines.shm` node), shared vertex
  array, local barrier.
* ``soNUMA(bulk)`` — :func:`run_sonuma_bulk`: after each barrier, every
  node pulls each peer's whole partition with one multi-line
  ``rmc_read_async`` per peer (Pregel-style shuffle), then computes on
  local mirrors.
* ``soNUMA(fine-grain)`` — :func:`run_sonuma_fine`: the Fig. 4 code —
  one asynchronous remote read per cross-partition edge, with the
  accumulation done in completion callbacks.

Vertex records are real bytes in context segments (64 B per vertex:
two rank epochs + out-degree), so remote reads move actual data through
the RMC and the final ranks are checked against the untimed reference.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional

from ..baselines.shm import build_shm_node
from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.barrier import Barrier
from ..runtime.qp_api import RMCSession
from ..sim import (
    PartitionPlan,
    Simulator,
    default_transport,
    plan_from_spec,
    run_partitioned,
)
from ..telemetry import merge_snapshots, snapshot
from .graph import Graph, Partition, partition_random

__all__ = ["PageRankTiming", "PageRankResult", "run_shm",
           "run_sonuma_bulk", "run_sonuma_fine", "VERTEX_BYTES"]

#: One cache line per vertex: rank[0] f64, rank[1] f64, out_degree u64.
VERTEX_BYTES = 64

_CTX = 1
_DAMPING = 0.85


def _pack_vertex(rank0: float, rank1: float, out_degree: int) -> bytes:
    body = struct.pack("<ddQ", rank0, rank1, out_degree)
    return body + bytes(VERTEX_BYTES - len(body))


def _unpack_vertex(data: bytes):
    rank0, rank1, out_degree = struct.unpack_from("<ddQ", data)
    return rank0, rank1, out_degree


@dataclass(frozen=True)
class PageRankTiming:
    """Computation costs charged by the timed implementations."""

    edge_compute_ns: float = 2.0     # multiply-accumulate + loop control
    vertex_compute_ns: float = 3.0   # init + final scale per vertex
    shm_barrier_ns: float = 150.0    # in-node sense-reversing barrier cost


@dataclass
class PageRankResult:
    """Outcome of one timed PageRank run."""

    variant: str
    parallelism: int
    supersteps: int
    elapsed_ns: float
    ranks: List[float]
    remote_reads: int = 0
    #: End-of-run cluster telemetry (soNUMA variants only); for
    #: partitioned runs this is the merged snapshot across workers.
    telemetry: Optional[object] = None

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0


class _LocalBarrier:
    """Sense-reversing barrier for threads of one coherent node."""

    def __init__(self, sim: Simulator, parties: int, cost_ns: float):
        self.sim = sim
        self.parties = parties
        self.cost_ns = cost_ns
        self._count = 0
        self._gate = sim.event()

    def wait(self):
        yield self.cost_ns
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            gate, self._gate = self._gate, self.sim.event()
            gate.succeed()
        else:
            yield self._gate


# ---------------------------------------------------------------------------
# SHM(pthreads)
# ---------------------------------------------------------------------------

def run_shm(graph: Graph, num_threads: int, supersteps: int = 1,
            timing: PageRankTiming = PageRankTiming(),
            seed: int = 7,
            llc_per_core_bytes: Optional[int] = None) -> PageRankResult:
    """PageRank on a cache-coherent multiprocessor (the SHM baseline).

    ``llc_per_core_bytes`` overrides the LLC provisioning (the Fig. 9
    harness uses it to keep the aggregate LLC equal across comparisons,
    as the paper does).
    """
    if num_threads < 1:
        raise ValueError("need at least one thread")
    kwargs = {}
    if llc_per_core_bytes is not None:
        kwargs["llc_per_core_bytes"] = llc_per_core_bytes
    sim, node = build_shm_node(
        num_cores=num_threads,
        memory_bytes=max(64, 2 * graph.num_vertices * VERTEX_BYTES
                         // (1 << 20) + 64) * (1 << 20),
        **kwargs)
    entry = node.driver.open_context(
        _CTX, graph.num_vertices * VERTEX_BYTES + VERTEX_BYTES)
    space = entry.address_space
    base = entry.segment.base_vaddr

    # Functional init: uniform starting ranks in epoch 0.
    initial = 1.0 / graph.num_vertices
    for v in range(graph.num_vertices):
        paddr = space.translate(base + v * VERTEX_BYTES)
        node.phys.write(paddr, _pack_vertex(initial, 0.0,
                                            graph.out_degree[v]))

    partition = partition_random(graph, num_threads, seed=seed)
    barrier = _LocalBarrier(sim, num_threads, timing.shm_barrier_ns)

    def worker(core, mine: List[int]):
        for step in range(supersteps):
            read_at = step % 2
            for v in mine:
                yield core.compute(timing.vertex_compute_ns)
                acc = (1.0 - _DAMPING) / graph.num_vertices
                for u in graph.in_neighbors[v]:
                    data = yield from core.mem_read(
                        space, base + u * VERTEX_BYTES, 24)
                    ranks = _unpack_vertex(data)
                    acc += _DAMPING * ranks[read_at] / ranks[2]
                    yield core.compute(timing.edge_compute_ns)
                # Write the new rank into the other epoch slot.
                packed = struct.pack("<d", acc)
                yield from core.mem_write(
                    space, base + v * VERTEX_BYTES + 8 * ((step + 1) % 2),
                    packed)
            yield from barrier.wait()

    start = sim.now
    procs = [node.cores[t].run(worker(node.cores[t], partition.members[t]))
             for t in range(num_threads)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover - surfacing worker crashes
            raise proc.value
    elapsed = sim.now - start

    final_at = supersteps % 2
    ranks = []
    for v in range(graph.num_vertices):
        paddr = space.translate(base + v * VERTEX_BYTES)
        values = _unpack_vertex(node.phys.read(paddr, 24))
        ranks.append(values[final_at])
    return PageRankResult(variant="shm", parallelism=num_threads,
                          supersteps=supersteps, elapsed_ns=elapsed,
                          ranks=ranks)


# ---------------------------------------------------------------------------
# soNUMA common scaffolding
# ---------------------------------------------------------------------------

class _SoNUMASetup:
    """Cluster + partition + initialized vertex records in segments.

    With a ``partition_plan``/``rank`` this builds one *worker's* slice:
    only the owned nodes are instantiated (sessions, barriers, vertex
    records), while the graph partition itself — vertex ownership — is
    replicated deterministically from the seed on every rank.
    """

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig], seed: int,
                 partition_plan: Optional[PartitionPlan] = None,
                 rank: int = 0):
        self.graph = graph
        self.partition = partition_random(graph, num_nodes, seed=seed)
        config = cluster_config or ClusterConfig(num_nodes=num_nodes)
        self.cluster = Cluster(config=config, partition=partition_plan,
                               rank=rank)
        self.owned = (partition_plan.nodes_of(rank)
                      if partition_plan is not None
                      else list(range(num_nodes)))
        max_part = max(len(m) for m in self.partition.members)
        # Partition records + communication state (barrier lines live at
        # the top of the segment; see CommLayout).
        segment = max_part * VERTEX_BYTES + (1 << 20)
        self.gctx = self.cluster.create_global_context(_CTX, segment)
        self.sessions = {
            n: RMCSession(self.cluster.nodes[n].core, self.gctx.qp(n),
                          self.gctx.entry(n))
            for n in self.owned
        }
        self.barriers = {
            n: Barrier(self.sessions[n], n, list(range(num_nodes)))
            for n in self.owned
        }
        initial = 1.0 / graph.num_vertices
        for n in self.owned:
            for li, v in enumerate(self.partition.members[n]):
                self.cluster.poke_segment(
                    n, _CTX, li * VERTEX_BYTES,
                    _pack_vertex(initial, 0.0, graph.out_degree[v]))

    def record_offset(self, vertex: int) -> int:
        return self.partition.local_index[vertex] * VERTEX_BYTES

    def collect_ranks(self, final_epoch: int) -> List[float]:
        """Final ranks for *owned* vertices (0.0 elsewhere): partitioned
        workers' lists sum element-wise into the full result."""
        ranks = [0.0] * self.graph.num_vertices
        for n in self.owned:
            members = self.partition.members[n]
            for li, v in enumerate(members):
                raw = self.cluster.peek_segment(n, _CTX, li * VERTEX_BYTES,
                                                24)
                ranks[v] = _unpack_vertex(raw)[final_epoch]
        return ranks


# ---------------------------------------------------------------------------
# soNUMA(bulk)
# ---------------------------------------------------------------------------

def _bulk_worker(setup: _SoNUMASetup, node_id: int, num_nodes: int,
                 supersteps: int, timing: PageRankTiming,
                 remote_reads: List[int]):
    graph = setup.graph
    graph_part = setup.partition
    session = setup.sessions[node_id]
    barrier = setup.barriers[node_id]
    core = session.core
    space = session.space
    seg_base = session.ctx.segment.base_vaddr
    mine = graph_part.members[node_id]
    peers = [p for p in range(num_nodes) if p != node_id]
    mirrors = {
        p: session.alloc_buffer(
            max(len(graph_part.members[p]), 1) * VERTEX_BYTES)
        for p in peers
    }
    for step in range(supersteps):
        yield from barrier.wait()
        # Shuffle: one multi-line read per peer, all concurrent
        # ("limited only by the bisection bandwidth", §7.5).
        for p in peers:
            nbytes = len(graph_part.members[p]) * VERTEX_BYTES
            if nbytes == 0:
                continue
            yield from session.wait_for_slot()
            yield from session.read_async(p, 0, mirrors[p], nbytes)
            remote_reads[0] += 1
        yield from session.drain_cq()

        read_at = step % 2
        for v in mine:
            yield core.compute(timing.vertex_compute_ns)
            acc = (1.0 - _DAMPING) / graph.num_vertices
            for u in graph.in_neighbors[v]:
                owner = graph_part.owner[u]
                if owner == node_id:
                    vaddr = seg_base + setup.record_offset(u)
                else:
                    vaddr = mirrors[owner] + setup.record_offset(u)
                data = yield from core.mem_read(space, vaddr, 24)
                values = _unpack_vertex(data)
                acc += _DAMPING * values[read_at] / values[2]
                yield core.compute(timing.edge_compute_ns)
            packed = struct.pack("<d", acc)
            yield from core.mem_write(
                space,
                seg_base + setup.record_offset(v) + 8 * ((step + 1) % 2),
                packed)
    yield from barrier.wait()


def _paired_config(cluster_config: Optional[ClusterConfig],
                   num_nodes: int) -> ClusterConfig:
    """The caller's config upgraded to paired flow control (required by
    the partition cut; see fabric.partition)."""
    config = cluster_config or ClusterConfig(num_nodes=num_nodes)
    if config.fabric.flow_control != "paired":
        config = _dc_replace(
            config, fabric=_dc_replace(config.fabric,
                                       flow_control="paired"))
    return config


def _run_partitioned_pagerank(variant: str, worker_fn, graph: Graph,
                              num_nodes: int, supersteps: int,
                              timing: PageRankTiming,
                              cluster_config: Optional[ClusterConfig],
                              seed: int, plan, transport: Optional[str],
                              num_parts: Optional[int] = None
                              ) -> PageRankResult:
    config = _paired_config(cluster_config, num_nodes)

    def build(rank: int, build_plan: PartitionPlan):
        setup = _SoNUMASetup(graph, num_nodes, config, seed,
                             partition_plan=build_plan, rank=rank)
        sim = setup.cluster.sim
        remote_reads = [0]
        procs = [
            sim.process(worker_fn(setup, n, num_nodes, supersteps, timing,
                                  remote_reads),
                        name=f"pagerank.{variant}{n}")
            for n in setup.owned
        ]

        def finalize():
            for proc in procs:
                if not proc.triggered:
                    raise RuntimeError(
                        f"{proc.name} did not finish (deadlock?)")
                if not proc.ok:
                    raise proc.value
            return {"ranks": setup.collect_ranks(supersteps % 2),
                    "remote_reads": remote_reads[0],
                    "snapshot": snapshot(setup.cluster)}

        return sim, setup.cluster.fabric, finalize

    if isinstance(plan, str):
        plan = plan_from_spec(plan, build, num_nodes,
                              num_parts or num_nodes)
    if transport is None:
        transport = default_transport(plan.num_parts)
    run = run_partitioned(build, plan, transport=transport)
    parts = [run.results[r] for r in sorted(run.results)]
    # Vertex ownership is disjoint across workers, so the per-worker
    # rank lists (0.0 for unowned vertices) sum element-wise.
    ranks = [0.0] * graph.num_vertices
    for part in parts:
        for v, value in enumerate(part["ranks"]):
            ranks[v] += value
    merged = merge_snapshots([p["snapshot"] for p in parts],
                             engine_stats=run.engine_stats())
    return PageRankResult(
        variant=f"sonuma-{variant}", parallelism=num_nodes,
        supersteps=supersteps, elapsed_ns=run.final_time, ranks=ranks,
        remote_reads=sum(p["remote_reads"] for p in parts),
        telemetry=merged)


def _resolve_plan(num_nodes: int, workers: Optional[int], partition):
    """A concrete plan, a deferred spec string ("adaptive"/"contiguous",
    resolved once the builder exists), or None for the serial path."""
    if isinstance(partition, PartitionPlan):
        return partition
    if isinstance(partition, str):
        if workers is None or workers <= 1:
            return None
        return partition
    if workers is not None and workers > 1:
        return PartitionPlan.contiguous(num_nodes, workers)
    return None


def run_sonuma_bulk(graph: Graph, num_nodes: int, supersteps: int = 1,
                    timing: PageRankTiming = PageRankTiming(),
                    cluster_config: Optional[ClusterConfig] = None,
                    seed: int = 7,
                    workers: Optional[int] = None,
                    partition=None,
                    transport: Optional[str] = None) -> PageRankResult:
    """Pregel-style PageRank: whole-partition pulls each superstep.

    ``workers > 1`` (or an explicit ``partition`` plan) runs the
    simulation on the conservative parallel engine — bit-identical
    results, one worker process per partition. ``partition`` may be a
    :class:`PartitionPlan`, ``"contiguous"``, or ``"adaptive"``
    (profiled load-aware cut); ``transport=None`` picks the fastest
    available (shm > process > inline).
    """
    plan = _resolve_plan(num_nodes, workers, partition)
    if plan is not None:
        return _run_partitioned_pagerank(
            "bulk", _bulk_worker, graph, num_nodes, supersteps, timing,
            cluster_config, seed, plan, transport, num_parts=workers)
    setup = _SoNUMASetup(graph, num_nodes, cluster_config, seed)
    sim = setup.cluster.sim
    remote_reads = [0]
    start = sim.now
    procs = [sim.process(_bulk_worker(setup, n, num_nodes, supersteps,
                                      timing, remote_reads),
                         name=f"pagerank.bulk{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    return PageRankResult(variant="sonuma-bulk", parallelism=num_nodes,
                          supersteps=supersteps, elapsed_ns=sim.now - start,
                          ranks=setup.collect_ranks(supersteps % 2),
                          remote_reads=remote_reads[0],
                          telemetry=snapshot(setup.cluster))


# ---------------------------------------------------------------------------
# soNUMA(fine-grain)
# ---------------------------------------------------------------------------

def _fine_worker(setup: _SoNUMASetup, node_id: int, num_nodes: int,
                 supersteps: int, timing: PageRankTiming,
                 remote_reads: List[int]):
    graph = setup.graph
    graph_part = setup.partition
    session = setup.sessions[node_id]
    barrier = setup.barriers[node_id]
    core = session.core
    space = session.space
    seg_base = session.ctx.segment.vaddr_of(0)
    mine = graph_part.members[node_id]
    wq_slots = session.qp.size
    # One landing line per WQ slot: the WQ index doubles as the
    # buffer slot (unique among outstanding ops), mirroring Fig. 4's
    # lbuf[slot] / async_dest_addr[slot] arrays.
    lbuf = session.alloc_buffer(wq_slots * VERTEX_BYTES)
    acc: Dict[int, float] = {}
    slot_vertex: Dict[int, int] = {}
    read_epoch = [0]

    def on_complete(cq_entry):
        """pagerank_async(): accumulate from the landed buffer."""
        slot = cq_entry.wq_index
        raw = session.buffer_peek(lbuf + slot * VERTEX_BYTES, 24)
        values = _unpack_vertex(raw)
        v = slot_vertex.pop(slot)
        acc[v] += _DAMPING * values[read_epoch[0]] / values[2]

    for step in range(supersteps):
        read_epoch[0] = step % 2
        yield from barrier.wait()
        for v in mine:
            yield core.compute(timing.vertex_compute_ns)
            acc[v] = (1.0 - _DAMPING) / graph.num_vertices
            for u in graph.in_neighbors[v]:
                owner = graph_part.owner[u]
                if owner == node_id:
                    # shared-memory path within the node
                    data = yield from core.mem_read(
                        space, seg_base + setup.record_offset(u), 24)
                    values = _unpack_vertex(data)
                    acc[v] += _DAMPING * values[read_epoch[0]] \
                        / values[2]
                    yield core.compute(timing.edge_compute_ns)
                else:
                    # flow control, then a split remote operation
                    yield from session.wait_for_slot(on_complete)
                    slot = session.qp.wq.next_free()
                    slot_vertex[slot] = v
                    yield from session.read_async(
                        owner, setup.record_offset(u),
                        lbuf + slot * VERTEX_BYTES, VERTEX_BYTES,
                        callback=on_complete)
                    remote_reads[0] += 1
        yield from session.drain_cq(on_complete)
        # Write back every owned vertex's new rank (timed).
        for v in mine:
            packed = struct.pack("<d", acc[v])
            yield from core.mem_write(
                space,
                seg_base + setup.record_offset(v)
                + 8 * ((step + 1) % 2),
                packed)
    yield from barrier.wait()


def run_sonuma_fine(graph: Graph, num_nodes: int, supersteps: int = 1,
                    timing: PageRankTiming = PageRankTiming(),
                    cluster_config: Optional[ClusterConfig] = None,
                    seed: int = 7,
                    workers: Optional[int] = None,
                    partition=None,
                    transport: Optional[str] = None) -> PageRankResult:
    """The Fig. 4 implementation: one async remote read per cut edge.

    ``workers > 1`` (or an explicit ``partition`` plan) runs the
    simulation on the conservative parallel engine — bit-identical
    results, one worker process per partition. ``partition`` and
    ``transport`` as in :func:`run_sonuma_bulk`.
    """
    plan = _resolve_plan(num_nodes, workers, partition)
    if plan is not None:
        return _run_partitioned_pagerank(
            "fine", _fine_worker, graph, num_nodes, supersteps, timing,
            cluster_config, seed, plan, transport, num_parts=workers)
    setup = _SoNUMASetup(graph, num_nodes, cluster_config, seed)
    sim = setup.cluster.sim
    remote_reads = [0]
    start = sim.now
    procs = [sim.process(_fine_worker(setup, n, num_nodes, supersteps,
                                      timing, remote_reads),
                         name=f"pagerank.fine{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    return PageRankResult(variant="sonuma-fine", parallelism=num_nodes,
                          supersteps=supersteps, elapsed_ns=sim.now - start,
                          ranks=setup.collect_ranks(supersteps % 2),
                          remote_reads=remote_reads[0],
                          telemetry=snapshot(setup.cluster))
