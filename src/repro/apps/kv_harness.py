"""Partitionable replicated/coded KV failover scenario.

The node-failure tests exercise the fault-tolerant KV stack
(:class:`~repro.apps.kvstore.ReplicatedKVServer`,
:class:`~repro.apps.kvstore.CodedKVServer`,
:class:`~repro.apps.kvstore.FailoverKVClient`) on a serial cluster.
This module packages the same scenario as a *harness* that also runs on
the conservative parallel engine: the cluster is split across worker
processes with :func:`~repro.sim.parallel.run_partitioned`, the client
and the primary typically land on different ranks, and every GET/PUT
crosses the partition cut as one-sided fabric traffic.

Roles are fixed by node id — node 0 is the GET client, node 1 the
primary, nodes 2.. the backups (full replicas in ``replicated`` mode,
one coded shard each in ``coded`` mode). The timeline is deterministic
and replayed identically on every rank:

* ``t = 0``: the primary inserts ``num_keys`` keys, each acked only
  after full replication (or after every shard write);
* ``crash_primary_at_ns`` (optional): the replicated fault controller
  kills the primary on whichever rank owns it; the scheduled membership
  service evicts it one lease later on *every* rank;
* ``gets_start_ns``..``gets_end_ns``: the client cycles GETs through
  the key set, failing over (or falling back to degraded shard reads)
  when the primary dies, then reads back every key once.

Because faults, membership transitions, and all data-path traffic are
partition-invariant, the merged ``outcome`` dict is bit-identical for
any worker count and any transport — that is what the parity tests
assert.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from ..cluster.cluster import Cluster, ClusterConfig
from ..resilience.coding import XORCode
from ..runtime.qp_api import RemoteOpFailed, RMCSession
from ..sim import (Simulator, default_transport, plan_from_spec,
                   run_partitioned)
from ..vm.address import PAGE_SIZE
from .bsp import _paired_cluster_config
from .kvstore import CodedKVServer, FailoverKVClient, ReplicatedKVServer

__all__ = ["run_kv_failover", "KV_CLIENT", "KV_PRIMARY"]

_KV_CTX = 2

#: Fixed role assignment: node 0 issues GETs, node 1 owns the table.
KV_CLIENT = 0
KV_PRIMARY = 1


def _value_of(key: int) -> bytes:
    return bytes([key % 251]) * 8


def run_kv_failover(num_nodes: int = 3,
                    workers: int = 1,
                    transport: Optional[str] = None,
                    partition="contiguous",
                    mode: str = "replicated",
                    num_keys: int = 12,
                    num_buckets: int = 64,
                    hb_interval_ns: float = 2_000.0,
                    lease_ns: float = 6_000.0,
                    fault_seed: int = 0,
                    crash_primary_at_ns: Optional[float] = None,
                    restart_after_ns: Optional[float] = None,
                    gets_start_ns: float = 20_000.0,
                    gets_end_ns: float = 80_000.0) -> dict:
    """Run the failover scenario; returns ``{"outcome", "perf"}``.

    ``outcome`` holds only deterministic, partition-invariant facts
    (final key->value map, availability counters, membership counters,
    ack counts, the final simulated time) and compares equal across
    worker counts and transports. ``perf`` holds the wall-clock side
    (coordinator rounds, per-rank busy/blocked seconds, transport).
    """
    if num_nodes < 3:
        raise ValueError("the failover scenario needs >= 3 nodes "
                         "(client, primary, at least one backup)")
    backups = list(range(2, num_nodes))
    if mode == "coded":
        if len(backups) < 2:
            raise ValueError("coded mode needs >= 2 shard holders "
                             "(num_nodes >= 4)")
        code = XORCode(len(backups) - 1)
    elif mode == "replicated":
        code = None
    else:
        raise ValueError(f"unknown mode {mode!r}")
    schedule: Sequence[Tuple] = ()
    if crash_primary_at_ns is not None:
        schedule = ((KV_PRIMARY, crash_primary_at_ns, restart_after_ns),)
    keys = {k: _value_of(k) for k in range(1, num_keys + 1)}
    config = _paired_cluster_config(ClusterConfig(num_nodes=num_nodes),
                                    num_nodes)

    def build(rank, plan):
        sim = Simulator()
        cluster = Cluster(sim=sim, config=config, partition=plan,
                          rank=rank)
        membership = cluster.enable_membership(interval_ns=hb_interval_ns,
                                               lease_ns=lease_ns)
        controller = cluster.fault_controller(seed=fault_seed)
        for victim, at_ns, restart in schedule:
            controller.schedule_crash(victim, at_ns=at_ns,
                                      restart_after_ns=restart)
        gctx = cluster.create_global_context(_KV_CTX, 64 * PAGE_SIZE)
        sessions = {
            node.node_id: RMCSession(node.core, gctx.qp(node.node_id),
                                     gctx.entry(node.node_id))
            for node in cluster.nodes
        }
        out = {}

        if KV_PRIMARY in sessions:
            if code is None:
                server = ReplicatedKVServer(sessions[KV_PRIMARY],
                                            backups=backups,
                                            num_buckets=num_buckets)
                put = server.put_replicated
            else:
                server = CodedKVServer(sessions[KV_PRIMARY],
                                       backups=backups, code=code,
                                       num_buckets=num_buckets)
                put = server.put_coded

            def server_proc(sim):
                for k, v in keys.items():
                    yield from put(k, v)
                out["puts_done_ns"] = sim.now
                out["puts_acked"] = server.puts_acked
                out["replica_writes"] = server.replica_writes

            sim.process(server_proc(sim), name="kv-primary")

        if KV_CLIENT in sessions:
            replicas = ([KV_PRIMARY] + backups if code is None
                        else [KV_PRIMARY])
            client = FailoverKVClient(sessions[KV_CLIENT], replicas,
                                      num_buckets=num_buckets,
                                      membership=membership,
                                      code=code,
                                      shard_nids=backups if code else ())

            def client_proc(sim):
                yield sim.timeout(gets_start_ns - sim.now)
                cycle = itertools.cycle(keys)
                reads = wrong = unavailable = 0
                while sim.now < gets_end_ns:
                    k = next(cycle)
                    try:
                        v = yield from client.get(k)
                    except RemoteOpFailed:
                        unavailable += 1
                        continue
                    reads += 1
                    if v != keys[k]:
                        wrong += 1
                final = {}
                for k in keys:
                    try:
                        final[k] = yield from client.get(k)
                    except RemoteOpFailed:
                        final[k] = None
                out["final"] = final
                out["reads"] = reads
                out["wrong"] = wrong
                out["unavailable"] = unavailable
                out["availability"] = client.availability.as_dict()
                out["active_replica"] = client.active_replica

            sim.process(client_proc(sim), name="kv-client")

        def finalize():
            out.setdefault("membership", {})
            out["membership"] = {"evictions": membership.evictions,
                                 "rejoins": membership.rejoins}
            return out

        return sim, cluster.fabric, finalize

    plan = plan_from_spec(partition, build, num_nodes,
                          min(int(workers) or 1, num_nodes))
    transport = transport or default_transport(plan.num_parts)
    run = run_partitioned(build, plan, transport=transport)

    merged = {"final_time": run.final_time, "mode": mode,
              "num_nodes": num_nodes}
    for part in run.results.values():
        for field in ("puts_done_ns", "puts_acked", "replica_writes",
                      "final", "reads", "wrong", "unavailable",
                      "availability", "active_replica"):
            if field in part:
                merged[field] = part[field]
        # Membership counters are replicated state: every rank observes
        # the identical eviction/rejoin sequence.
        merged["membership"] = part["membership"]
    if merged.get("puts_done_ns", 0.0) > gets_start_ns:
        raise RuntimeError(
            f"PUT phase ran until {merged['puts_done_ns']} ns, past "
            f"gets_start_ns={gets_start_ns}; widen the gap to keep the "
            f"scenario's phases time-ordered")
    merged["values_ok"] = merged.get("final") == keys
    return {
        "outcome": merged,
        "perf": {
            "transport": run.transport,
            "workers": plan.num_parts,
            "rounds": run.rounds,
            "wall_s": run.wall_s,
            "engine": run.engine_stats(),
        },
    }
