"""Graph structures, synthetic generation, and partitioning.

The paper evaluates PageRank "on a subset of the Twitter graph [29]
using a naive algorithm that randomly partitions the vertices into sets
of equal cardinality" (§7.5). The Twitter crawl is not redistributable;
we substitute a synthetic graph with a Zipf (power-law) degree
distribution, which preserves what the experiment depends on — the
skewed degree distribution that causes partition imbalance and a high
cut-edge fraction under random partitioning (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["Graph", "Partition", "zipf_graph", "partition_random",
           "pagerank_reference"]


@dataclass
class Graph:
    """A directed graph stored as in-neighbor lists.

    PageRank pulls rank from in-neighbors, so adjacency is stored as
    ``in_neighbors[v]`` (who points at v); ``out_degree[u]`` is the
    divisor for u's rank contribution.
    """

    num_vertices: int
    in_neighbors: List[List[int]]
    out_degree: List[int]

    def __post_init__(self):
        if self.num_vertices <= 0:
            raise ValueError("graph needs at least one vertex")
        if len(self.in_neighbors) != self.num_vertices \
                or len(self.out_degree) != self.num_vertices:
            raise ValueError("adjacency arrays must match num_vertices")

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.in_neighbors)

    def validate(self) -> None:
        """Consistency check: out-degrees match the in-neighbor lists."""
        recount = [0] * self.num_vertices
        for v in range(self.num_vertices):
            for u in self.in_neighbors[v]:
                if not 0 <= u < self.num_vertices:
                    raise ValueError(f"edge {u}->{v} out of range")
                recount[u] += 1
        if recount != list(self.out_degree):
            raise ValueError("out_degree inconsistent with in_neighbors")


@dataclass
class Partition:
    """A vertex-to-node assignment plus derived indexing."""

    num_parts: int
    owner: List[int]                       # vertex -> node
    members: List[List[int]] = field(default_factory=list)
    local_index: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if not self.members:
            self.members = [[] for _ in range(self.num_parts)]
            for v, node in enumerate(self.owner):
                if not 0 <= node < self.num_parts:
                    raise ValueError(f"vertex {v} assigned to bad node")
                self.local_index[v] = len(self.members[node])
                self.members[node].append(v)

    def cut_edges(self, graph: Graph) -> int:
        """Edges whose endpoints live on different nodes — each one is a
        remote read in the fine-grain soNUMA variant."""
        cut = 0
        for v in range(graph.num_vertices):
            for u in graph.in_neighbors[v]:
                if self.owner[u] != self.owner[v]:
                    cut += 1
        return cut

    def imbalance(self, graph: Graph) -> float:
        """Max over mean per-node edge load (drives Fig. 9's shape)."""
        loads = [0] * self.num_parts
        for v in range(graph.num_vertices):
            loads[self.owner[v]] += len(graph.in_neighbors[v])
        mean = sum(loads) / self.num_parts
        return max(loads) / mean if mean else 1.0


def zipf_graph(num_vertices: int, avg_degree: float = 8.0,
               exponent: float = 2.0, seed: int = 42) -> Graph:
    """Synthetic power-law graph (Twitter-subset stand-in).

    Out-degrees are Zipf-distributed (scaled to the requested average);
    edge destinations are chosen preferentially (by degree rank) so both
    in- and out-degree distributions are skewed, as in social graphs.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if avg_degree <= 0 or exponent <= 1.0:
        raise ValueError("avg_degree must be > 0 and exponent > 1")
    rng = np.random.default_rng(seed)

    raw = rng.zipf(exponent, size=num_vertices).astype(np.float64)
    raw = np.minimum(raw, num_vertices / 4)  # cap megahubs
    degrees = np.maximum(1, np.round(
        raw * (avg_degree / raw.mean()))).astype(np.int64)

    # Preferential destinations: sample vertices weighted by their own
    # degree (creates skewed in-degree too).
    weights = degrees / degrees.sum()
    in_neighbors: List[List[int]] = [[] for _ in range(num_vertices)]
    out_degree = [0] * num_vertices
    for u in range(num_vertices):
        targets = rng.choice(num_vertices, size=int(degrees[u]),
                             replace=True, p=weights)
        for v in targets:
            v = int(v)
            if v == u:
                continue  # drop self-loops
            in_neighbors[v].append(u)
            out_degree[u] += 1
    # Vertices that lost all edges to self-loop-dropping get one edge so
    # out_degree is never zero (avoids rank sinks in the classic update).
    for u in range(num_vertices):
        if out_degree[u] == 0:
            v = (u + 1) % num_vertices
            in_neighbors[v].append(u)
            out_degree[u] = 1
    return Graph(num_vertices=num_vertices, in_neighbors=in_neighbors,
                 out_degree=out_degree)


def partition_random(graph: Graph, num_parts: int,
                     seed: int = 7) -> Partition:
    """The paper's naive partitioner: random, equal-cardinality parts."""
    if num_parts < 1:
        raise ValueError("need at least one partition")
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    owner = [0] * graph.num_vertices
    for position, vertex in enumerate(order):
        owner[int(vertex)] = position % num_parts
    return Partition(num_parts=num_parts, owner=owner)


def pagerank_reference(graph: Graph, supersteps: int,
                       damping: float = 0.85) -> List[float]:
    """Untimed reference PageRank (the BSP update of paper Fig. 4).

    Matches the paper's update rule exactly:
    ``rank'[v] = (1-d)/N + d * sum(rank[u]/out_degree[u])`` over
    in-neighbors u, iterated ``supersteps`` times from uniform ranks.
    """
    n = graph.num_vertices
    rank = [1.0 / n] * n
    for _ in range(supersteps):
        new_rank = [(1.0 - damping) / n] * n
        for v in range(n):
            acc = 0.0
            for u in graph.in_neighbors[v]:
                acc += rank[u] / graph.out_degree[u]
            new_rank[v] += damping * acc
        rank = new_rank
    return rank
