"""Distributed breadth-first search — on-line graph query processing.

The paper names "on-line graph query processing" among soNUMA's killer
applications (§8, §2.1: "applications that traverse large data
structures (e.g., graph algorithms)"). Where PageRank (§7.5) is the
batch workload, BFS is the query-style one: irregular, data-dependent
access, little work per vertex.

Two timed implementations over the partitioned global address space:

* :func:`run_bfs_fine` — one-sided: each node expands its frontier and
  issues a fine-grain ``rmc_read`` for every cross-partition adjacency
  list it must inspect (the Fig. 4 idiom applied to traversal). Remote
  adjacency lists are read directly out of the owner's context segment.
* :func:`run_bfs_push` — message-passing: newly discovered remote
  vertices are batched and sent to their owners with the §5.3 messaging
  library at the end of each level (the classic BSP frontier exchange).

Both are validated against :func:`bfs_reference`.

Graph layout in each node's segment: a CSR-style encoding of the local
partition — an index array (one u32 pair per local vertex: start, count
into the edge array) followed by the edge array (u32 global vertex ids)
— so a remote node can fetch any vertex's adjacency with two one-sided
reads (index, then edges), exactly how a real soNUMA deployment would
share read-only graph data.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.barrier import Barrier
from ..runtime.layout import MessagingConfig
from ..runtime.messaging import Messenger
from ..runtime.qp_api import RMCSession
from ..sim import (
    PartitionPlan,
    default_transport,
    plan_from_spec,
    run_partitioned,
)
from ..telemetry import merge_snapshots, snapshot
from .graph import Graph, partition_random
from .pagerank import _paired_config, _resolve_plan

__all__ = ["bfs_reference", "run_bfs_fine", "run_bfs_push", "BFSResult"]

_CTX = 1
_INDEX_ENTRY = 8     # u32 start + u32 count per local vertex
_EDGE_BYTES = 4      # u32 neighbor id

#: Per-vertex / per-edge computation costs (visited-set updates etc.).
_VERTEX_NS = 4.0
_EDGE_NS = 1.5


@dataclass
class BFSResult:
    """Outcome of one timed BFS run."""

    variant: str
    parallelism: int
    distances: List[int]          # -1 = unreachable
    elapsed_ns: float
    levels: int
    remote_reads: int = 0
    messages: int = 0
    #: End-of-run cluster telemetry; merged across workers for
    #: partitioned runs.
    telemetry: Optional[object] = None

    @property
    def reached(self) -> int:
        return sum(1 for d in self.distances if d >= 0)


def _out_neighbors(graph: Graph) -> List[List[int]]:
    """BFS traverses *out*-edges; Graph stores in-neighbor lists."""
    out: List[List[int]] = [[] for _ in range(graph.num_vertices)]
    for v in range(graph.num_vertices):
        for u in graph.in_neighbors[v]:
            out[u].append(v)
    return out


def bfs_reference(graph: Graph, source: int) -> List[int]:
    """Untimed BFS distances from ``source`` (-1 for unreachable)."""
    out = _out_neighbors(graph)
    distances = [-1] * graph.num_vertices
    distances[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in out[u]:
            if distances[v] < 0:
                distances[v] = distances[u] + 1
                frontier.append(v)
    return distances


class _BFSSetup:
    """Cluster with the CSR partition of the graph loaded into segments."""

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig], seed: int,
                 partition_plan: Optional[PartitionPlan] = None,
                 rank: int = 0):
        self.graph = graph
        self.out = _out_neighbors(graph)
        self.partition = partition_random(graph, num_nodes, seed=seed)
        max_part = max(len(m) for m in self.partition.members)
        max_edges = max(
            sum(len(self.out[v]) for v in members)
            for members in self.partition.members)
        self.index_bytes = max_part * _INDEX_ENTRY
        segment = (self.index_bytes + max_edges * _EDGE_BYTES
                   + (2 << 20))
        self.cluster = Cluster(config=cluster_config
                               or ClusterConfig(num_nodes=num_nodes),
                               partition=partition_plan, rank=rank)
        self.owned = (partition_plan.nodes_of(rank)
                      if partition_plan is not None
                      else list(range(num_nodes)))
        self.gctx = self.cluster.create_global_context(_CTX, segment)
        self.sessions = {
            n: RMCSession(self.cluster.nodes[n].core, self.gctx.qp(n),
                          self.gctx.entry(n))
            for n in self.owned
        }
        self._load_partitions()

    def _load_partitions(self) -> None:
        for n in self.owned:
            members = self.partition.members[n]
            index_blob = bytearray()
            edge_blob = bytearray()
            for v in members:
                start = len(edge_blob) // _EDGE_BYTES
                for w in self.out[v]:
                    edge_blob += struct.pack("<I", w)
                index_blob += struct.pack("<II", start, len(self.out[v]))
            self.cluster.poke_segment(n, _CTX, 0, bytes(index_blob))
            if edge_blob:
                self.cluster.poke_segment(n, _CTX, self.index_bytes,
                                          bytes(edge_blob))

    def adjacency_offsets(self, vertex: int):
        """(index_offset, owner) for a vertex's CSR index entry."""
        owner = self.partition.owner[vertex]
        local = self.partition.local_index[vertex]
        return local * _INDEX_ENTRY, owner


def run_bfs_fine(graph: Graph, num_nodes: int, source: int = 0,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7) -> BFSResult:
    """One-sided BFS: remote adjacency lists fetched with rmc_reads.

    Level-synchronous expansion: frontiers are double-buffered
    (``current`` is read-only during a level; discoveries go into
    ``pending``), with two barriers per level framing the swap so every
    node sees a consistent frontier and the termination decision. A
    node that discovers a remote vertex fetches that vertex's adjacency
    itself (index read + edge read) — expansion never blocks on peer
    CPUs, the one-sided property the paper's killer apps rely on.
    """
    setup = _BFSSetup(graph, num_nodes, cluster_config, seed)
    sim = setup.cluster.sim
    partition = setup.partition
    barriers = {n: Barrier(setup.sessions[n], n, list(range(num_nodes)))
                for n in range(num_nodes)}

    distances = [-1] * graph.num_vertices
    distances[source] = 0
    remote_reads = [0]
    # Keyed by the *discovering* node: whoever finds a vertex expands it
    # next level, fetching the adjacency from its owner one-sidedly —
    # no shuffle, no owner involvement (the contrast with run_bfs_push).
    current: Dict[int, Set[int]] = {n: set() for n in range(num_nodes)}
    pending: Dict[int, Set[int]] = {n: set() for n in range(num_nodes)}
    pending[0].add(source)

    def fetch_adjacency(node_id, session, lbuf, vertex):
        index_offset, owner = setup.adjacency_offsets(vertex)
        if owner == node_id:
            base = session.ctx.segment.base_vaddr
            raw = yield from session.core.mem_read(
                session.space, base + index_offset, _INDEX_ENTRY)
            start, count = struct.unpack("<II", raw)
            if count == 0:
                return []
            raw = yield from session.core.mem_read(
                session.space,
                base + setup.index_bytes + start * _EDGE_BYTES,
                count * _EDGE_BYTES)
        else:
            remote_reads[0] += 1
            yield from session.read_sync(owner, index_offset, lbuf,
                                         _INDEX_ENTRY)
            start, count = struct.unpack(
                "<II", session.buffer_peek(lbuf, _INDEX_ENTRY))
            if count == 0:
                return []
            remote_reads[0] += 1
            yield from session.read_sync(
                owner, setup.index_bytes + start * _EDGE_BYTES,
                lbuf, count * _EDGE_BYTES)
            raw = session.buffer_peek(lbuf, count * _EDGE_BYTES)
        return [struct.unpack_from("<I", raw, i * _EDGE_BYTES)[0]
                for i in range(count)]

    def worker(node_id: int):
        session = setup.sessions[node_id]
        core = session.core
        lbuf = session.alloc_buffer(64 * 1024)
        level = 0
        while True:
            yield from barriers[node_id].wait()   # everyone idle
            if node_id == 0:
                for n in range(num_nodes):
                    current[n] = pending[n]
                    pending[n] = set()
            yield from barriers[node_id].wait()   # swap visible, frozen
            if not any(current[n] for n in range(num_nodes)):
                break                              # consistent decision
            for u in sorted(current[node_id]):
                yield core.compute(_VERTEX_NS)
                neighbors = yield from fetch_adjacency(node_id, session,
                                                       lbuf, u)
                for w in neighbors:
                    yield core.compute(_EDGE_NS)
                    if distances[w] < 0:
                        distances[w] = distances[u] + 1
                        pending[node_id].add(w)
            level += 1
        return level

    start_time = sim.now
    procs = [sim.process(worker(n), name=f"bfs.fine{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    reached = [d for d in distances if d >= 0]
    return BFSResult(variant="bfs-fine", parallelism=num_nodes,
                     distances=distances, elapsed_ns=sim.now - start_time,
                     levels=max(reached) if reached else 0,
                     remote_reads=remote_reads[0])


#: Frontier-exchange sentinel: "no discoveries for you this level".
_EMPTY_SENTINEL = b"\xff" * 4


def _push_worker(setup: _BFSSetup, node_id: int, num_nodes: int,
                 source: int, dist: Dict[int, int],
                 messages: List[int]):
    """One node's BFS: expand owned frontier, push discoveries to their
    owners, then exchange pending counts to agree on termination.

    All state is node-local (``dist`` holds only owned vertices), so the
    same generator runs unchanged on a partitioned cluster where each
    worker process simulates a subset of the nodes.
    """
    partition = setup.partition
    session = setup.sessions[node_id]
    core = session.core
    messenger = setup.messengers[node_id]
    peers = [p for p in range(num_nodes) if p != node_id]
    pending: List[int] = []
    if partition.owner[source] == node_id:
        dist[source] = 0
        pending.append(source)
    while True:
        current, pending = pending, []
        outbound: Dict[int, List[tuple]] = {p: [] for p in peers}
        for u in current:
            yield core.compute(_VERTEX_NS)
            for w in setup.out[u]:
                yield core.compute(_EDGE_NS)
                owner = partition.owner[w]
                if owner == node_id:
                    if w not in dist:
                        dist[w] = dist[u] + 1
                        pending.append(w)
                else:
                    outbound[owner].append((w, dist[u] + 1))
        # Batched frontier exchange: one message per peer per level
        # (an empty sentinel keeps send/recv counts matched).
        for p in peers:
            blob = b"".join(struct.pack("<II", w, d)
                            for w, d in outbound[p]) or _EMPTY_SENTINEL
            yield from messenger.send(p, blob)
            messages[0] += 1
        for p in peers:
            blob = yield from messenger.recv(p)
            if blob == _EMPTY_SENTINEL:
                continue
            for i in range(0, len(blob), 8):
                w, d = struct.unpack_from("<II", blob, i)
                if w not in dist:
                    dist[w] = d
                    pending.append(w)
        # Termination round: every node broadcasts how many vertices it
        # discovered this level; all stop when the global sum is zero.
        total = len(pending)
        for p in peers:
            yield from messenger.send(p, struct.pack("<I", len(pending)))
            messages[0] += 1
        for p in peers:
            blob = yield from messenger.recv(p)
            total += struct.unpack("<I", blob)[0]
        if total == 0:
            return


def _merge_push_results(graph: Graph, parts: List[Dict]) -> List[int]:
    distances = [-1] * graph.num_vertices
    for part in parts:
        for v, d in part["dist"].items():
            distances[v] = d
    return distances


def run_bfs_push(graph: Graph, num_nodes: int, source: int = 0,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7,
                 workers: Optional[int] = None,
                 partition=None,
                 transport: Optional[str] = None) -> BFSResult:
    """Message-passing BFS: frontier exchange via the §5.3 library.

    Each node expands only vertices it owns; discoveries of remote
    vertices are batched into one message per peer per level (u32 ids),
    sent with the messaging library, and merged before the next level.
    A second message round per level exchanges pending-frontier counts
    so every node takes the same termination decision locally — no
    cross-node shared state, which also lets the run execute on the
    conservative parallel engine (``workers > 1`` or an explicit
    ``partition`` plan) with bit-identical results.
    """
    plan = _resolve_plan(num_nodes, workers, partition)
    if plan is not None:
        config = _paired_config(cluster_config, num_nodes)

        def build(rank: int, build_plan: PartitionPlan):
            setup = _BFSSetup(graph, num_nodes, config, seed,
                              partition_plan=build_plan, rank=rank)
            setup.messengers = {
                n: Messenger(setup.sessions[n], n, num_nodes,
                             MessagingConfig(staging_bytes=128 * 1024))
                for n in setup.owned
            }
            sim = setup.cluster.sim
            dists = {n: {} for n in setup.owned}
            messages = [0]
            procs = [sim.process(_push_worker(setup, n, num_nodes, source,
                                              dists[n], messages),
                                 name=f"bfs.push{n}")
                     for n in setup.owned]

            def finalize():
                for proc in procs:
                    if not proc.triggered:
                        raise RuntimeError(
                            f"{proc.name} did not finish (deadlock?)")
                    if not proc.ok:
                        raise proc.value
                merged_dist = {}
                for d in dists.values():
                    merged_dist.update(d)
                return {"dist": merged_dist, "messages": messages[0],
                        "snapshot": snapshot(setup.cluster)}

            return sim, setup.cluster.fabric, finalize

        if isinstance(plan, str):
            plan = plan_from_spec(plan, build, num_nodes,
                                  workers or num_nodes)
        if transport is None:
            transport = default_transport(plan.num_parts)
        run = run_partitioned(build, plan, transport=transport)
        parts = [run.results[r] for r in sorted(run.results)]
        distances = _merge_push_results(graph, parts)
        merged = merge_snapshots([p["snapshot"] for p in parts],
                                 engine_stats=run.engine_stats())
        return BFSResult(variant="bfs-push", parallelism=num_nodes,
                         distances=distances, elapsed_ns=run.final_time,
                         levels=max((d for d in distances if d >= 0),
                                    default=0),
                         messages=sum(p["messages"] for p in parts),
                         telemetry=merged)

    setup = _BFSSetup(graph, num_nodes, cluster_config, seed)
    setup.messengers = {
        n: Messenger(setup.sessions[n], n, num_nodes,
                     MessagingConfig(staging_bytes=128 * 1024))
        for n in range(num_nodes)
    }
    sim = setup.cluster.sim
    dists = {n: {} for n in range(num_nodes)}
    messages = [0]
    start_time = sim.now
    procs = [sim.process(_push_worker(setup, n, num_nodes, source,
                                      dists[n], messages),
                         name=f"bfs.push{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    distances = _merge_push_results(graph, [{"dist": d}
                                            for d in dists.values()])
    return BFSResult(variant="bfs-push", parallelism=num_nodes,
                     distances=distances, elapsed_ns=sim.now - start_time,
                     levels=max((d for d in distances if d >= 0),
                                default=0),
                     messages=messages[0],
                     telemetry=snapshot(setup.cluster))
