"""Distributed breadth-first search — on-line graph query processing.

The paper names "on-line graph query processing" among soNUMA's killer
applications (§8, §2.1: "applications that traverse large data
structures (e.g., graph algorithms)"). Where PageRank (§7.5) is the
batch workload, BFS is the query-style one: irregular, data-dependent
access, little work per vertex.

Two timed implementations over the partitioned global address space:

* :func:`run_bfs_fine` — one-sided: each node expands its frontier and
  issues a fine-grain ``rmc_read`` for every cross-partition adjacency
  list it must inspect (the Fig. 4 idiom applied to traversal). Remote
  adjacency lists are read directly out of the owner's context segment.
* :func:`run_bfs_push` — message-passing: newly discovered remote
  vertices are batched and sent to their owners with the §5.3 messaging
  library at the end of each level (the classic BSP frontier exchange).

Both are validated against :func:`bfs_reference`.

Graph layout in each node's segment: a CSR-style encoding of the local
partition — an index array (one u32 pair per local vertex: start, count
into the edge array) followed by the edge array (u32 global vertex ids)
— so a remote node can fetch any vertex's adjacency with two one-sided
reads (index, then edges), exactly how a real soNUMA deployment would
share read-only graph data.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.barrier import Barrier
from ..runtime.layout import MessagingConfig
from ..runtime.messaging import Messenger
from ..runtime.qp_api import RMCSession
from .graph import Graph, partition_random

__all__ = ["bfs_reference", "run_bfs_fine", "run_bfs_push", "BFSResult"]

_CTX = 1
_INDEX_ENTRY = 8     # u32 start + u32 count per local vertex
_EDGE_BYTES = 4      # u32 neighbor id

#: Per-vertex / per-edge computation costs (visited-set updates etc.).
_VERTEX_NS = 4.0
_EDGE_NS = 1.5


@dataclass
class BFSResult:
    """Outcome of one timed BFS run."""

    variant: str
    parallelism: int
    distances: List[int]          # -1 = unreachable
    elapsed_ns: float
    levels: int
    remote_reads: int = 0
    messages: int = 0

    @property
    def reached(self) -> int:
        return sum(1 for d in self.distances if d >= 0)


def _out_neighbors(graph: Graph) -> List[List[int]]:
    """BFS traverses *out*-edges; Graph stores in-neighbor lists."""
    out: List[List[int]] = [[] for _ in range(graph.num_vertices)]
    for v in range(graph.num_vertices):
        for u in graph.in_neighbors[v]:
            out[u].append(v)
    return out


def bfs_reference(graph: Graph, source: int) -> List[int]:
    """Untimed BFS distances from ``source`` (-1 for unreachable)."""
    out = _out_neighbors(graph)
    distances = [-1] * graph.num_vertices
    distances[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in out[u]:
            if distances[v] < 0:
                distances[v] = distances[u] + 1
                frontier.append(v)
    return distances


class _BFSSetup:
    """Cluster with the CSR partition of the graph loaded into segments."""

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig], seed: int):
        self.graph = graph
        self.out = _out_neighbors(graph)
        self.partition = partition_random(graph, num_nodes, seed=seed)
        max_part = max(len(m) for m in self.partition.members)
        max_edges = max(
            sum(len(self.out[v]) for v in members)
            for members in self.partition.members)
        self.index_bytes = max_part * _INDEX_ENTRY
        segment = (self.index_bytes + max_edges * _EDGE_BYTES
                   + (2 << 20))
        self.cluster = Cluster(config=cluster_config
                               or ClusterConfig(num_nodes=num_nodes))
        self.gctx = self.cluster.create_global_context(_CTX, segment)
        self.sessions = {
            n: RMCSession(self.cluster.nodes[n].core, self.gctx.qp(n),
                          self.gctx.entry(n))
            for n in range(num_nodes)
        }
        self._load_partitions(num_nodes)

    def _load_partitions(self, num_nodes: int) -> None:
        for n in range(num_nodes):
            members = self.partition.members[n]
            index_blob = bytearray()
            edge_blob = bytearray()
            for v in members:
                start = len(edge_blob) // _EDGE_BYTES
                for w in self.out[v]:
                    edge_blob += struct.pack("<I", w)
                index_blob += struct.pack("<II", start, len(self.out[v]))
            self.cluster.poke_segment(n, _CTX, 0, bytes(index_blob))
            if edge_blob:
                self.cluster.poke_segment(n, _CTX, self.index_bytes,
                                          bytes(edge_blob))

    def adjacency_offsets(self, vertex: int):
        """(index_offset, owner) for a vertex's CSR index entry."""
        owner = self.partition.owner[vertex]
        local = self.partition.local_index[vertex]
        return local * _INDEX_ENTRY, owner


def run_bfs_fine(graph: Graph, num_nodes: int, source: int = 0,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7) -> BFSResult:
    """One-sided BFS: remote adjacency lists fetched with rmc_reads.

    Level-synchronous expansion: frontiers are double-buffered
    (``current`` is read-only during a level; discoveries go into
    ``pending``), with two barriers per level framing the swap so every
    node sees a consistent frontier and the termination decision. A
    node that discovers a remote vertex fetches that vertex's adjacency
    itself (index read + edge read) — expansion never blocks on peer
    CPUs, the one-sided property the paper's killer apps rely on.
    """
    setup = _BFSSetup(graph, num_nodes, cluster_config, seed)
    sim = setup.cluster.sim
    partition = setup.partition
    barriers = {n: Barrier(setup.sessions[n], n, list(range(num_nodes)))
                for n in range(num_nodes)}

    distances = [-1] * graph.num_vertices
    distances[source] = 0
    remote_reads = [0]
    # Keyed by the *discovering* node: whoever finds a vertex expands it
    # next level, fetching the adjacency from its owner one-sidedly —
    # no shuffle, no owner involvement (the contrast with run_bfs_push).
    current: Dict[int, Set[int]] = {n: set() for n in range(num_nodes)}
    pending: Dict[int, Set[int]] = {n: set() for n in range(num_nodes)}
    pending[0].add(source)

    def fetch_adjacency(node_id, session, lbuf, vertex):
        index_offset, owner = setup.adjacency_offsets(vertex)
        if owner == node_id:
            base = session.ctx.segment.base_vaddr
            raw = yield from session.core.mem_read(
                session.space, base + index_offset, _INDEX_ENTRY)
            start, count = struct.unpack("<II", raw)
            if count == 0:
                return []
            raw = yield from session.core.mem_read(
                session.space,
                base + setup.index_bytes + start * _EDGE_BYTES,
                count * _EDGE_BYTES)
        else:
            remote_reads[0] += 1
            yield from session.read_sync(owner, index_offset, lbuf,
                                         _INDEX_ENTRY)
            start, count = struct.unpack(
                "<II", session.buffer_peek(lbuf, _INDEX_ENTRY))
            if count == 0:
                return []
            remote_reads[0] += 1
            yield from session.read_sync(
                owner, setup.index_bytes + start * _EDGE_BYTES,
                lbuf, count * _EDGE_BYTES)
            raw = session.buffer_peek(lbuf, count * _EDGE_BYTES)
        return [struct.unpack_from("<I", raw, i * _EDGE_BYTES)[0]
                for i in range(count)]

    def worker(node_id: int):
        session = setup.sessions[node_id]
        core = session.core
        lbuf = session.alloc_buffer(64 * 1024)
        level = 0
        while True:
            yield from barriers[node_id].wait()   # everyone idle
            if node_id == 0:
                for n in range(num_nodes):
                    current[n] = pending[n]
                    pending[n] = set()
            yield from barriers[node_id].wait()   # swap visible, frozen
            if not any(current[n] for n in range(num_nodes)):
                break                              # consistent decision
            for u in sorted(current[node_id]):
                yield core.compute(_VERTEX_NS)
                neighbors = yield from fetch_adjacency(node_id, session,
                                                       lbuf, u)
                for w in neighbors:
                    yield core.compute(_EDGE_NS)
                    if distances[w] < 0:
                        distances[w] = distances[u] + 1
                        pending[node_id].add(w)
            level += 1
        return level

    start_time = sim.now
    procs = [sim.process(worker(n), name=f"bfs.fine{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    reached = [d for d in distances if d >= 0]
    return BFSResult(variant="bfs-fine", parallelism=num_nodes,
                     distances=distances, elapsed_ns=sim.now - start_time,
                     levels=max(reached) if reached else 0,
                     remote_reads=remote_reads[0])


def run_bfs_push(graph: Graph, num_nodes: int, source: int = 0,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7) -> BFSResult:
    """Message-passing BFS: frontier exchange via the §5.3 library.

    Each node expands only vertices it owns; discoveries of remote
    vertices are batched into one message per peer per level (u32 ids),
    sent with the messaging library, and merged before the next level.
    """
    setup = _BFSSetup(graph, num_nodes, cluster_config, seed)
    sim = setup.cluster.sim
    partition = setup.partition
    messengers = {n: Messenger(setup.sessions[n], n, num_nodes,
                               MessagingConfig(staging_bytes=128 * 1024))
                  for n in range(num_nodes)}
    barriers = {n: Barrier(setup.sessions[n], n, list(range(num_nodes)))
                for n in range(num_nodes)}

    distances = [-1] * graph.num_vertices
    distances[source] = 0
    messages = [0]
    current: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
    pending: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
    pending[partition.owner[source]].append(source)

    def worker(node_id: int):
        session = setup.sessions[node_id]
        core = session.core
        messenger = messengers[node_id]
        peers = [p for p in range(num_nodes) if p != node_id]
        level = 0
        while True:
            yield from barriers[node_id].wait()   # everyone idle
            if node_id == 0:
                for n in range(num_nodes):
                    current[n] = pending[n]
                    pending[n] = []
            yield from barriers[node_id].wait()   # swap visible, frozen
            if not any(current[n] for n in range(num_nodes)):
                break
            outbound: Dict[int, List[tuple]] = {p: [] for p in peers}
            for u in current[node_id]:
                yield core.compute(_VERTEX_NS)
                for w in setup.out[u]:
                    yield core.compute(_EDGE_NS)
                    if distances[w] >= 0:
                        continue
                    owner = partition.owner[w]
                    if owner == node_id:
                        distances[w] = distances[u] + 1
                        pending[node_id].append(w)
                    else:
                        outbound[owner].append((w, distances[u] + 1))
            # Batched frontier exchange: one message per peer per level
            # (an empty sentinel keeps send/recv counts matched).
            for p in peers:
                blob = b"".join(struct.pack("<II", w, d)
                                for w, d in outbound[p]) or b"\xff" * 4
                yield from messenger.send(p, blob)
                messages[0] += 1
            for p in peers:
                blob = yield from messenger.recv(p)
                if blob == b"\xff" * 4:
                    continue
                for i in range(0, len(blob), 8):
                    w, d = struct.unpack_from("<II", blob, i)
                    if distances[w] < 0:
                        distances[w] = d
                        pending[node_id].append(w)
            level += 1
        return level

    start_time = sim.now
    procs = [sim.process(worker(n), name=f"bfs.push{n}")
             for n in range(num_nodes)]
    sim.run()
    for proc in procs:
        if not proc.ok:  # pragma: no cover
            raise proc.value
    return BFSResult(variant="bfs-push", parallelism=num_nodes,
                     distances=distances, elapsed_ns=sim.now - start_time,
                     levels=max((d for d in distances if d >= 0),
                                default=0),
                     messages=messages[0])
