"""A key-value store over one-sided remote reads (Pilaf-style).

The paper motivates soNUMA with "latency-sensitive key-value stores
such as RAMCloud and Pilaf" and names applications that "can take
advantage of one-sided read operations [38]" as killer apps (§8). This
module implements that design point on the soNUMA API:

* the **server** owns an open-addressing hash table inside its context
  segment (one 64-byte bucket per cache line: key, value length, value);
* **clients** service GETs purely with one-sided ``rmc_read`` operations
  — bucket probes walk the linear-probe chain remotely, with zero server
  CPU involvement (the RRPP serves them statelessly);
* PUTs go through the server's local path (as in Pilaf, where writes are
  shipped to the server); a CAS-based optimistic client PUT is provided
  for single-writer keys.

Fault tolerance (PR 5): :class:`ReplicatedKVServer` mirrors every PUT to
K backup nodes with one-sided bucket writes *at the same table offset*
(identical table geometry means identical probe chains, so a backup's
table is byte-for-byte the primary's), acking only once every backup
holds the bucket — the in-memory replication recipe of Besta & Hoefler's
fault-tolerant RMA work. :class:`FailoverKVClient` walks an ordered
replica list: when a replica's reads error-complete (crash, eviction,
fencing), it fails over to the next and keeps serving. Because PUT acks
imply full replication, an acknowledged PUT is never lost; staleness is
bounded by the single in-flight PUT.

Bucket layout (64 bytes)::

    bytes 0-7    key (u64; 0 = empty bucket)
    bytes 8-9    value length (u16)
    bytes 10-63  value (up to 54 bytes inline)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..resilience.coding import ErasureCode
from ..runtime.qp_api import RemoteOpFailed, RMCSession
from ..sim import LatencyStat
from ..vm.address import CACHE_LINE_SIZE

__all__ = ["KVServer", "KVClient", "KVStats", "ReplicatedKVServer",
           "CodedKVServer", "FailoverKVClient", "AvailabilityStats",
           "BUCKET_BYTES", "MAX_VALUE_BYTES"]

BUCKET_BYTES = CACHE_LINE_SIZE
MAX_VALUE_BYTES = BUCKET_BYTES - 10

#: Fibonacci hashing constant (Knuth) for u64 keys.
_HASH_MULT = 11400714819323198485


def _bucket_index(key: int, num_buckets: int) -> int:
    return ((key * _HASH_MULT) & (2 ** 64 - 1)) % num_buckets


def _pack_bucket(key: int, value: bytes) -> bytes:
    if len(value) > MAX_VALUE_BYTES:
        raise ValueError(f"value of {len(value)}B exceeds inline capacity")
    body = struct.pack("<QH", key, len(value)) + value
    return body + bytes(BUCKET_BYTES - len(body))


def _unpack_bucket(data: bytes) -> Tuple[int, bytes]:
    key, length = struct.unpack_from("<QH", data)
    return key, data[10:10 + length]


@dataclass
class KVStats:
    """Client-side measurement of GET behaviour."""

    gets: int = 0
    hits: int = 0
    probes: int = 0
    get_latency: LatencyStat = None

    def __post_init__(self):
        if self.get_latency is None:
            self.get_latency = LatencyStat("kv-get")

    @property
    def probes_per_get(self) -> float:
        return self.probes / self.gets if self.gets else 0.0


class KVServer:
    """Server-side table management (runs on the owning node)."""

    def __init__(self, session: RMCSession, num_buckets: int = 4096,
                 table_offset: int = 0):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.session = session
        self.num_buckets = num_buckets
        self.table_offset = table_offset
        self.node_id = session.core  # documentation only
        self.entries = 0

    def _bucket_vaddr(self, index: int) -> int:
        return self.session.ctx.segment.vaddr_of(
            self.table_offset + index * BUCKET_BYTES)

    def put_local(self, key: int, value: bytes) -> int:
        """Insert/overwrite via the server's local path (untimed setup
        helper for preloading; timed server PUT is :meth:`put_timed`).
        Returns the bucket index used."""
        if key == 0:
            raise ValueError("key 0 is reserved for empty buckets")
        index = _bucket_index(key, self.num_buckets)
        for probe in range(self.num_buckets):
            slot = (index + probe) % self.num_buckets
            raw = self.session.buffer_peek(self._bucket_vaddr(slot),
                                           BUCKET_BYTES)
            existing_key, _ = _unpack_bucket(raw)
            if existing_key in (0, key):
                if existing_key == 0:
                    self.entries += 1
                self.session.buffer_poke(self._bucket_vaddr(slot),
                                         _pack_bucket(key, value))
                return slot
        raise RuntimeError("hash table full")

    def put_timed(self, key: int, value: bytes):
        """Timed coroutine: server-local insert (charged core accesses)."""
        if key == 0:
            raise ValueError("key 0 is reserved for empty buckets")
        core = self.session.core
        space = self.session.space
        index = _bucket_index(key, self.num_buckets)
        for probe in range(self.num_buckets):
            slot = (index + probe) % self.num_buckets
            raw = yield from core.mem_read(space, self._bucket_vaddr(slot),
                                           BUCKET_BYTES)
            existing_key, _ = _unpack_bucket(raw)
            if existing_key in (0, key):
                if existing_key == 0:
                    self.entries += 1
                yield from core.mem_write(space, self._bucket_vaddr(slot),
                                          _pack_bucket(key, value))
                return slot
        raise RuntimeError("hash table full")


class KVClient:
    """Client-side GETs via one-sided remote reads."""

    def __init__(self, session: RMCSession, server_nid: int,
                 num_buckets: int, table_offset: int = 0,
                 max_probes: int = 16):
        self.session = session
        self.server_nid = server_nid
        self.num_buckets = num_buckets
        self.table_offset = table_offset
        self.max_probes = max_probes
        self.stats = KVStats()
        self._bounce = session.alloc_buffer(BUCKET_BYTES * max_probes)

    def get(self, key: int):
        """Timed coroutine: fetch ``key`` with remote bucket probes.

        Returns the value bytes, or None if absent. Each probe is one
        64-byte one-sided read — the access pattern Pilaf reports 1.6
        round trips per GET for; linear probing keeps chains short at
        moderate load factors.
        """
        sim = self.session.core.sim
        start = sim.now
        index = _bucket_index(key, self.num_buckets)
        result = None
        for probe in range(self.max_probes):
            slot = (index + probe) % self.num_buckets
            offset = self.table_offset + slot * BUCKET_BYTES
            lbuf = self._bounce + probe * BUCKET_BYTES
            yield from self.session.read_sync(self.server_nid, offset,
                                              lbuf, BUCKET_BYTES)
            self.stats.probes += 1
            found_key, value = _unpack_bucket(
                self.session.buffer_peek(lbuf, BUCKET_BYTES))
            if found_key == key:
                result = value
                self.stats.hits += 1
                break
            if found_key == 0:
                break  # empty bucket terminates the probe chain
        self.stats.gets += 1
        self.stats.get_latency.record(sim.now - start)
        return result

    def put_cas(self, key: int, value: bytes, expected_slot: int):
        """Optimistic single-writer PUT: CAS the key word of a known
        bucket, then write the full bucket. Returns True on success."""
        offset = self.table_offset + expected_slot * BUCKET_BYTES
        scratch = self.session.alloc_buffer(BUCKET_BYTES)
        observed = yield from self.session.compare_swap_sync(
            self.server_nid, offset, scratch, compare=key, swap=key)
        if observed not in (0, key):
            return False
        self.session.buffer_poke(scratch, _pack_bucket(key, value))
        yield from self.session.write_sync(self.server_nid, offset,
                                           scratch, BUCKET_BYTES)
        return True


# -- fault-tolerant variants (PR 5) ------------------------------------------

@dataclass
class AvailabilityStats:
    """Client-observed availability under node failures."""

    gets_ok: int = 0
    #: GETs that exhausted every replica (true unavailability window).
    gets_failed: int = 0
    #: Times the client advanced to the next replica.
    failovers: int = 0
    #: Individual replica attempts that error-completed.
    replica_errors: int = 0
    #: Replicas skipped without a timeout because membership had already
    #: evicted them (the control plane saving the client a lease wait).
    evicted_skips: int = 0
    #: GETs served by decoding coded backup shards after every full
    #: replica was unreachable (coded-backup mode only).
    degraded_reads: int = 0
    #: Shadow reads sent at a live-again preferred replica to test
    #: whether it serves the same data as the backup (liveness alone
    #: can't be trusted: a rejoined node may hold a wiped table).
    recovery_probes: int = 0
    #: Times a recovery probe verified and the client moved back to its
    #: preferred replica.
    recoveries: int = 0

    @property
    def availability(self) -> float:
        total = self.gets_ok + self.gets_failed
        return self.gets_ok / total if total else 1.0

    def as_dict(self) -> dict:
        return {"gets_ok": self.gets_ok, "gets_failed": self.gets_failed,
                "failovers": self.failovers,
                "replica_errors": self.replica_errors,
                "evicted_skips": self.evicted_skips,
                "degraded_reads": self.degraded_reads,
                "recovery_probes": self.recovery_probes,
                "recoveries": self.recoveries,
                "availability": self.availability}


class ReplicatedKVServer(KVServer):
    """Primary that mirrors each PUT to K backups before acking.

    Replicas must register the table with identical geometry (same
    ``num_buckets`` and ``table_offset``): the primary then ships the
    packed 64-byte bucket line to the *same* slot on every backup with a
    one-sided write, and the backup tables stay byte-for-byte identical
    — including probe-chain structure — without any backup-side CPU.
    A PUT is acknowledged only after every backup write completes, so an
    acknowledged PUT survives any single crash (with K >= 1 backups).
    """

    def __init__(self, session: RMCSession, backups: Sequence[int],
                 num_buckets: int = 4096, table_offset: int = 0):
        super().__init__(session, num_buckets=num_buckets,
                         table_offset=table_offset)
        self.backups = list(backups)
        self.puts_acked = 0
        self.replica_writes = 0
        self._scratch = session.alloc_buffer(BUCKET_BYTES)

    def put_replicated(self, key: int, value: bytes):
        """Timed coroutine: local insert, then synchronous replication
        to every backup. Returns the bucket slot once fully replicated
        (the ack point — nothing acked here can be lost to one crash)."""
        slot = yield from self.put_timed(key, value)
        offset = self.table_offset + slot * BUCKET_BYTES
        self.session.buffer_poke(self._scratch, _pack_bucket(key, value))
        for backup in self.backups:
            yield from self.session.write_sync(backup, offset,
                                               self._scratch, BUCKET_BYTES)
            self.replica_writes += 1
        self.puts_acked += 1
        return slot


class CodedKVServer(KVServer):
    """Primary whose backup path ships *coded shards*, not full copies.

    Each acknowledged PUT encodes the packed 64-byte bucket line into
    ``k + m`` shards (see :mod:`repro.resilience.coding`) and one-sided-
    writes shard ``j`` to backup ``j`` **at the same table offset** —
    identical geometry, so a degraded reader knows exactly which bytes
    of which backups reconstruct any bucket. Backup storage per bucket
    drops from ``K x 64B`` (full replication) to
    ``(k + m) x ceil(64/k)B``, and any ``m`` backup losses are
    survivable; losing the *primary* costs ``k`` reads per probe instead
    of one (the degraded read of
    :meth:`FailoverKVClient.get`).
    """

    def __init__(self, session: RMCSession, backups: Sequence[int],
                 code: ErasureCode, num_buckets: int = 4096,
                 table_offset: int = 0):
        if len(backups) != code.num_shards:
            raise ValueError(
                f"{code.name} needs exactly {code.num_shards} backups "
                f"(one per shard), got {len(backups)}")
        super().__init__(session, num_buckets=num_buckets,
                         table_offset=table_offset)
        self.backups = list(backups)
        self.code = code
        self.shard_len = code.shard_length(BUCKET_BYTES)
        self.puts_acked = 0
        self.replica_writes = 0
        self._scratch = session.alloc_buffer(BUCKET_BYTES)

    def put_coded(self, key: int, value: bytes):
        """Timed coroutine: local insert, then one shard to each backup.
        The ack point is after the last shard write — an acknowledged
        PUT survives the primary plus any ``m`` backups."""
        slot = yield from self.put_timed(key, value)
        offset = self.table_offset + slot * BUCKET_BYTES
        shards = self.code.encode(_pack_bucket(key, value))
        for shard, backup in zip(shards, self.backups):
            self.session.buffer_poke(self._scratch, shard)
            yield from self.session.write_sync(backup, offset,
                                               self._scratch,
                                               len(shard))
            self.replica_writes += 1
        self.puts_acked += 1
        return slot


class FailoverKVClient(KVClient):
    """GET client that walks an ordered replica list on failures.

    Reads go to the current replica; when a probe error-completes
    (crashed node, severed link, epoch-fenced reply) the client records
    the failure, rotates to the next replica, and retries the whole GET
    there. With a membership service attached, replicas the control
    plane has already evicted are skipped outright — failover happens at
    epoch-change speed instead of per-op timeout speed.

    Staleness bound: backups only ever lag the primary by the single PUT
    currently inside :meth:`ReplicatedKVServer.put_replicated`; any
    *acknowledged* PUT is readable from every replica.

    Coded-backup mode (:class:`CodedKVServer`): pass the server's
    ``code`` and its ordered ``shard_nids`` (backup ``j`` holds shard
    ``j``). When every full replica is unreachable the client falls back
    to *degraded reads*: each probe gathers any ``k`` healthy shards of
    the bucket line and decodes it — ``k`` one-sided reads instead of
    one, but the GET still completes.
    """

    def __init__(self, session: RMCSession, replica_nids: Sequence[int],
                 num_buckets: int, table_offset: int = 0,
                 max_probes: int = 16, membership=None,
                 code: Optional[ErasureCode] = None,
                 shard_nids: Sequence[int] = (), counters=None):
        if not replica_nids:
            raise ValueError("need at least one replica")
        super().__init__(session, replica_nids[0], num_buckets,
                         table_offset=table_offset, max_probes=max_probes)
        self.replicas = list(replica_nids)
        self.membership = membership
        self.current = 0
        #: Membership epoch observed at the last failover: recovery
        #: probes fire only once the control plane has moved past it.
        self._failover_epoch: Optional[int] = None
        self.availability = AvailabilityStats()
        self.code = code
        self.shard_nids = list(shard_nids)
        #: Optional ResilienceCounters of the client's node (telemetry).
        self.counters = counters
        if code is not None:
            if len(self.shard_nids) != code.num_shards:
                raise ValueError(
                    f"{code.name} needs {code.num_shards} shard holders,"
                    f" got {len(self.shard_nids)}")
            self._shard_bounce = session.alloc_buffer(
                code.shard_length(BUCKET_BYTES) * code.num_shards)

    @property
    def active_replica(self) -> int:
        return self.replicas[self.current]

    def _fail_over(self) -> None:
        self.current = (self.current + 1) % len(self.replicas)
        self.availability.failovers += 1
        if self.membership is not None:
            self._failover_epoch = self.membership.epoch

    def _recovery_pending(self) -> bool:
        """Whether this GET should shadow-probe the preferred replica:
        the client is camped on a backup, the membership epoch has
        advanced past the failover (an eviction or rejoin happened),
        and the control plane says the primary is live again. Without
        recovery the client stays on the backup forever after a
        transient primary failure — every later GET pays the backup's
        (possibly remote, possibly slower) path for no reason."""
        return (self.current != 0
                and self.membership is not None
                and self.membership.epoch != self._failover_epoch
                and self.membership.is_live(self.replicas[0]))

    def _probe_primary(self, key: int, expect):
        """Timed coroutine: recovery probe. Liveness alone is not
        enough to send reads home — a rejoined primary may hold a
        wiped (or stale) table until the application re-syncs it. Read
        ``key`` from the primary and move back only when it serves the
        same answer the backup just did; either way, don't probe again
        until the next membership epoch."""
        self.availability.recovery_probes += 1
        self._failover_epoch = self.membership.epoch
        serving_nid = self.server_nid
        self.server_nid = self.replicas[0]
        try:
            got = yield from super().get(key)
        except RemoteOpFailed:
            self.session.consume_errors()
        else:
            if got == expect:
                self.current = 0
                self.availability.recoveries += 1
        finally:
            self.server_nid = serving_nid

    def get(self, key: int):   # noqa: C901 - failover loop
        """Timed coroutine: GET with replica failover. Raises the last
        :class:`RemoteOpFailed` only if *every* replica fails."""
        probe_home = self._recovery_pending()
        last_error: Optional[RemoteOpFailed] = None
        for _ in range(len(self.replicas)):
            target = self.replicas[self.current]
            if self.membership is not None \
                    and not self.membership.is_live(target):
                self.availability.evicted_skips += 1
                self._fail_over()
                continue
            self.server_nid = target
            try:
                value = yield from super().get(key)
            except RemoteOpFailed as exc:
                last_error = exc
                self.availability.replica_errors += 1
                # The session records the peer as failed; absorb it so the
                # next replica starts from a clean slate.
                self.session.consume_errors()
                self._fail_over()
                continue
            if probe_home and self.current != 0:
                yield from self._probe_primary(key, value)
            self.availability.gets_ok += 1
            return value
        if self.code is not None:
            try:
                value = yield from self._get_degraded(key)
            except RemoteOpFailed as exc:
                last_error = exc
            else:
                self.availability.gets_ok += 1
                self.availability.degraded_reads += 1
                if self.counters is not None:
                    self.counters.degraded_reads += 1
                return value
        self.availability.gets_failed += 1
        if last_error is not None:
            raise last_error
        raise RemoteOpFailed(-1, "no live replica to serve the GET")

    # -- coded-backup degraded path ------------------------------------------

    def _healthy_shard_holders(self):
        """Shard holders worth probing: membership-evicted ones are
        skipped outright (same control-plane shortcut as full
        replicas)."""
        holders = []
        for index, nid in enumerate(self.shard_nids):
            if self.membership is not None \
                    and not self.membership.is_live(nid):
                self.availability.evicted_skips += 1
                continue
            holders.append((index, nid))
        return holders

    def _read_bucket_degraded(self, offset: int) -> bytes:
        """Timed coroutine: gather any k shards of one bucket line and
        decode it. Raises :class:`RemoteOpFailed` when fewer than k
        holders answer (more than m losses: the line is gone)."""
        code = self.code
        shard_len = code.shard_length(BUCKET_BYTES)
        shards = {}
        last_error: Optional[RemoteOpFailed] = None
        for index, nid in self._healthy_shard_holders():
            if len(shards) >= code.k:
                break
            lbuf = self._shard_bounce + index * shard_len
            try:
                yield from self.session.read_sync(nid, offset, lbuf,
                                                  shard_len)
            except RemoteOpFailed as exc:
                last_error = exc
                self.availability.replica_errors += 1
                self.session.consume_errors()
                continue
            shards[index] = self.session.buffer_peek(lbuf, shard_len)
        if len(shards) < code.k:
            if last_error is not None:
                raise last_error
            raise RemoteOpFailed(
                -1, f"degraded read found {len(shards)} shards, "
                    f"needs {code.k}")
        return code.decode(shards, BUCKET_BYTES)

    def _get_degraded(self, key: int):
        """Timed coroutine: the GET probe chain, each bucket line
        reconstructed from coded backup shards."""
        sim = self.session.core.sim
        start = sim.now
        index = _bucket_index(key, self.num_buckets)
        result = None
        for probe in range(self.max_probes):
            slot = (index + probe) % self.num_buckets
            offset = self.table_offset + slot * BUCKET_BYTES
            raw = yield from self._read_bucket_degraded(offset)
            self.stats.probes += 1
            found_key, value = _unpack_bucket(raw)
            if found_key == key:
                result = value
                self.stats.hits += 1
                break
            if found_key == 0:
                break  # empty bucket terminates the probe chain
        self.stats.gets += 1
        self.stats.get_latency.record(sim.now - start)
        return result
