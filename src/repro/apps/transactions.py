"""Distributed in-memory transaction processing over remote atomics.

The paper's §8 lists "in-memory transaction processing systems" among
the killer applications that "demand low latency and can take advantage
of one-sided read operations". This module implements the classic
demonstration — cross-node account transfers with strict two-phase
locking — using only the architectural primitives:

* each account is one cache line in its owner's context segment:
  a lock word (u64) plus a balance (u64);
* clients acquire locks with remote **compare-and-swap** (spinning with
  bounded backoff), read and update balances with one-sided reads and
  writes, then release locks with plain remote writes;
* locks are always acquired in global account order, making deadlock
  impossible (the textbook ordering discipline — no distributed
  deadlock detection needed).

soNUMA's global atomicity guarantee is what makes this correct: CAS
"executed atomically within the local cache coherence hierarchy of the
destination node" arbitrates any mix of local and remote lock attempts
(§5.2 / §7.4).

The invariant the tests check is conservation: no interleaving of
transfers may create or destroy money.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.qp_api import RMCSession
from ..sim import LatencyStat

__all__ = ["AccountStore", "TransactionClient", "TxStats"]

_CTX = 1

#: One line per account: lock u64 (0 free, else owner tag), balance u64.
ACCOUNT_BYTES = 64

_LOCK_FREE = 0


@dataclass
class TxStats:
    """Per-client transaction statistics."""

    committed: int = 0
    lock_retries: int = 0
    latency: LatencyStat = None

    def __post_init__(self):
        if self.latency is None:
            self.latency = LatencyStat("tx")


class AccountStore:
    """The partitioned account table (one partition per node)."""

    def __init__(self, cluster: Cluster, accounts_per_node: int,
                 initial_balance: int = 1000):
        self.cluster = cluster
        self.accounts_per_node = accounts_per_node
        self.num_nodes = len(cluster.nodes)
        self.initial_balance = initial_balance
        for node_id in range(self.num_nodes):
            for slot in range(accounts_per_node):
                self.cluster.poke_segment(
                    node_id, _CTX, slot * ACCOUNT_BYTES,
                    struct.pack("<QQ", _LOCK_FREE, initial_balance)
                    + bytes(ACCOUNT_BYTES - 16))

    @property
    def num_accounts(self) -> int:
        return self.num_nodes * self.accounts_per_node

    def locate(self, account: int) -> Tuple[int, int]:
        """(owner node, segment offset) of a global account id."""
        if not 0 <= account < self.num_accounts:
            raise IndexError(f"account {account} out of range")
        owner, slot = divmod(account, self.accounts_per_node)
        return owner, slot * ACCOUNT_BYTES

    def balance(self, account: int) -> int:
        """Untimed functional balance read (verification helper)."""
        owner, offset = self.locate(account)
        raw = self.cluster.peek_segment(owner, _CTX, offset + 8, 8)
        return int.from_bytes(raw, "little")

    def total_balance(self) -> int:
        """Sum over every account (the conservation invariant)."""
        return sum(self.balance(a) for a in range(self.num_accounts))

    def locks_held(self) -> int:
        """Locks still taken (must be 0 after quiescence)."""
        held = 0
        for account in range(self.num_accounts):
            owner, offset = self.locate(account)
            raw = self.cluster.peek_segment(owner, _CTX, offset, 8)
            if int.from_bytes(raw, "little") != _LOCK_FREE:
                held += 1
        return held


class TransactionClient:
    """Executes transfers with ordered two-phase locking via CAS."""

    def __init__(self, session: RMCSession, store: AccountStore,
                 client_tag: int, backoff_ns: float = 120.0):
        if client_tag == _LOCK_FREE:
            raise ValueError("client tag 0 is the free-lock sentinel")
        self.session = session
        self.store = store
        self.client_tag = client_tag
        self.backoff_ns = backoff_ns
        self.stats = TxStats()
        self._scratch = session.alloc_buffer(4 * ACCOUNT_BYTES)

    # -- lock primitives over remote atomics --------------------------------

    def _acquire(self, account: int):
        owner, offset = self.store.locate(account)
        while True:
            observed = yield from self.session.compare_swap_sync(
                owner, offset, self._scratch,
                compare=_LOCK_FREE, swap=self.client_tag)
            if observed == _LOCK_FREE:
                return
            self.stats.lock_retries += 1
            yield self.session.core.compute(self.backoff_ns)

    def _release(self, account: int):
        owner, offset = self.store.locate(account)
        self.session.buffer_poke(self._scratch,
                                 _LOCK_FREE.to_bytes(8, "little"))
        yield from self.session.write_sync(owner, offset, self._scratch, 8)

    def _read_balance(self, account: int):
        owner, offset = self.store.locate(account)
        yield from self.session.read_sync(owner, offset + 8,
                                          self._scratch + 64, 8)
        return int.from_bytes(
            self.session.buffer_peek(self._scratch + 64, 8), "little")

    def _write_balance(self, account: int, value: int):
        owner, offset = self.store.locate(account)
        self.session.buffer_poke(self._scratch + 128,
                                 value.to_bytes(8, "little"))
        yield from self.session.write_sync(owner, offset + 8,
                                           self._scratch + 128, 8)

    # -- the transaction -----------------------------------------------------

    def transfer(self, src: int, dst: int, amount: int):
        """Timed coroutine: move ``amount`` from src to dst atomically.

        Returns True on commit, False if src had insufficient funds
        (the transaction still ran under both locks). Locks are taken
        in global account order, so concurrent transfers never deadlock.
        """
        if src == dst:
            raise ValueError("transfer endpoints must differ")
        sim = self.session.core.sim
        start = sim.now
        first, second = sorted((src, dst))
        yield from self._acquire(first)
        yield from self._acquire(second)
        try:
            src_balance = yield from self._read_balance(src)
            committed = src_balance >= amount
            if committed:
                dst_balance = yield from self._read_balance(dst)
                yield from self._write_balance(src, src_balance - amount)
                yield from self._write_balance(dst, dst_balance + amount)
        finally:
            yield from self._release(second)
            yield from self._release(first)
        if committed:
            self.stats.committed += 1
        self.stats.latency.record(sim.now - start)
        return committed


def run_transfer_mix(num_nodes: int = 4, accounts_per_node: int = 8,
                     clients: int = 3, transfers_each: int = 20,
                     seed: int = 11,
                     cluster_config: Optional[ClusterConfig] = None):
    """Convenience driver: concurrent random transfers; returns
    (store, [clients]) after the simulation completes."""
    import random

    config = cluster_config or ClusterConfig(num_nodes=num_nodes)
    cluster = Cluster(config=config)
    cluster.create_global_context(
        _CTX, accounts_per_node * ACCOUNT_BYTES + (1 << 20))
    # Clients get their own QPs in addition to the context's default one.
    sessions = []
    for node_id in range(min(clients, num_nodes)):
        node = cluster.nodes[node_id]
        entry = node.driver.contexts[_CTX]
        qp = node.driver.create_qp(_CTX)
        sessions.append(RMCSession(node.core, qp, entry))
    store = AccountStore(cluster, accounts_per_node)
    client_objs = [TransactionClient(session, store, client_tag=i + 1)
                   for i, session in enumerate(sessions)]

    def client_loop(sim, client, rng_seed):
        rng = random.Random(rng_seed)
        for _ in range(transfers_each):
            src = rng.randrange(store.num_accounts)
            dst = (src + rng.randrange(1, store.num_accounts)) \
                % store.num_accounts
            amount = rng.randrange(1, 200)
            yield from client.transfer(src, dst, amount)

    for i, client in enumerate(client_objs):
        cluster.sim.process(client_loop(cluster.sim, client, seed + i))
    cluster.run()
    return store, client_objs
