"""A mini-Pregel: Bulk Synchronous Processing over soNUMA.

The paper frames its application study in the BSP model [57] and
attributes the bulk variant's communication pattern to Pregel [35]:
"every node computes its own portion of the dataset (range of vertices)
and then synchronizes with other participants, before proceeding with
the next iteration (so-called superstep). ... This implementation
leverages aggregation mechanisms and exchanges ranks between nodes at
the end of each superstep, after the barrier."

:class:`BSPEngine` packages that pattern as a reusable framework:

* vertex state lives in each owner's context segment (one fixed-size
  record per vertex, two epochs for double buffering);
* each superstep starts with a barrier, pulls every peer's partition
  with one multi-line ``rmc_read_async`` per peer (the bisection-
  bandwidth-limited shuffle), then runs the user's *vertex program*
  against local + mirrored state;
* a vertex program is a plain object with ``init(vertex) -> value`` and
  ``update(vertex, neighbor_values) -> value``; the engine handles
  packing, mirrors, epochs, and convergence (stop when no vertex
  changed, decided collectively).

Two programs ship with the engine: :class:`PageRankProgram`
(cross-checked against :func:`repro.apps.graph.pagerank_reference`) and
:class:`MinLabelProgram` (connected components via label propagation).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from ..cluster.cluster import Cluster, ClusterConfig
from ..runtime.barrier import Barrier
from ..runtime.qp_api import RMCSession
from .graph import Graph, partition_random

__all__ = ["VertexProgram", "BSPEngine", "BSPResult", "PageRankProgram",
           "MinLabelProgram"]

_CTX = 1

#: One cache line per vertex: value[epoch 0] f64, value[epoch 1] f64,
#: auxiliary u64 (program-defined; PageRank stores the out-degree).
RECORD_BYTES = 64


class VertexProgram(Protocol):
    """User-supplied per-vertex logic (duck-typed protocol)."""

    #: Computation charged per in-edge scanned (ns).
    edge_compute_ns: float
    #: Computation charged per vertex update (ns).
    vertex_compute_ns: float

    def init(self, graph: Graph, vertex: int) -> float:
        """Initial value of a vertex."""

    def aux(self, graph: Graph, vertex: int) -> int:
        """Per-vertex auxiliary integer packed alongside the value."""

    def update(self, graph: Graph, vertex: int,
               neighbor_values: Sequence[tuple]) -> float:
        """New value from [(value, aux), ...] of the in-neighbors."""


@dataclass
class BSPResult:
    """Outcome of a BSP run."""

    values: List[float]
    supersteps_run: int
    elapsed_ns: float
    converged: bool
    remote_reads: int


class PageRankProgram:
    """The paper's PageRank update as a vertex program."""

    edge_compute_ns = 2.0
    vertex_compute_ns = 3.0

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def init(self, graph: Graph, vertex: int) -> float:
        return 1.0 / graph.num_vertices

    def aux(self, graph: Graph, vertex: int) -> int:
        return graph.out_degree[vertex]

    def update(self, graph: Graph, vertex: int, neighbor_values) -> float:
        total = 0.0
        for value, out_degree in neighbor_values:
            total += value / out_degree
        return (1.0 - self.damping) / graph.num_vertices \
            + self.damping * total


class MinLabelProgram:
    """Connected components by minimum-label propagation.

    Treats edges as undirected for labeling purposes would require
    reverse adjacency; over in-neighbors alone this computes the
    minimum label reachable *forward* into each vertex — the classic
    label-propagation building block. Converges when no label changes.
    """

    edge_compute_ns = 1.5
    vertex_compute_ns = 2.0

    def init(self, graph: Graph, vertex: int) -> float:
        return float(vertex)

    def aux(self, graph: Graph, vertex: int) -> int:
        return 1

    def update(self, graph: Graph, vertex: int, neighbor_values) -> float:
        best = float(vertex)
        for value, _aux in neighbor_values:
            if value < best:
                best = value
        return best


def _pack(value0: float, value1: float, aux: int) -> bytes:
    body = struct.pack("<ddQ", value0, value1, aux)
    return body + bytes(RECORD_BYTES - len(body))


def _unpack(raw: bytes):
    return struct.unpack_from("<ddQ", raw)


class BSPEngine:
    """Runs a vertex program over a partitioned graph on a cluster."""

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7):
        self.graph = graph
        self.num_nodes = num_nodes
        self.partition = partition_random(graph, num_nodes, seed=seed)
        max_part = max(len(m) for m in self.partition.members)
        segment = max_part * RECORD_BYTES + (1 << 20)
        self.cluster = Cluster(config=cluster_config
                               or ClusterConfig(num_nodes=num_nodes))
        self.gctx = self.cluster.create_global_context(_CTX, segment)
        self.sessions = {
            n: RMCSession(self.cluster.nodes[n].core, self.gctx.qp(n),
                          self.gctx.entry(n))
            for n in range(num_nodes)
        }
        self.barriers = {
            n: Barrier(self.sessions[n], n, list(range(num_nodes)))
            for n in range(num_nodes)
        }

    def _record_offset(self, vertex: int) -> int:
        return self.partition.local_index[vertex] * RECORD_BYTES

    def run(self, program: VertexProgram, max_supersteps: int,
            stop_on_convergence: bool = True,
            tolerance: float = 0.0) -> BSPResult:
        """Execute up to ``max_supersteps`` supersteps of ``program``."""
        graph, partition = self.graph, self.partition
        cluster = self.cluster
        sim = cluster.sim

        for node_id in range(self.num_nodes):
            for vertex in partition.members[node_id]:
                cluster.poke_segment(
                    node_id, _CTX, self._record_offset(vertex),
                    _pack(program.init(graph, vertex), 0.0,
                          program.aux(graph, vertex)))

        remote_reads = [0]
        steps_run = [0]
        # changed[n] flags per superstep. Node 0 alone turns them into
        # the collective proceed/stop decision between the two barriers
        # that frame each superstep start, so every worker sees the same
        # verdict (single-writer rule; no read/write races).
        changed: Dict[int, bool] = {n: True for n in range(self.num_nodes)}
        proceed = [True]

        def worker(node_id: int):
            session = self.sessions[node_id]
            barrier = self.barriers[node_id]
            core = session.core
            space = session.space
            seg_base = session.ctx.segment.base_vaddr
            mine = partition.members[node_id]
            peers = [p for p in range(self.num_nodes) if p != node_id]
            mirrors = {
                p: session.alloc_buffer(
                    max(len(partition.members[p]), 1) * RECORD_BYTES)
                for p in peers
            }
            for step in range(max_supersteps):
                yield from barrier.wait()          # changed[] is final
                if node_id == 0:
                    proceed[0] = any(changed[n]
                                     for n in range(self.num_nodes))
                    for n in range(self.num_nodes):
                        changed[n] = False
                yield from barrier.wait()          # decision visible
                if stop_on_convergence and not proceed[0]:
                    break
                if node_id == 0:
                    steps_run[0] = step + 1

                # Shuffle: one bulk read per peer, all overlapped.
                for p in peers:
                    nbytes = len(partition.members[p]) * RECORD_BYTES
                    if nbytes == 0:
                        continue
                    yield from session.wait_for_slot()
                    yield from session.read_async(p, 0, mirrors[p], nbytes)
                    remote_reads[0] += 1
                yield from session.drain_cq()

                read_at = step % 2
                for vertex in mine:
                    yield core.compute(program.vertex_compute_ns)
                    inputs = []
                    for u in graph.in_neighbors[vertex]:
                        owner = partition.owner[u]
                        if owner == node_id:
                            vaddr = seg_base + self._record_offset(u)
                        else:
                            vaddr = mirrors[owner] + self._record_offset(u)
                        raw = yield from core.mem_read(space, vaddr, 24)
                        values = _unpack(raw)
                        inputs.append((values[read_at], values[2]))
                        yield core.compute(program.edge_compute_ns)
                    new_value = program.update(graph, vertex, inputs)
                    old_raw = session.buffer_peek(
                        seg_base + self._record_offset(vertex), 24)
                    old_value = _unpack(old_raw)[read_at]
                    if abs(new_value - old_value) > tolerance:
                        changed[node_id] = True
                    yield from core.mem_write(
                        space,
                        seg_base + self._record_offset(vertex)
                        + 8 * ((step + 1) % 2),
                        struct.pack("<d", new_value))
            yield from barrier.wait()

        start = sim.now
        procs = [sim.process(worker(n), name=f"bsp{n}")
                 for n in range(self.num_nodes)]
        sim.run()
        for proc in procs:
            if not proc.ok:  # pragma: no cover
                raise proc.value

        final_epoch = steps_run[0] % 2
        values = [0.0] * graph.num_vertices
        for node_id, members in enumerate(partition.members):
            for vertex in members:
                raw = cluster.peek_segment(
                    node_id, _CTX, self._record_offset(vertex), 24)
                values[vertex] = _unpack(raw)[final_epoch]
        converged = steps_run[0] < max_supersteps
        return BSPResult(values=values, supersteps_run=steps_run[0],
                         elapsed_ns=sim.now - start, converged=converged,
                         remote_reads=remote_reads[0])
