"""A mini-Pregel: Bulk Synchronous Processing over soNUMA.

The paper frames its application study in the BSP model [57] and
attributes the bulk variant's communication pattern to Pregel [35]:
"every node computes its own portion of the dataset (range of vertices)
and then synchronizes with other participants, before proceeding with
the next iteration (so-called superstep). ... This implementation
leverages aggregation mechanisms and exchanges ranks between nodes at
the end of each superstep, after the barrier."

:class:`BSPEngine` packages that pattern as a reusable framework:

* vertex state lives in each owner's context segment (one fixed-size
  record per vertex, two epochs for double buffering);
* each superstep starts with a barrier, pulls every peer's partition
  with one multi-line ``rmc_read_async`` per peer (the bisection-
  bandwidth-limited shuffle), then runs the user's *vertex program*
  against local + mirrored state;
* a vertex program is a plain object with ``init(vertex) -> value`` and
  ``update(vertex, neighbor_values) -> value``; the engine handles
  packing, mirrors, epochs, and convergence (stop when no vertex
  changed, decided collectively).

Two programs ship with the engine: :class:`PageRankProgram`
(cross-checked against :func:`repro.apps.graph.pagerank_reference`) and
:class:`MinLabelProgram` (connected components via label propagation).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from ..cluster.cluster import Cluster, ClusterConfig
from ..resilience.checkpoint import HEADER_BYTES, StripedCheckpointStore
from ..resilience.coding import parse_checkpoint_mode
from ..runtime.barrier import Barrier, NodeEvicted, RankFailed
from ..runtime.qp_api import RemoteOpFailed, RMCSession
from ..sim import (PartitionError, PartitionPlan, default_transport,
                   plan_from_spec, run_partitioned)
from .graph import Graph, partition_random

__all__ = ["VertexProgram", "BSPEngine", "BSPResult",
           "FaultTolerantBSPEngine", "PageRankProgram", "MinLabelProgram"]

_CTX = 1

#: One cache line per vertex: value[epoch 0] f64, value[epoch 1] f64,
#: auxiliary u64 (program-defined; PageRank stores the out-degree).
RECORD_BYTES = 64

#: Fabric-carried FT-BSP control words (partitioned runs only): one
#: cache line each, offsets relative to the engine's ``ctrl_base``.
#: Every word lives in its writer's own segment (single-writer rule);
#: peers read it with one-sided ``read_sync`` over the fabric, so the
#: protocol is identical no matter which rank simulates which node.
_CTRL_FLAG = 0         # u64: 1 + last superstep at which this node changed
_CTRL_VERDICT = 64     # u64: ((step+1) << 1) | proceed, decider-written
_CTRL_ARRIVED = 128    # u64: 1 + barrier generation at the rendezvous
_CTRL_DURABLE = 192    # u64: 1 + durable local checkpoint header
_CTRL_ADOPT_DUR = 256  # u64: 1 + durable peer-region header
_CTRL_PLAN = 320       # 3 x u64: (dead-mask << 1) | 1, restore, generation
_CTRL_FINISHED = 384   # u64: 1 once this node returned successfully


def _paired_cluster_config(config: Optional[ClusterConfig],
                           num_nodes: int) -> ClusterConfig:
    """The caller's config upgraded to paired flow control, which the
    partition cut requires (see fabric.partition)."""
    config = config or ClusterConfig(num_nodes=num_nodes)
    if config.fabric.flow_control != "paired":
        config = _dc_replace(
            config, fabric=_dc_replace(config.fabric,
                                       flow_control="paired"))
    return config


class VertexProgram(Protocol):
    """User-supplied per-vertex logic (duck-typed protocol)."""

    #: Computation charged per in-edge scanned (ns).
    edge_compute_ns: float
    #: Computation charged per vertex update (ns).
    vertex_compute_ns: float

    def init(self, graph: Graph, vertex: int) -> float:
        """Initial value of a vertex."""

    def aux(self, graph: Graph, vertex: int) -> int:
        """Per-vertex auxiliary integer packed alongside the value."""

    def update(self, graph: Graph, vertex: int,
               neighbor_values: Sequence[tuple]) -> float:
        """New value from [(value, aux), ...] of the in-neighbors."""


@dataclass
class BSPResult:
    """Outcome of a BSP run."""

    values: List[float]
    supersteps_run: int
    elapsed_ns: float
    converged: bool
    remote_reads: int
    #: Fault-tolerant runs only: crash-recovery rounds executed.
    recoveries: int = 0
    #: Fault-tolerant runs only: checkpoints taken (across all ranks).
    checkpoints: int = 0


class PageRankProgram:
    """The paper's PageRank update as a vertex program."""

    edge_compute_ns = 2.0
    vertex_compute_ns = 3.0

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def init(self, graph: Graph, vertex: int) -> float:
        return 1.0 / graph.num_vertices

    def aux(self, graph: Graph, vertex: int) -> int:
        return graph.out_degree[vertex]

    def update(self, graph: Graph, vertex: int, neighbor_values) -> float:
        total = 0.0
        for value, out_degree in neighbor_values:
            total += value / out_degree
        return (1.0 - self.damping) / graph.num_vertices \
            + self.damping * total


class MinLabelProgram:
    """Connected components by minimum-label propagation.

    Treats edges as undirected for labeling purposes would require
    reverse adjacency; over in-neighbors alone this computes the
    minimum label reachable *forward* into each vertex — the classic
    label-propagation building block. Converges when no label changes.
    """

    edge_compute_ns = 1.5
    vertex_compute_ns = 2.0

    def init(self, graph: Graph, vertex: int) -> float:
        return float(vertex)

    def aux(self, graph: Graph, vertex: int) -> int:
        return 1

    def update(self, graph: Graph, vertex: int, neighbor_values) -> float:
        best = float(vertex)
        for value, _aux in neighbor_values:
            if value < best:
                best = value
        return best


def _pack(value0: float, value1: float, aux: int) -> bytes:
    body = struct.pack("<ddQ", value0, value1, aux)
    return body + bytes(RECORD_BYTES - len(body))


def _unpack(raw: bytes):
    return struct.unpack_from("<ddQ", raw)


class BSPEngine:
    """Runs a vertex program over a partitioned graph on a cluster."""

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7, plan: Optional[PartitionPlan] = None,
                 rank: int = 0):
        self.graph = graph
        self.num_nodes = num_nodes
        self.partition = partition_random(graph, num_nodes, seed=seed)
        #: Parallel-engine partition plan (None for a serial cluster).
        #: Per-rank instances own only ``plan.nodes_of(rank)``.
        self.plan = plan
        self.rank = rank
        max_part = max(len(m) for m in self.partition.members)
        segment = self._segment_bytes(max_part)
        self.cluster = Cluster(config=cluster_config
                               or ClusterConfig(num_nodes=num_nodes),
                               partition=plan, rank=rank)
        self.owned = (list(plan.nodes_of(rank)) if plan is not None
                      else list(range(num_nodes)))
        self.gctx = self.cluster.create_global_context(_CTX, segment)
        self.sessions = {
            n: RMCSession(self.cluster.nodes[n].core, self.gctx.qp(n),
                          self.gctx.entry(n))
            for n in self.owned
        }
        self.barriers = {
            n: Barrier(self.sessions[n], n, list(range(num_nodes)))
            for n in self.owned
        }

    def _segment_bytes(self, max_part: int) -> int:
        """Per-node context segment size (subclasses add regions)."""
        return max_part * RECORD_BYTES + (1 << 20)

    def _record_offset(self, vertex: int) -> int:
        return self.partition.local_index[vertex] * RECORD_BYTES

    def run(self, program: VertexProgram, max_supersteps: int,
            stop_on_convergence: bool = True,
            tolerance: float = 0.0) -> BSPResult:
        """Execute up to ``max_supersteps`` supersteps of ``program``."""
        graph, partition = self.graph, self.partition
        cluster = self.cluster
        sim = cluster.sim

        for node_id in range(self.num_nodes):
            for vertex in partition.members[node_id]:
                cluster.poke_segment(
                    node_id, _CTX, self._record_offset(vertex),
                    _pack(program.init(graph, vertex), 0.0,
                          program.aux(graph, vertex)))

        remote_reads = [0]
        steps_run = [0]
        # changed[n] flags per superstep. Node 0 alone turns them into
        # the collective proceed/stop decision between the two barriers
        # that frame each superstep start, so every worker sees the same
        # verdict (single-writer rule; no read/write races).
        changed: Dict[int, bool] = {n: True for n in range(self.num_nodes)}
        proceed = [True]

        def worker(node_id: int):
            session = self.sessions[node_id]
            barrier = self.barriers[node_id]
            core = session.core
            space = session.space
            seg_base = session.ctx.segment.base_vaddr
            mine = partition.members[node_id]
            peers = [p for p in range(self.num_nodes) if p != node_id]
            mirrors = {
                p: session.alloc_buffer(
                    max(len(partition.members[p]), 1) * RECORD_BYTES)
                for p in peers
            }
            for step in range(max_supersteps):
                yield from barrier.wait()          # changed[] is final
                if node_id == 0:
                    proceed[0] = any(changed[n]
                                     for n in range(self.num_nodes))
                    for n in range(self.num_nodes):
                        changed[n] = False
                yield from barrier.wait()          # decision visible
                if stop_on_convergence and not proceed[0]:
                    break
                if node_id == 0:
                    steps_run[0] = step + 1

                # Shuffle: one bulk read per peer, all overlapped.
                for p in peers:
                    nbytes = len(partition.members[p]) * RECORD_BYTES
                    if nbytes == 0:
                        continue
                    yield from session.wait_for_slot()
                    yield from session.read_async(p, 0, mirrors[p], nbytes)
                    remote_reads[0] += 1
                yield from session.drain_cq()

                read_at = step % 2
                for vertex in mine:
                    yield core.compute(program.vertex_compute_ns)
                    inputs = []
                    for u in graph.in_neighbors[vertex]:
                        owner = partition.owner[u]
                        if owner == node_id:
                            vaddr = seg_base + self._record_offset(u)
                        else:
                            vaddr = mirrors[owner] + self._record_offset(u)
                        raw = yield from core.mem_read(space, vaddr, 24)
                        values = _unpack(raw)
                        inputs.append((values[read_at], values[2]))
                        yield core.compute(program.edge_compute_ns)
                    new_value = program.update(graph, vertex, inputs)
                    old_raw = session.buffer_peek(
                        seg_base + self._record_offset(vertex), 24)
                    old_value = _unpack(old_raw)[read_at]
                    if abs(new_value - old_value) > tolerance:
                        changed[node_id] = True
                    yield from core.mem_write(
                        space,
                        seg_base + self._record_offset(vertex)
                        + 8 * ((step + 1) % 2),
                        struct.pack("<d", new_value))
            yield from barrier.wait()

        start = sim.now
        procs = [sim.process(worker(n), name=f"bsp{n}")
                 for n in range(self.num_nodes)]
        sim.run()
        for proc in procs:
            if not proc.ok:  # pragma: no cover
                raise proc.value

        final_epoch = steps_run[0] % 2
        values = [0.0] * graph.num_vertices
        for node_id, members in enumerate(partition.members):
            for vertex in members:
                raw = cluster.peek_segment(
                    node_id, _CTX, self._record_offset(vertex), 24)
                values[vertex] = _unpack(raw)[final_epoch]
        converged = steps_run[0] < max_supersteps
        return BSPResult(values=values, supersteps_run=steps_run[0],
                         elapsed_ns=sim.now - start, converged=converged,
                         remote_reads=remote_reads[0])


class FaultTolerantBSPEngine(BSPEngine):
    """BSP with in-memory checkpointing and crash-restart recovery.

    Three checkpoint modes share one API (``checkpoint_mode``):

    * ``"replica"`` (default): every ``checkpoint_every`` supersteps
      each rank snapshots its full record array twice — a local copy
      (its own restore source) and a one-sided bulk write into its ring
      successor's memory (the restore source for *its* partition if the
      rank dies). Storage cost: 2x the partition.
    * ``"xor"`` / ``"xor(k)"``: the snapshot is split into ``k`` data
      shards plus one XOR parity shard scattered to ``k + 1`` distinct
      healthy peers (single-loss tolerant, ``(k+1)/k`` storage).
    * ``"rs(k,m)"``: GF(256) Reed-Solomon — ``k`` data + ``m`` parity
      shards to ``k + m`` distinct peers; any ``m`` simultaneous losses
      are survivable at ``(k+m)/k`` storage.

    Coded modes keep **no** local snapshot — the scattered stripe *is*
    the checkpoint (diskless checkpointing a la Besta & Hoefler's RMA
    fault-tolerance recipe), written through the same one-sided
    :class:`~repro.resilience.checkpoint.StripedCheckpointStore` path
    as every other byte in the system. All modes are double-slotted
    with headers written after the data, so a crash mid-checkpoint
    always leaves one complete older snapshot behind.

    When a node is crashed, the membership layer evicts it within the
    lease and every survivor observes a typed failure — ``RankFailed``
    from the barrier, or an error-completed shuffle read. Survivors then
    run a recovery round: they quiesce, rendezvous, compute the restore
    point ``R`` (the minimum durable checkpoint across all participants
    — always reachable, because the barrier bounds progress skew to one
    superstep), restore their own partitions (replica: local snapshot;
    coded: rebuild from any ``k`` surviving shards), and each dead
    rank's partition is *adopted* by a live rank (replica: the ring
    successor that already holds the copy; coded: a distinct live rank
    per dead rank, which reconstructs the stripe). In coded modes the
    survivors then **re-encode and re-scatter** their stripes across
    the remaining healthy peers — the dead node held shards of other
    ranks' stripes, and the re-scatter restores the coding invariant
    before execution resumes. Shuffle reads for dead partitions are
    redirected to the adopters, dead ranks are excluded from every
    barrier, and execution resumes at superstep ``R``. Re-execution is
    deterministic, so the final values are bit-for-bit identical to a
    fault-free run — in every mode, at every crash point.

    Modeled shortcuts (documented limits):

    * Snapshot captures and restores are functional (untimed) —
      checkpoint cost is dominated by the modeled remote writes.
    * One failure *incident* per run (an incident may contain several
      simultaneous crashes — coded modes survive up to ``m`` of them,
      replica exactly one that is not ring-adjacent to its checkpoint
      holder). A later second incident is rejected with
      ``RuntimeError``. In replica mode adopted partitions are not
      re-checkpointed; coded modes re-stripe them every checkpoint.
    * A restarted node rejoins the *cluster* (new incarnation/epoch) but
      not the computation; its partition stays with the adopter.
    * Recovery forces one proceed decision, so a crash landing exactly
      on the convergence boundary may re-run one extra superstep — the
      update is idempotent there, so values are unchanged.
    """

    def __init__(self, graph: Graph, num_nodes: int,
                 cluster_config: Optional[ClusterConfig] = None,
                 seed: int = 7, checkpoint_every: int = 1,
                 checkpoint_mode: str = "replica",
                 hb_interval_ns: float = 5_000.0,
                 lease_ns: Optional[float] = None, fault_seed: int = 0,
                 workers: Optional[int] = None,
                 transport: Optional[str] = None,
                 partition="contiguous",
                 crash_schedule: Optional[Sequence[Tuple]] = None,
                 plan: Optional[PartitionPlan] = None, rank: int = 0):
        if num_nodes < 2:
            raise ValueError("fault tolerance needs at least two nodes")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        #: ("replica" | "xor" | "rs", ErasureCode-or-None); parsed
        #: before super().__init__ because _segment_bytes needs it.
        self.checkpoint_mode, self.ckpt_code = parse_checkpoint_mode(
            checkpoint_mode, num_peers=num_nodes - 1)
        #: Parallel-engine knobs: ``workers > 1`` runs the whole engine
        #: on the conservative parallel simulator (one process per
        #: rank); ``partition`` is a plan, "contiguous", or "adaptive";
        #: ``transport=None`` picks the fastest available. Crash
        #: timelines must come through ``crash_schedule`` (a sequence of
        #: ``(victim, at_ns[, restart_after_ns])``) so every rank
        #: replays the identical fault schedule.
        self.workers = int(workers) if workers else 1
        self.transport = transport
        self.partition_spec = partition
        self.crash_schedule = tuple(tuple(entry)
                                    for entry in (crash_schedule or ()))
        if (self.workers > 1 or plan is not None) \
                and self.ckpt_code is not None:
            raise PartitionError(
                "partitioned fault-tolerant BSP supports replica "
                "checkpoints only (coded stripes reconstruct by peeking "
                "remote segments)")
        if self.workers > 1:
            # Deferred: per-rank engines (plan/rank set) are built
            # inside run_partitioned's worker processes; this object is
            # only the front-end that merges their results.
            self._deferred = dict(cluster_config=cluster_config,
                                  seed=seed,
                                  hb_interval_ns=hb_interval_ns,
                                  lease_ns=lease_ns,
                                  fault_seed=fault_seed)
            self.graph = graph
            self.num_nodes = num_nodes
            self.partition = partition_random(graph, num_nodes, seed=seed)
            self.plan = None
            self.cluster = None
            self.membership = None
            self.controller = None
            self.ckpt_store = None
            self.failed_ranks: Set[int] = set()
            #: engine_stats() of the last partitioned run (transport,
            #: coordination breakdown, per-rank accounting) plus the
            #: merged membership counters.
            self.partitioned_stats: Optional[Dict[str, object]] = None
            return
        super().__init__(graph, num_nodes, cluster_config=cluster_config,
                         seed=seed, plan=plan, rank=rank)
        self.failed_ranks = set()
        self.membership = self.cluster.enable_membership(
            interval_ns=hb_interval_ns, lease_ns=lease_ns,
            on_evict=self._note_eviction)
        self.controller = self.cluster.fault_controller(seed=fault_seed)
        for entry in self.crash_schedule:
            victim, at_ns = entry[0], entry[1]
            restart_after = entry[2] if len(entry) > 2 else None
            self.controller.schedule_crash(victim, at_ns=at_ns,
                                           restart_after_ns=restart_after)
        #: Striped coded checkpoint store (None in replica mode).
        self.ckpt_store: Optional[StripedCheckpointStore] = None
        if self.ckpt_code is not None:
            self.ckpt_store = StripedCheckpointStore(
                self.cluster, _CTX, self.ckpt_code,
                num_sources=num_nodes, shard_base=self.shard_base,
                shard_stride=self.shard_stride,
                hdr_base=self.shard_hdr_base,
                membership=self.membership, controller=self.controller,
                excluded=self.failed_ranks)

    def _segment_bytes(self, max_part: int) -> int:
        """Records + checkpoint regions + the adoption region, all
        below the barrier/messaging lines. Replica mode reserves two
        local and two peer snapshot slots (plus headers); coded modes
        reserve, per source rank, two double-buffered shard slots plus
        header lines — identical offsets on every host, so shard
        placement is pure choice of destination node."""
        stride = max_part * RECORD_BYTES
        self.part_stride = stride
        if self.ckpt_code is None:
            self.local_ckpt_base = stride            # my own snapshots
            self.local_hdr_base = 3 * stride         # 2 x 64B headers
            self.peer_ckpt_base = 3 * stride + 128   # ring predecessor's
            self.peer_hdr_base = 5 * stride + 128    # 2 x 64B headers
            self.adopt_base = 5 * stride + 256       # adopted partition
            base = 6 * stride + 256
            #: Partitioned runs only: one cache line per fabric-carried
            #: control word (see _rank_worker). The serial layout is
            #: untouched so existing serial timings stay bit-identical.
            self.ctrl_base = base
            if self.plan is not None:
                base += 8 * 64
            return base + (1 << 20)
        shard_stride = -(-self.ckpt_code.shard_length(stride) // 64) * 64
        self.shard_stride = shard_stride
        self.shard_base = stride
        self.shard_hdr_base = stride + 2 * self.num_nodes * shard_stride
        self.adopt_base = (self.shard_hdr_base
                           + 2 * self.num_nodes * HEADER_BYTES)
        # Extra headroom beyond the replica layout's 1 MiB: the coded
        # scatter path allocates per-session shard staging buffers.
        return (self.adopt_base + stride + (1 << 20)
                + 2 * self.num_nodes * shard_stride)

    def _note_eviction(self, node_id: int, epoch: int) -> None:
        """Membership eviction callback: once a rank is evicted it is
        failed for the rest of the computation, even if the node later
        restarts and rejoins the cluster."""
        if node_id >= self.num_nodes or node_id in self.failed_ranks:
            return
        self.failed_ranks.add(node_id)
        for barrier in self.barriers.values():
            barrier.note_eviction(node_id)

    # -- checkpoint plumbing (functional reads of durable state) -------------

    def _peek_u64(self, nid: int, offset: int) -> int:
        return int.from_bytes(
            self.cluster.peek_segment(nid, _CTX, offset, 8), "little")

    def _durable_header(self, nid: int, hdr_base: int) -> int:
        """Highest completed checkpoint header in a 2-slot region."""
        return max(self._peek_u64(nid, hdr_base),
                   self._peek_u64(nid, hdr_base + 64))

    def _slot_with_header(self, nid: int, hdr_base: int,
                          header: int) -> int:
        for slot in (0, 1):
            if self._peek_u64(nid, hdr_base + slot * 64) == header:
                return slot
        raise RuntimeError(
            f"node {nid}: no checkpoint slot with header {header}")

    def _init_records(self, program: VertexProgram, rank: int,
                      home_nid: int, base_offset: int) -> None:
        graph = self.graph
        for vertex in self.partition.members[rank]:
            self.cluster.poke_segment(
                home_nid, _CTX, base_offset + self._record_offset(vertex),
                _pack(program.init(graph, vertex), 0.0,
                      program.aux(graph, vertex)))

    def _adopter_of(self, rank: int) -> int:
        succ = (rank + 1) % self.num_nodes
        if succ in self.failed_ranks:
            raise RuntimeError(
                f"ring-adjacent failures: rank {rank}'s checkpoint "
                f"peer {succ} is dead too (single-failure tolerance)")
        return succ

    def _assign_adopters(self, dead: List[int]) -> Dict[int, int]:
        """Coded modes: each dead rank is adopted by a *distinct* live
        rank, scanning the ring forward from its successor (so the
        single-failure assignment matches replica mode's)."""
        adopters: Dict[int, int] = {}
        used: Set[int] = set()
        for d in dead:
            for hop in range(1, self.num_nodes):
                candidate = (d + hop) % self.num_nodes
                if candidate in self.failed_ranks or candidate in used:
                    continue
                adopters[d] = candidate
                used.add(candidate)
                break
            else:
                raise RuntimeError(
                    f"no live adopter available for dead rank {d}")
        return adopters

    def _replica_peer_ok(self, succ: int) -> bool:
        """Membership-consulted placement for replica mode: never ship
        the checkpoint to a gray-degraded or non-live successor (an
        *evicted* successor is already in ``failed_ranks``; coded modes
        run the same consultation inside the store's ``place()``)."""
        if self.controller is not None and self.controller.is_gray(succ):
            return False
        return self.membership.is_live(succ)

    # -- the fault-tolerant run ----------------------------------------------

    def run(self, program: VertexProgram, max_supersteps: int,
            stop_on_convergence: bool = True,
            tolerance: float = 0.0) -> BSPResult:
        if self.workers > 1:
            return self._run_partitioned(program, max_supersteps,
                                         stop_on_convergence, tolerance)
        graph, partition = self.graph, self.partition
        cluster = self.cluster
        sim = cluster.sim
        num_nodes = self.num_nodes
        every = self.checkpoint_every

        for node_id in range(num_nodes):
            self._init_records(program, node_id, node_id, 0)

        remote_reads = [0]
        steps_run = [0]
        recoveries = [0]
        checkpoints = [0]
        changed: Dict[int, bool] = {n: True for n in range(num_nodes)}
        proceed = [True]
        #: rank -> (home node, base offset of its record array). Adoption
        #: redirects a dead rank's home; single writer (the adopter).
        partition_home = {n: (n, 0) for n in range(num_nodes)}
        #: Workers still running (recovery only waits for these).
        active = set(range(num_nodes))
        #: Modeled out-of-band recovery control plane (one incident).
        recovery: Dict[str, object] = {"arrived": {}, "plan": None}
        failed = self.failed_ranks

        def decider() -> int:
            # Lowest live rank makes the collective proceed decision
            # (rank 0 in fault-free runs).
            return min(r for r in range(num_nodes) if r not in failed)

        def raise_errors(session: RMCSession) -> None:
            if session.errors:
                entry = session.errors[0]
                raise RemoteOpFailed(entry.wq_index, entry.error)

        def checkpoint(node_id, session, seg_base, hdr_buf, progress):
            slot = (progress // every) % 2
            if self.ckpt_store is not None:
                # Coded mode: no local snapshot — the scattered stripe
                # IS the checkpoint. Adopted partitions are striped too
                # (source = the adopted rank), so the coding invariant
                # covers every partition after a recovery.
                for rank in range(num_nodes):
                    home, base = partition_home[rank]
                    if home != node_id:
                        continue
                    nbytes = len(partition.members[rank]) * RECORD_BYTES
                    if nbytes == 0:
                        continue
                    data = session.buffer_peek(seg_base + base, nbytes)
                    wrote = yield from self.ckpt_store.write_stripe(
                        session, rank, data, progress, slot)
                    if wrote:
                        checkpoints[0] += 1
                return
            nbytes = len(partition.members[node_id]) * RECORD_BYTES
            if nbytes == 0:
                return
            data = session.buffer_peek(seg_base, nbytes)
            # Local snapshot first: every survivor restores from its own
            # copy, whichever node died.
            cluster.poke_segment(node_id, _CTX,
                                 self.local_ckpt_base
                                 + slot * self.part_stride, data)
            cluster.poke_segment(node_id, _CTX,
                                 self.local_hdr_base + slot * 64,
                                 progress.to_bytes(8, "little"))
            checkpoints[0] += 1
            succ = (node_id + 1) % num_nodes
            if succ in failed or not self._replica_peer_ok(succ):
                return   # checkpoint peer is gone or degraded: keep
                #          local copies only until recovery sorts it out
            # Remote snapshot: bulk one-sided write, then the header —
            # the slot is valid only once its header lands.
            yield from session.wait_for_slot()
            yield from session.write_async(
                succ, self.peer_ckpt_base + slot * self.part_stride,
                seg_base, nbytes)
            yield from session.drain_cq()
            raise_errors(session)
            session.buffer_poke(hdr_buf, progress.to_bytes(8, "little"))
            yield from session.write_sync(
                succ, self.peer_hdr_base + slot * 64, hdr_buf, 8)
            # Same fabric-bytes accounting the coded store keeps, so
            # the modes are comparable in telemetry and ablations.
            cluster.resilience_counters(node_id) \
                .checkpoint_bytes_written += nbytes

        def restore_rank(rank, src_nid, src_ckpt, src_hdr,
                         dst_nid, dst_base, restore_pt):
            if restore_pt == 0:
                self._init_records(program, rank, dst_nid, dst_base)
                return
            nbytes = len(partition.members[rank]) * RECORD_BYTES
            if nbytes == 0:
                return
            slot = self._slot_with_header(src_nid, src_hdr, restore_pt)
            data = cluster.peek_segment(
                src_nid, _CTX, src_ckpt + slot * self.part_stride, nbytes)
            cluster.poke_segment(dst_nid, _CTX, dst_base, data)

        def restore_coded(rank, dst_nid, dst_base, restore_pt):
            """Rebuild ``rank``'s partition at ``restore_pt`` from any k
            surviving shards of its stripe (restore_pt 0: re-init)."""
            if restore_pt == 0:
                self._init_records(program, rank, dst_nid, dst_base)
                return
            nbytes = len(partition.members[rank]) * RECORD_BYTES
            if nbytes == 0:
                return
            data = self.ckpt_store.reconstruct(rank, restore_pt, nbytes)
            cluster.poke_segment(dst_nid, _CTX, dst_base, data)

        def recover(node_id, session, barrier, step):
            # Quiesce: outstanding operations toward the dead node
            # error-complete once the retransmission budget runs out.
            yield from session.drain_cq()
            session.consume_errors()
            # Wait for the control plane's verdict. No eviction within
            # a few leases => the failure was transient (a link flap):
            # state is untouched, retry the same superstep.
            deadline = sim.now + 4 * self.membership.lease_ns
            while not failed and sim.now < deadline:
                yield sim.timeout(self.membership.interval_ns)
            # A live rank that already RETURNED proves the whole run
            # completed: finishing the final rendezvous requires seeing
            # every live rank's arrival there — this one's included. The
            # collective result is fully materialized, so recovery is
            # bookkeeping only: no restore, no re-execution, and no
            # further barrier (the returned rank would never answer one
            # — its arrival line is frozen at the final generation).
            # Only a rank that is actually *up* counts: a crashed worker
            # exits `active` before its eviction lands, and must not
            # masquerade as finished.
            finished = [r for r in range(num_nodes)
                        if r != node_id and r not in failed
                        and r not in active
                        and not self.controller.is_down(r)]
            if finished:
                for d in sorted(failed):
                    barrier.exclude(d)
                return None
            if not failed:
                return step
            if recovery["plan"] is not None \
                    and set(failed) - set(recovery["plan"]["dead"]):
                raise RuntimeError(
                    "second failure incident after recovery: the "
                    "rendezvous state is valid for one incident per run")
            recovery["arrived"][node_id] = barrier.generation
            while recovery["plan"] is None:
                live = [r for r in range(num_nodes)
                        if r not in failed and r in active]
                arrived = recovery["arrived"]
                # Plan only once every rank is accounted for — at the
                # rendezvous or evicted. A simultaneous multi-crash must
                # wait for ALL evictions: a crashed worker may leave
                # `active` before its lease expires, and planning around
                # it too early would treat it as a survivor.
                if node_id == min(live) \
                        and all(r in arrived or r in failed
                                for r in range(num_nodes)):
                    dead = sorted(failed)
                    if self.ckpt_store is not None:
                        # Restore point: minimum durable stripe epoch
                        # over every partition. Skew is barrier-bounded
                        # to one checkpoint, so the double-buffered
                        # slots still hold shards at this epoch.
                        adopters = self._assign_adopters(dead)
                        durables = [self.ckpt_store.durable_epoch(r)
                                    for r in live + dead]
                    else:
                        # Restore point: minimum durable header
                        # anywhere. Progress skew is barrier-bounded,
                        # so every 2-slot region still holds a snapshot
                        # with this header.
                        adopters = {d: self._adopter_of(d) for d in dead}
                        durables = [self._durable_header(
                            r, self.local_hdr_base) for r in live]
                        durables += [self._durable_header(
                            adopters[d], self.peer_hdr_base)
                            for d in dead]
                    recovery["plan"] = {
                        "restore": min(durables),
                        "generation": max(arrived[r] for r in live),
                        "dead": dead,
                        "adopters": adopters,
                    }
                    recoveries[0] += 1
                    break
                yield sim.timeout(self.membership.interval_ns)
            plan = recovery["plan"]
            restore_pt = plan["restore"]
            for d in plan["dead"]:
                barrier.exclude(d)
            if plan["generation"] > barrier.generation:
                barrier.resync_generation(plan["generation"])
            session.consume_errors()
            if self.ckpt_store is not None:
                restore_coded(node_id, node_id, 0, restore_pt)
            else:
                restore_rank(node_id, node_id, self.local_ckpt_base,
                             self.local_hdr_base, node_id, 0, restore_pt)
            for d in plan["dead"]:
                if plan["adopters"][d] != node_id \
                        or partition_home[d][0] == node_id:
                    continue
                if any(h == node_id for r, (h, _) in partition_home.items()
                       if r != node_id and r != d):
                    raise RuntimeError("adoption region already in use: "
                                       "one adoption per surviving rank")
                if self.ckpt_store is not None:
                    restore_coded(d, node_id, self.adopt_base, restore_pt)
                else:
                    restore_rank(d, node_id, self.peer_ckpt_base,
                                 self.peer_hdr_base, node_id,
                                 self.adopt_base, restore_pt)
                partition_home[d] = (node_id, self.adopt_base)
            if self.ckpt_store is not None and restore_pt > 0:
                # Re-scatter: the dead node held shards of surviving
                # ranks' stripes. Each survivor re-encodes its restored
                # (bit-exact) state and scatters fresh shards across the
                # remaining healthy peers, restoring the coding
                # invariant before execution resumes. Shard bytes are
                # deterministic functions of the data, so reads mixing
                # old and new placements stay consistent.
                slot = (restore_pt // every) % 2
                seg_base = session.ctx.segment.base_vaddr
                for rank in range(num_nodes):
                    home, base = partition_home[rank]
                    if home != node_id:
                        continue
                    nbytes = len(partition.members[rank]) * RECORD_BYTES
                    if nbytes == 0:
                        continue
                    data = session.buffer_peek(seg_base + base, nbytes)
                    yield from self.ckpt_store.write_stripe(
                        session, rank, data, restore_pt, slot,
                        rebuilt=True)
            changed[node_id] = True
            proceed[0] = True
            return restore_pt

        def worker(node_id):
            session = self.sessions[node_id]
            barrier = self.barriers[node_id]
            core = session.core
            space = session.space
            seg_base = session.ctx.segment.base_vaddr
            mirrors = {
                r: session.alloc_buffer(
                    max(len(partition.members[r]), 1) * RECORD_BYTES)
                for r in range(num_nodes) if r != node_id
            }
            hdr_buf = session.alloc_buffer(8)
            step = 0
            try:
                while True:
                    try:
                        if step >= max_supersteps:
                            # Final rendezvous. Inside the resilient
                            # loop: a crash racing it sends every
                            # survivor through the same recovery and
                            # re-execution instead of leaving some
                            # returned and some blocked.
                            yield from barrier.wait()
                            return
                        yield from barrier.wait()  # changed[] is final
                        if node_id == decider():
                            proceed[0] = any(changed[n]
                                             for n in range(num_nodes))
                            for n in range(num_nodes):
                                changed[n] = False
                        yield from barrier.wait()  # decision visible
                        if stop_on_convergence and not proceed[0]:
                            yield from barrier.wait()  # final rendezvous
                            return
                        if node_id == decider():
                            steps_run[0] = step + 1

                        # Shuffle: one bulk read per remote-homed rank.
                        for r in range(num_nodes):
                            home, base = partition_home[r]
                            if home == node_id:
                                continue
                            nbytes = (len(partition.members[r])
                                      * RECORD_BYTES)
                            if nbytes == 0:
                                continue
                            yield from session.wait_for_slot()
                            yield from session.read_async(
                                home, base, mirrors[r], nbytes)
                            remote_reads[0] += 1
                        yield from session.drain_cq()
                        raise_errors(session)   # never compute on stale
                        #                         mirror contents

                        read_at = step % 2
                        write_off = 8 * ((step + 1) % 2)
                        for rank in range(num_nodes):
                            home, base = partition_home[rank]
                            if home != node_id:
                                continue
                            for vertex in partition.members[rank]:
                                yield core.compute(
                                    program.vertex_compute_ns)
                                inputs = []
                                for u in graph.in_neighbors[vertex]:
                                    owner = partition.owner[u]
                                    o_home, o_base = partition_home[owner]
                                    rel = self._record_offset(u)
                                    if o_home == node_id:
                                        vaddr = seg_base + o_base + rel
                                    else:
                                        vaddr = mirrors[owner] + rel
                                    raw = yield from core.mem_read(
                                        space, vaddr, 24)
                                    vals = _unpack(raw)
                                    inputs.append((vals[read_at],
                                                   vals[2]))
                                    yield core.compute(
                                        program.edge_compute_ns)
                                new_value = program.update(graph, vertex,
                                                           inputs)
                                rec_vaddr = (seg_base + base
                                             + self._record_offset(vertex))
                                old_value = _unpack(session.buffer_peek(
                                    rec_vaddr, 24))[read_at]
                                if abs(new_value - old_value) > tolerance:
                                    changed[node_id] = True
                                yield from core.mem_write(
                                    space, rec_vaddr + write_off,
                                    struct.pack("<d", new_value))

                        if (step + 1) % every == 0:
                            yield from checkpoint(node_id, session,
                                                  seg_base, hdr_buf,
                                                  step + 1)
                        step += 1
                    except (RankFailed, NodeEvicted, RemoteOpFailed):
                        if barrier.self_evicted or node_id in failed \
                                or self.controller.is_down(node_id):
                            return   # it is me who died
                        step = yield from recover(node_id, session,
                                                  barrier, step)
                        if step is None:
                            return   # run already complete (see recover)
            finally:
                active.discard(node_id)

        start = sim.now
        procs = [sim.process(worker(n), name=f"ftbsp{n}")
                 for n in range(num_nodes)]
        sim.run()
        for proc in procs:
            if not proc.ok:
                raise proc.value

        final_epoch = steps_run[0] % 2
        values = [0.0] * graph.num_vertices
        for rank in range(num_nodes):
            home, base = partition_home[rank]
            raw_partition = None
            if rank in failed and home == rank:
                # Died without being adopted (i.e. after its last
                # superstep): its freshest surviving state is its last
                # durable checkpoint — the remote copy at its ring
                # successor (replica) or its reconstructed stripe
                # (coded; raises CheckpointUnrecoverable when more than
                # m shards died with it).
                if self.ckpt_store is not None:
                    durable = self.ckpt_store.durable_epoch(rank)
                    if durable < steps_run[0]:
                        raise RuntimeError(
                            f"rank {rank} died un-adopted with a stale "
                            f"checkpoint ({durable} < {steps_run[0]})")
                    nbytes = len(partition.members[rank]) * RECORD_BYTES
                    raw_partition = self.ckpt_store.reconstruct(
                        rank, durable, nbytes)
                else:
                    succ = self._adopter_of(rank)
                    durable = self._durable_header(succ,
                                                   self.peer_hdr_base)
                    if durable < steps_run[0]:
                        raise RuntimeError(
                            f"rank {rank} died un-adopted with a stale "
                            f"checkpoint ({durable} < {steps_run[0]})")
                    slot = self._slot_with_header(
                        succ, self.peer_hdr_base, durable)
                    home = succ
                    base = self.peer_ckpt_base + slot * self.part_stride
            for vertex in partition.members[rank]:
                rel = self._record_offset(vertex)
                if raw_partition is not None:
                    raw = raw_partition[rel:rel + 24]
                else:
                    raw = cluster.peek_segment(home, _CTX, base + rel, 24)
                values[vertex] = _unpack(raw)[final_epoch]
        converged = steps_run[0] < max_supersteps
        return BSPResult(values=values, supersteps_run=steps_run[0],
                         elapsed_ns=sim.now - start, converged=converged,
                         remote_reads=remote_reads[0],
                         recoveries=recoveries[0],
                         checkpoints=checkpoints[0])

    # -- the partitioned (multi-process) fault-tolerant run ------------------

    def _run_partitioned(self, program: VertexProgram, max_supersteps: int,
                         stop_on_convergence: bool,
                         tolerance: float) -> BSPResult:
        """Front-end of a ``workers > 1`` run: build one per-rank engine
        inside each worker process, execute on the conservative parallel
        simulator, and merge the per-rank results. The vertex-level model
        is identical to the serial fault-tolerant path except that the
        shared-dict control plane (``changed``/``proceed``/``recovery``)
        is carried over the fabric instead (see :meth:`_rank_worker`), so
        the computed values are bit-for-bit the serial values and the run
        itself is bit-identical across worker counts and transports."""
        deferred = self._deferred
        num_nodes = self.num_nodes
        config = _paired_cluster_config(deferred["cluster_config"],
                                        num_nodes)

        def build(rank: int, build_plan: PartitionPlan):
            engine = FaultTolerantBSPEngine(
                self.graph, num_nodes, cluster_config=config,
                seed=deferred["seed"],
                checkpoint_every=self.checkpoint_every,
                checkpoint_mode="replica",
                hb_interval_ns=deferred["hb_interval_ns"],
                lease_ns=deferred["lease_ns"],
                fault_seed=deferred["fault_seed"],
                crash_schedule=self.crash_schedule,
                plan=build_plan, rank=rank)
            return engine._start_rank(program, max_supersteps,
                                      stop_on_convergence, tolerance)

        plan = plan_from_spec(self.partition_spec, build, num_nodes,
                              min(self.workers, num_nodes))
        transport = self.transport or default_transport(plan.num_parts)
        run = run_partitioned(build, plan, transport=transport)
        parts = [run.results[r] for r in sorted(run.results)]
        values = [0.0] * self.graph.num_vertices
        for part in parts:
            for vertex, value in part["values"].items():
                values[vertex] = value
        steps_run = max(part["steps_run"] for part in parts)
        stats = run.engine_stats()
        stats["membership"] = {
            "evictions": max(part["evictions"] for part in parts),
            "rejoins": max(part["rejoins"] for part in parts),
        }
        self.partitioned_stats = stats
        return BSPResult(
            values=values, supersteps_run=steps_run,
            elapsed_ns=run.final_time,
            converged=steps_run < max_supersteps,
            remote_reads=sum(part["remote_reads"] for part in parts),
            recoveries=sum(part["recoveries"] for part in parts),
            checkpoints=sum(part["checkpoints"] for part in parts))

    def _start_rank(self, program: VertexProgram, max_supersteps: int,
                    stop_on_convergence: bool, tolerance: float):
        """Builder payload for :func:`repro.sim.run_partitioned`: spawn
        a worker per *owned* node and return ``(sim, fabric, finalize)``.
        Called on per-rank engines (``plan``/``rank`` set)."""
        sim = self.cluster.sim
        st = self._rank_state = {
            #: rank -> (home node, record-array base). Updated on every
            #: rank during recovery: the adopter assignment is a pure
            #: function of the replicated dead set.
            "partition_home": {n: (n, 0) for n in range(self.num_nodes)},
            "adopted": set(),
            "steps_run": [0],
            "remote_reads": [0],
            "recoveries": [0],
            "checkpoints": [0],
            "recovery_plan": [None],
        }
        for node_id in self.owned:
            self._init_records(program, node_id, node_id, 0)
        procs = [sim.process(self._rank_worker(n, program, max_supersteps,
                                               stop_on_convergence,
                                               tolerance),
                             name=f"ftbsp{n}")
                 for n in self.owned]

        def finalize():
            for proc in procs:
                if not proc.triggered:
                    raise RuntimeError(
                        f"{proc.name} did not finish (deadlock?)")
                if not proc.ok:
                    raise proc.value
            return {
                "values": self._collect_rank(),
                "steps_run": st["steps_run"][0],
                "remote_reads": st["remote_reads"][0],
                "recoveries": st["recoveries"][0],
                "checkpoints": st["checkpoints"][0],
                "evictions": self.membership.evictions,
                "rejoins": self.membership.rejoins,
            }

        return sim, self.cluster.fabric, finalize

    def _collect_rank(self) -> Dict[int, float]:
        """Final values of every partition this rank is responsible for
        emitting: partitions homed on a live owned node, plus a dead
        un-adopted rank's last durable checkpoint when this rank owns
        its ring successor (mirrors the serial collection)."""
        st = self._rank_state
        failed = self.failed_ranks
        final_epoch = st["steps_run"][0] % 2
        values: Dict[int, float] = {}
        for rank in range(self.num_nodes):
            home, base = st["partition_home"][rank]
            if rank in failed and home == rank:
                succ = self._adopter_of(rank)
                if succ not in self.owned:
                    continue
                durable = self._durable_header(succ, self.peer_hdr_base)
                if durable < st["steps_run"][0]:
                    raise RuntimeError(
                        f"rank {rank} died un-adopted with a stale "
                        f"checkpoint ({durable} < {st['steps_run'][0]})")
                slot = self._slot_with_header(succ, self.peer_hdr_base,
                                              durable)
                home = succ
                base = self.peer_ckpt_base + slot * self.part_stride
            elif home not in self.owned or home in failed:
                continue
            for vertex in self.partition.members[rank]:
                rel = self._record_offset(vertex)
                raw = self.cluster.peek_segment(home, _CTX, base + rel, 24)
                values[vertex] = _unpack(raw)[final_epoch]
        return values

    def _rank_worker(self, node_id: int, program: VertexProgram,
                     max_supersteps: int, stop_on_convergence: bool,
                     tolerance: float):
        """The serial fault-tolerant worker with its shared-dict control
        plane replaced by fabric-carried control words, so it runs
        unmodified under any partitioning:

        * ``changed[n]`` -> each node's FLAG word: ``1 + s`` where ``s``
          is the last superstep whose compute changed the node. Flags
          are monotone (never reset); the decider's proceed test becomes
          ``any(flag >= step)``, which is equivalent to the serial reset
          semantics because under ``stop_on_convergence`` a partition
          unchanged at ``step - 1`` is unchanged at every later step of
          this (deterministic) execution.
        * ``proceed[0]`` -> the decider's VERDICT word, generation-
          stamped with ``step + 1`` so a reader can detect a torn round.
        * the ``recovery`` dict -> ARRIVED / DURABLE / ADOPT_DUR words
          per node plus the planner's PLAN line.

        Writes land in the writer's own segment (untimed pokes — the
        modeled out-of-band control plane, same as the serial shared
        dicts); every read of a *peer's* word is a timed one-sided
        ``read_sync`` even when the peer is simulated by this same rank,
        keeping the event timeline independent of the partitioning."""
        graph, partition = self.graph, self.partition
        cluster = self.cluster
        sim = cluster.sim
        num_nodes = self.num_nodes
        every = self.checkpoint_every
        failed = self.failed_ranks
        st = self._rank_state
        partition_home = st["partition_home"]
        session = self.sessions[node_id]
        barrier = self.barriers[node_id]
        core = session.core
        space = session.space
        seg_base = session.ctx.segment.base_vaddr
        mirrors = {
            r: session.alloc_buffer(
                max(len(partition.members[r]), 1) * RECORD_BYTES)
            for r in range(num_nodes) if r != node_id
        }
        hdr_buf = session.alloc_buffer(8)
        ctrl_buf = session.alloc_buffer(64)
        ctrl_base = self.ctrl_base

        def decider() -> int:
            return min(r for r in range(num_nodes) if r not in failed)

        def poke_word(offset: int, value: int) -> None:
            cluster.poke_segment(node_id, _CTX, ctrl_base + offset,
                                 int(value).to_bytes(8, "little"))

        def peek_word(offset: int) -> int:
            return int.from_bytes(
                cluster.peek_segment(node_id, _CTX, ctrl_base + offset, 8),
                "little")

        def read_ctrl(peer: int, offset: int, nbytes: int = 8):
            # Timed fabric read of a peer's control word — always over
            # the fabric, never a local peek, so the model is identical
            # under every partitioning.
            yield from session.wait_for_slot()
            yield from session.read_sync(peer, ctrl_base + offset,
                                         ctrl_buf, nbytes)
            return session.buffer_peek(ctrl_buf, nbytes)

        def read_ctrl_word(peer: int, offset: int):
            raw = yield from read_ctrl(peer, offset)
            return int.from_bytes(raw, "little")

        def raise_errors() -> None:
            if session.errors:
                entry = session.errors[0]
                raise RemoteOpFailed(entry.wq_index, entry.error)

        def checkpoint(progress: int):
            slot = (progress // every) % 2
            nbytes = len(partition.members[node_id]) * RECORD_BYTES
            if nbytes == 0:
                return
            data = session.buffer_peek(seg_base, nbytes)
            cluster.poke_segment(node_id, _CTX,
                                 self.local_ckpt_base
                                 + slot * self.part_stride, data)
            cluster.poke_segment(node_id, _CTX,
                                 self.local_hdr_base + slot * 64,
                                 progress.to_bytes(8, "little"))
            st["checkpoints"][0] += 1
            succ = (node_id + 1) % num_nodes
            if succ in failed or not self._replica_peer_ok(succ):
                return
            yield from session.wait_for_slot()
            yield from session.write_async(
                succ, self.peer_ckpt_base + slot * self.part_stride,
                seg_base, nbytes)
            yield from session.drain_cq()
            raise_errors()
            session.buffer_poke(hdr_buf, progress.to_bytes(8, "little"))
            yield from session.write_sync(
                succ, self.peer_hdr_base + slot * 64, hdr_buf, 8)
            cluster.resilience_counters(node_id) \
                .checkpoint_bytes_written += nbytes

        def restore_rank(rank, src_ckpt, src_hdr, dst_base, restore_pt):
            # Node-local in every partitioned case: survivors restore
            # from their own snapshots, adopters from their own peer
            # (ring-predecessor) region.
            if restore_pt == 0:
                self._init_records(program, rank, node_id, dst_base)
                return
            nbytes = len(partition.members[rank]) * RECORD_BYTES
            if nbytes == 0:
                return
            slot = self._slot_with_header(node_id, src_hdr, restore_pt)
            data = cluster.peek_segment(
                node_id, _CTX, src_ckpt + slot * self.part_stride, nbytes)
            cluster.poke_segment(node_id, _CTX, dst_base, data)

        def finished_exit():
            for d in sorted(failed):
                barrier.exclude(d)
            poke_word(_CTRL_FINISHED, 1)
            return None

        def recover(step: int):
            # Quiesce: outstanding operations toward the dead node
            # error-complete once the retransmission budget runs out.
            yield from session.drain_cq()
            session.consume_errors()
            # Wait for the eviction verdict; none within a few leases
            # means the failure was transient — retry the superstep.
            deadline = sim.now + 4 * self.membership.lease_ns
            while not failed and sim.now < deadline:
                yield sim.timeout(self.membership.interval_ns)
            # A live peer whose FINISHED word is set already returned:
            # the collective result is materialized, recovery is
            # bookkeeping only (see the serial path for the argument).
            for r in range(num_nodes):
                if r == node_id or r in failed \
                        or self.controller.is_down(r):
                    continue
                try:
                    word = yield from read_ctrl_word(r, _CTRL_FINISHED)
                except RemoteOpFailed:
                    session.consume_errors()
                    continue
                if word:
                    return finished_exit()
            if not failed:
                return step
            if st["recovery_plan"][0] is not None \
                    and set(failed) - set(st["recovery_plan"][0]["dead"]):
                raise RuntimeError(
                    "second failure incident after recovery: the "
                    "rendezvous state is valid for one incident per run")
            # Rendezvous: publish durable headers, then the arrival —
            # the planner reads them only after seeing the arrival.
            poke_word(_CTRL_DURABLE,
                      1 + self._durable_header(node_id,
                                               self.local_hdr_base))
            poke_word(_CTRL_ADOPT_DUR,
                      1 + self._durable_header(node_id,
                                               self.peer_hdr_base))
            poke_word(_CTRL_ARRIVED, 1 + barrier.generation)
            plan = None
            while plan is None:
                live = [r for r in range(num_nodes) if r not in failed]
                if node_id == min(live):
                    # Planner: wait until every live rank has arrived.
                    # A crashed-but-not-yet-evicted rank reads as 0 (or
                    # fails the read) and keeps the plan on hold — the
                    # serial "all accounted for" condition.
                    arrived = {node_id: peek_word(_CTRL_ARRIVED)}
                    waiting_on = None
                    for r in live:
                        if r == node_id:
                            continue
                        try:
                            word = yield from read_ctrl_word(
                                r, _CTRL_ARRIVED)
                        except RemoteOpFailed:
                            session.consume_errors()
                            word = 0
                        if word == 0:
                            waiting_on = r
                            break
                        arrived[r] = word
                    if waiting_on is not None:
                        # The missing rank may have returned instead
                        # (crash racing the final rendezvous).
                        try:
                            word = yield from read_ctrl_word(
                                waiting_on, _CTRL_FINISHED)
                        except RemoteOpFailed:
                            session.consume_errors()
                            word = 0
                        if word:
                            return finished_exit()
                    else:
                        dead = sorted(failed)
                        adopters = {d: self._adopter_of(d) for d in dead}
                        durables = []
                        for r in live:
                            if r == node_id:
                                durables.append(
                                    peek_word(_CTRL_DURABLE) - 1)
                            else:
                                word = yield from read_ctrl_word(
                                    r, _CTRL_DURABLE)
                                durables.append(word - 1)
                        for d in dead:
                            if adopters[d] == node_id:
                                durables.append(
                                    peek_word(_CTRL_ADOPT_DUR) - 1)
                            else:
                                word = yield from read_ctrl_word(
                                    adopters[d], _CTRL_ADOPT_DUR)
                                durables.append(word - 1)
                        plan = {"restore": min(durables),
                                "generation": max(arrived.values()) - 1,
                                "dead": dead, "adopters": adopters}
                        mask = sum(1 << d for d in dead)
                        cluster.poke_segment(
                            node_id, _CTX, ctrl_base + _CTRL_PLAN,
                            struct.pack("<3Q", (mask << 1) | 1,
                                        plan["restore"],
                                        plan["generation"]))
                        st["recoveries"][0] += 1
                        break
                else:
                    # Follower: poll the planner's PLAN line (the
                    # planner identity is recomputed each round — an
                    # eviction may change it) until it turns valid.
                    word = 0
                    try:
                        raw = yield from read_ctrl(min(live), _CTRL_PLAN,
                                                   24)
                        word, restore, generation = struct.unpack(
                            "<3Q", raw)
                    except RemoteOpFailed:
                        session.consume_errors()
                    if word:
                        dead = sorted(failed)
                        if (word >> 1) != sum(1 << d for d in dead):
                            raise RuntimeError(
                                "recovery plan covers a different dead "
                                "set than this rank observed")
                        plan = {"restore": restore,
                                "generation": generation, "dead": dead,
                                "adopters": {d: self._adopter_of(d)
                                             for d in dead}}
                        break
                    try:
                        word = yield from read_ctrl_word(
                            min(live), _CTRL_FINISHED)
                    except RemoteOpFailed:
                        session.consume_errors()
                        word = 0
                    if word:
                        return finished_exit()
                yield sim.timeout(self.membership.interval_ns)
            st["recovery_plan"][0] = plan
            restore_pt = plan["restore"]
            for d in plan["dead"]:
                barrier.exclude(d)
            if plan["generation"] > barrier.generation:
                barrier.resync_generation(plan["generation"])
            session.consume_errors()
            restore_rank(node_id, self.local_ckpt_base,
                         self.local_hdr_base, 0, restore_pt)
            for d in plan["dead"]:
                adopter = plan["adopters"][d]
                if adopter == node_id and d not in st["adopted"]:
                    if any(h == node_id
                           for r, (h, _) in partition_home.items()
                           if r != node_id and r != d):
                        raise RuntimeError(
                            "adoption region already in use: one "
                            "adoption per surviving rank")
                    restore_rank(d, self.peer_ckpt_base,
                                 self.peer_hdr_base, self.adopt_base,
                                 restore_pt)
                    st["adopted"].add(d)
                # Every rank redirects reads for the dead partition to
                # its adopter — the assignment is a pure function of the
                # replicated dead set, so no agreement message needed.
                partition_home[d] = (adopter, self.adopt_base)
            # Force one proceed decision after the rollback (the serial
            # path's changed/proceed := True).
            if peek_word(_CTRL_FLAG) < restore_pt:
                poke_word(_CTRL_FLAG, restore_pt)
            return restore_pt

        step = 0
        while True:
            try:
                if step >= max_supersteps:
                    yield from barrier.wait()   # final rendezvous
                    poke_word(_CTRL_FINISHED, 1)
                    return
                yield from barrier.wait()       # flags are final
                dec = decider()
                proceed = None
                if node_id == dec:
                    proceed = peek_word(_CTRL_FLAG) >= step
                    for r in range(num_nodes):
                        if r == node_id or r in failed:
                            continue
                        word = yield from read_ctrl_word(r, _CTRL_FLAG)
                        if word >= step:
                            proceed = True
                    poke_word(_CTRL_VERDICT,
                              ((step + 1) << 1) | int(proceed))
                yield from barrier.wait()       # verdict is visible
                if node_id != dec:
                    word = yield from read_ctrl_word(dec, _CTRL_VERDICT)
                    if (word >> 1) != step + 1:
                        raise RuntimeError(
                            f"verdict generation mismatch: "
                            f"{word >> 1} != {step + 1}")
                    proceed = bool(word & 1)
                if stop_on_convergence and not proceed:
                    yield from barrier.wait()   # final rendezvous
                    poke_word(_CTRL_FINISHED, 1)
                    return
                st["steps_run"][0] = step + 1

                # Shuffle: one bulk read per remote-homed rank.
                for r in range(num_nodes):
                    home, base = partition_home[r]
                    if home == node_id:
                        continue
                    nbytes = len(partition.members[r]) * RECORD_BYTES
                    if nbytes == 0:
                        continue
                    yield from session.wait_for_slot()
                    yield from session.read_async(home, base, mirrors[r],
                                                  nbytes)
                    st["remote_reads"][0] += 1
                yield from session.drain_cq()
                raise_errors()

                read_at = step % 2
                write_off = 8 * ((step + 1) % 2)
                for rank in range(num_nodes):
                    home, base = partition_home[rank]
                    if home != node_id:
                        continue
                    for vertex in partition.members[rank]:
                        yield core.compute(program.vertex_compute_ns)
                        inputs = []
                        for u in graph.in_neighbors[vertex]:
                            owner = partition.owner[u]
                            o_home, o_base = partition_home[owner]
                            rel = self._record_offset(u)
                            if o_home == node_id:
                                vaddr = seg_base + o_base + rel
                            else:
                                vaddr = mirrors[owner] + rel
                            raw = yield from core.mem_read(space, vaddr,
                                                           24)
                            vals = _unpack(raw)
                            inputs.append((vals[read_at], vals[2]))
                            yield core.compute(program.edge_compute_ns)
                        new_value = program.update(graph, vertex, inputs)
                        rec_vaddr = (seg_base + base
                                     + self._record_offset(vertex))
                        old_value = _unpack(session.buffer_peek(
                            rec_vaddr, 24))[read_at]
                        if abs(new_value - old_value) > tolerance \
                                and peek_word(_CTRL_FLAG) < step + 1:
                            poke_word(_CTRL_FLAG, step + 1)
                        yield from core.mem_write(
                            space, rec_vaddr + write_off,
                            struct.pack("<d", new_value))

                if (step + 1) % every == 0:
                    yield from checkpoint(step + 1)
                step += 1
            except (RankFailed, NodeEvicted, RemoteOpFailed):
                if barrier.self_evicted or node_id in failed \
                        or self.controller.is_down(node_id):
                    return   # it is me who died
                step = yield from recover(step)
                if step is None:
                    return   # run already complete (see recover)
