"""Applications: graph substrate, PageRank x3, BFS x2, key-value store."""

from .bfs import BFSResult, bfs_reference, run_bfs_fine, run_bfs_push
from .bsp import (
    BSPEngine,
    BSPResult,
    FaultTolerantBSPEngine,
    MinLabelProgram,
    PageRankProgram,
)
from .transactions import AccountStore, TransactionClient, run_transfer_mix
from .graph import (
    Graph,
    Partition,
    pagerank_reference,
    partition_random,
    zipf_graph,
)
from .kv_harness import KV_CLIENT, KV_PRIMARY, run_kv_failover
from .kvstore import (
    AvailabilityStats,
    CodedKVServer,
    FailoverKVClient,
    KVClient,
    KVServer,
    KVStats,
    ReplicatedKVServer,
)
from .pagerank import (
    PageRankResult,
    PageRankTiming,
    VERTEX_BYTES,
    run_shm,
    run_sonuma_bulk,
    run_sonuma_fine,
)

__all__ = [
    "AccountStore",
    "BFSResult",
    "BSPEngine",
    "TransactionClient",
    "run_transfer_mix",
    "BSPResult",
    "FaultTolerantBSPEngine",
    "Graph",
    "MinLabelProgram",
    "PageRankProgram",
    "AvailabilityStats",
    "CodedKVServer",
    "FailoverKVClient",
    "KVClient",
    "ReplicatedKVServer",
    "bfs_reference",
    "run_bfs_fine",
    "run_bfs_push",
    "KVServer",
    "KVStats",
    "KV_CLIENT",
    "KV_PRIMARY",
    "run_kv_failover",
    "PageRankResult",
    "PageRankTiming",
    "Partition",
    "VERTEX_BYTES",
    "pagerank_reference",
    "partition_random",
    "run_shm",
    "run_sonuma_bulk",
    "run_sonuma_fine",
    "zipf_graph",
]
