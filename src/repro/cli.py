"""Command-line interface: quick experiments without writing a script.

Usage::

    python -m repro info
    python -m repro microbench [--sizes 64 4096] [--dev]
    python -m repro netpipe [--threshold 256]
    python -m repro pagerank [--vertices 2048 --nodes 2 4]
    python -m repro kvstore [--keys 500 --gets 100]
    python -m repro serving [--rate 24 --shards 2 --batch 8]

Each subcommand builds a fresh simulated rack and prints results in the
paper's units. The heavy full sweeps live in ``benchmarks/run_all.py``;
this CLI favours latency over completeness.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_info(_args) -> int:
    from .cluster import ClusterConfig

    config = ClusterConfig()
    memory = config.node.memory
    print("soNUMA reproduction — Table 1 defaults")
    print(f"  L1: {memory.l1.size_bytes // 1024} KB "
          f"{memory.l1.associativity}-way, {memory.l1.latency_ns} ns, "
          f"{memory.l1.mshrs} MSHRs")
    print(f"  L2: {memory.l2.size_bytes // (1 << 20)} MB "
          f"{memory.l2.associativity}-way, {memory.l2.latency_ns} ns")
    print(f"  DRAM: {memory.dram.latency_ns} ns, "
          f"{memory.dram.bandwidth_gbps} GB/s peak "
          f"({memory.dram.effective_bandwidth:.1f} GB/s effective)")
    print(f"  RMC: MAQ={config.node.rmc.mmu.maq_entries}, "
          f"TLB={config.node.rmc.mmu.tlb_entries}, "
          f"ITT={config.node.rmc.itt_entries}")
    print(f"  Fabric: crossbar, {config.fabric.link_latency_ns} ns flat, "
          f"{config.fabric.link_bandwidth_gbps} GB/s per direction, "
          f"{config.fabric.vl_credits} credits/VL")
    return 0


def _cmd_microbench(args) -> int:
    from .emulation import dev_platform_cluster_config
    from .workloads import (
        local_dram_latency,
        remote_read_bandwidth,
        remote_read_latency,
    )

    config = dev_platform_cluster_config(2) if args.dev else None
    platform = "development platform" if args.dev else "simulated hardware"
    print(f"remote read microbenchmark — {platform}")
    local = local_dram_latency()
    latency = remote_read_latency(sizes=args.sizes, iterations=args.iters,
                                  cluster_config=config)
    bandwidth = remote_read_bandwidth(sizes=args.sizes,
                                      requests=args.iters * 8,
                                      cluster_config=config)
    print(f"{'size (B)':>9} {'latency (ns)':>13} {'GB/s':>7} {'Mops':>7}")
    for lat, bw in zip(latency, bandwidth):
        print(f"{lat.size:>9} {lat.mean_ns:>13.0f} "
              f"{bw.gbytes_per_sec:>7.2f} {bw.mops:>7.2f}")
    print(f"local DRAM read: {local:.0f} ns "
          f"(remote/local @{latency[0].size}B = "
          f"{latency[0].mean_ns / local:.1f}x)")
    return 0


def _cmd_netpipe(args) -> int:
    from .workloads import send_recv_bandwidth, send_recv_latency

    print(f"send/receive netpipe — threshold {args.threshold} B")
    latency = send_recv_latency(sizes=(32, 256, 2048),
                                threshold=args.threshold, rounds=6)
    bandwidth = send_recv_bandwidth(sizes=(1024, 4096, 8192),
                                    threshold=args.threshold,
                                    messages=20, warmup=5)
    print(f"{'size (B)':>9} {'half-duplex (us)':>17}")
    for row in latency:
        print(f"{row.size:>9} {row.latency_us:>17.3f}")
    print(f"{'size (B)':>9} {'stream (Gbps)':>14}")
    for row in bandwidth:
        print(f"{row.size:>9} {row.gbps:>14.2f}")
    return 0


def _cmd_pagerank(args) -> int:
    from .workloads import pagerank_speedups

    if args.workers > 1:
        # Parallel-engine run: partition the rack across worker
        # processes; results are bit-identical to the serial engine.
        from .apps.graph import zipf_graph
        from .apps.pagerank import run_sonuma_bulk
        from .sim import resolve_run_options

        transport, partition, note = resolve_run_options(
            args.workers, args.transport, args.partition)
        if note:
            print(f"note: {note}")
        nodes = max(args.nodes)
        graph = zipf_graph(args.vertices, avg_degree=args.degree, seed=7)
        print(f"PageRank (bulk) on the parallel engine — "
              f"{args.vertices} vertices, {nodes} simulated nodes, "
              f"{args.workers} workers, {transport} transport, "
              f"{partition} plan")
        result = run_sonuma_bulk(graph, nodes, supersteps=args.supersteps,
                                 workers=args.workers,
                                 partition=partition,
                                 transport=transport)
        es = result.telemetry.engine_stats
        print(f"simulated time: {result.elapsed_us:.1f} us "
              f"({result.remote_reads} remote reads)")
        print(f"engine: {es['total_events_processed']} events in "
              f"{es['wall_s']:.3f} s wall "
              f"({es['events_per_sec']:,.0f} ev/s, "
              f"{es['rounds']} sync rounds)")
        coord = es.get("coordination", {})
        if coord:
            print(f"coordination: {coord.get('grant_roundtrips', 0)} grant "
                  f"round-trips, route {coord.get('route_s', 0.0):.3f}s, "
                  f"wait {coord.get('wait_s', 0.0):.3f}s, "
                  f"codec {coord.get('serialize_s', 0.0):.3f}s")
        for part in es["partitions"]:
            print(f"  worker {part['rank']}: nodes {part['nodes']} "
                  f"events={part['events_processed']} "
                  f"wall={part['wall_s']:.3f}s")
        return 0

    if args.transport != "auto" or args.partition != "auto":
        print("note: single worker: running serial "
              "(--transport/--partition moot)")
    print(f"PageRank speedups — {args.vertices} vertices, "
          f"nodes {args.nodes}")
    rows = pagerank_speedups(node_counts=tuple(args.nodes),
                             num_vertices=args.vertices,
                             avg_degree=args.degree)
    print(f"{'nodes':>6} {'SHM':>7} {'bulk':>7} {'fine':>7}")
    for row in rows:
        print(f"{row.parallelism:>6} {row.shm:>7.2f} {row.bulk:>7.2f} "
              f"{row.fine:>7.2f}")
    return 0


def _cmd_kvstore(args) -> int:
    import random

    from .apps import KVClient, KVServer
    from .cluster import Cluster, ClusterConfig
    from .runtime import RMCSession

    cluster = Cluster(config=ClusterConfig(num_nodes=2))
    gctx = cluster.create_global_context(1, 4 << 20)
    server = KVServer(
        RMCSession(cluster.nodes[0].core, gctx.qp(0), gctx.entry(0)),
        num_buckets=args.buckets)
    rng = random.Random(7)
    keys = rng.sample(range(1, 10 ** 6), args.keys)
    for key in keys:
        server.put_local(key, f"v{key}".encode())
    client = KVClient(
        RMCSession(cluster.nodes[1].core, gctx.qp(1), gctx.entry(1)),
        server_nid=0, num_buckets=args.buckets)

    def app(sim):
        for _ in range(args.gets):
            value = yield from client.get(rng.choice(keys))
            assert value is not None

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    stats = client.stats
    print(f"kvstore: {args.gets} GETs over one-sided reads")
    print(f"  probes/GET: {stats.probes_per_get:.2f}")
    print(f"  latency: mean {stats.get_latency.mean:.0f} ns, "
          f"p99 {stats.get_latency.p99:.0f} ns")
    return 0


def _cmd_serving(args) -> int:
    from .serving import run_serving

    crash = {}
    if args.crash_shard is not None:
        crash = dict(crash_shard=args.crash_shard,
                     crash_at_ns=args.crash_at_ns)
    failover = {}
    if args.failover is not None:
        failover = dict(failover=args.failover,
                        flap_at_ns=args.flap_at_ns,
                        flap_cycles=args.flap_cycles,
                        flap_down_ns=args.flap_down_ns)
    result = run_serving(num_shards=args.shards,
                         replication=args.replication,
                         rate_mops=args.rate,
                         duration_ns=args.duration_ns,
                         num_clients=args.clients,
                         batch=args.batch, window=args.window,
                         workers=args.workers, seed=args.seed,
                         **crash, **failover)
    out = result["outcome"]
    latency = out["latency"]
    print(f"serving: {out['num_requests']} requests from "
          f"{out['logical_clients']:,} logical clients over "
          f"{args.shards} shards (replication {args.replication}, "
          f"batch {args.batch}, window {args.window})")
    print(f"  served {out['served_mops']:.2f} Mops "
          f"(offered {args.rate:.2f}), availability "
          f"{out['availability']:.4f}, wrong values {out['wrong']}")
    print(f"  latency: p50 {latency['p50_ns']:.0f}  "
          f"p99 {latency['p99_ns']:.0f}  "
          f"p999 {latency['p999_ns']:.0f} ns")
    print(f"  doorbells: {out['posted']} WQ entries over "
          f"{out['doorbells']} doorbells "
          f"({out['posted'] / out['doorbells']:.2f} entries/doorbell)"
          if out["doorbells"] else "  doorbells: none rung")
    for shard_id in sorted(out["shards"]):
        report = out["shards"][shard_id]
        print(f"  shard {shard_id} (nodes {report['replicas']}): "
              f"served {report['served']}, "
              f"p99 {report['latency']['p99_ns']:.0f} ns, "
              f"failovers {report['failovers']}, "
              f"availability {report['availability']:.4f}")
    if out["membership"]["evictions"]:
        print(f"  membership: {out['membership']['evictions']} "
              f"eviction(s), {out['membership']['rejoins']} rejoin(s)")
    if "transport" in out:
        counters = out["transport"]["counters"]
        print(f"  transport: active={out['transport']['active']} "
              f"policy={out['transport']['policy']} "
              f"failovers={counters['failovers']} "
              f"failbacks={counters['failbacks']} "
              f"degraded_reads={out['degraded_reads']}")
        for event in out.get("timeline", []):
            print(f"    t={event['t_ns']:.0f} ns: "
                  + " ".join(f"{k}={v}" for k, v in event.items()
                             if k != "t_ns"))
    return 0


def _cmd_failover(args) -> int:
    from .transport import run_failover

    result = run_failover(num_nodes=args.nodes, num_ops=args.ops,
                          policy=args.policy,
                          flap_cycles=args.flap_cycles,
                          flap_down_ns=args.flap_down_ns,
                          seed=args.seed, workers=args.workers)
    out = result["outcome"]
    eo = out["exactly_once"]
    print(f"failover: {out['num_ops']} ops over "
          f"{'/'.join(out['backends'])} "
          f"({out['policy']} policy, {out['flap_cycles']} flap cycle(s))")
    print(f"  exactly-once: {eo['issued']} issued, "
          f"{eo['completed']} completed, {eo['duplicates']} duplicate, "
          f"{eo['lost']} lost")
    print(f"  availability {out['availability']:.4f}, "
          f"by status {out['by_status']}, wrong reads {out['wrong']}")
    counters = out["stack"]["counters"]
    print(f"  switches: {counters['failovers']} failover(s), "
          f"{counters['failbacks']} failback(s), "
          f"{counters['replays']} replayed write(s) over "
          f"{counters['catchups']} catch-up pass(es)")
    converged = out["segments"] == out["expected"]
    print(f"  segments converged to expectation: {converged}")
    for event in out["timeline"]:
        print(f"    t={event['t_ns']:.0f} ns: "
              + " ".join(f"{k}={v}" for k, v in event.items()
                         if k != "t_ns"))
    return 0 if converged and not eo["lost"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Scale-Out NUMA reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the Table 1 configuration")

    micro = sub.add_parser("microbench", help="remote read microbenchmark")
    micro.add_argument("--sizes", type=int, nargs="+",
                       default=[64, 512, 4096, 8192])
    micro.add_argument("--iters", type=int, default=10)
    micro.add_argument("--dev", action="store_true",
                       help="use the development-platform configuration")

    pipe = sub.add_parser("netpipe", help="send/receive microbenchmark")
    pipe.add_argument("--threshold", type=int, default=256)

    rank = sub.add_parser("pagerank", help="PageRank speedup study")
    rank.add_argument("--vertices", type=int, default=4096)
    rank.add_argument("--degree", type=float, default=8.0)
    rank.add_argument("--nodes", type=int, nargs="+", default=[2, 4])
    rank.add_argument("--workers", type=int, default=1,
                      help="simulation worker processes (>1 runs the "
                           "conservative parallel engine)")
    rank.add_argument("--supersteps", type=int, default=2)
    rank.add_argument("--transport",
                      choices=["auto", "shm", "process", "inline"],
                      default="auto",
                      help="parallel-engine transport; 'auto' picks shm "
                           "when the host supports POSIX fork + shared "
                           "memory, else falls back with a note")
    rank.add_argument("--partition",
                      choices=["auto", "contiguous", "adaptive"],
                      default="auto",
                      help="partition plan; 'auto' uses the profiled "
                           "adaptive plan for multi-worker runs")

    kv = sub.add_parser("kvstore", help="one-sided-read KV store demo")
    kv.add_argument("--keys", type=int, default=500)
    kv.add_argument("--gets", type=int, default=100)
    kv.add_argument("--buckets", type=int, default=4096)

    serve = sub.add_parser("serving",
                           help="sharded serving tier under open load")
    serve.add_argument("--rate", type=float, default=24.0,
                       help="offered load, million req/s")
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--replication", type=int, default=1)
    serve.add_argument("--batch", type=int, default=8,
                       help="doorbell batch / CQ reap chunk")
    serve.add_argument("--window", type=int, default=32,
                       help="per-shard in-flight request window")
    serve.add_argument("--clients", type=int, default=1_000_000,
                       help="logical client population")
    serve.add_argument("--duration-ns", type=float, default=30_000.0)
    serve.add_argument("--seed", type=int, default=5)
    serve.add_argument("--workers", type=int, default=1,
                       help="simulation worker processes (>1 runs the "
                            "conservative parallel engine)")
    serve.add_argument("--crash-shard", type=int, default=None,
                       help="chaos: crash this shard's primary "
                            "mid-trace (needs --replication >= 2)")
    serve.add_argument("--crash-at-ns", type=float, default=10_000.0)
    serve.add_argument("--failover", default=None,
                       choices=["fail-fast", "hysteresis", "hedged"],
                       help="serve over degraded transports while the "
                            "fabric is dark (multi-transport stack)")
    serve.add_argument("--flap-at-ns", type=float, default=8_000.0,
                       help="chaos: sever every front-end link at this "
                            "time (needs --failover)")
    serve.add_argument("--flap-cycles", type=int, default=1)
    serve.add_argument("--flap-down-ns", type=float, default=6_000.0)

    fail = sub.add_parser("failover",
                          help="multi-transport failover chaos scenario")
    fail.add_argument("--nodes", type=int, default=4)
    fail.add_argument("--ops", type=int, default=240)
    fail.add_argument("--policy", default="hysteresis",
                      choices=["fail-fast", "hysteresis", "hedged"])
    fail.add_argument("--flap-cycles", type=int, default=2)
    fail.add_argument("--flap-down-ns", type=float, default=18_000.0)
    fail.add_argument("--seed", type=int, default=7)
    fail.add_argument("--workers", type=int, default=1,
                      help="simulation worker processes (>1 runs the "
                           "conservative parallel engine)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "microbench": _cmd_microbench,
        "netpipe": _cmd_netpipe,
        "pagerank": _cmd_pagerank,
        "kvstore": _cmd_kvstore,
        "serving": _cmd_serving,
        "failover": _cmd_failover,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
