"""Pluggable multi-transport session stack (failover + degradation).

Layering: :mod:`.base` defines the :class:`Transport` contract and the
backends (the soNUMA fabric plus the RDMA/TCP/shared-memory baselines
rendered as functional channels); :mod:`.health` scores each channel
(probe RTT and loss EWMAs, flap quarantine); :mod:`.policy` picks the
channel to carry traffic; :mod:`.session` wires them into a
:class:`TransportStack` and the exactly-once :class:`FailoverSession`;
:mod:`.harness` is the partitionable chaos scenario.
"""

from .base import (LocalMirrorTransport, MemoryStore, ModelTransport,
                   RDMATransport, SonumaTransport, TCPTransport,
                   Transport, build_transport)
from .harness import FAILOVER_CLIENT, generate_ops, run_failover
from .health import (ChannelState, DegradationTimeline, HealthChecker,
                     HealthConfig)
from .policy import (FailFastPolicy, FailoverPolicy, HedgedProbePolicy,
                     HysteresisPolicy, parse_policy)
from .session import (FailoverCompletion, FailoverSession,
                      TransportCounters, TransportStack)

__all__ = [
    "ChannelState",
    "DegradationTimeline",
    "FailFastPolicy",
    "FailoverCompletion",
    "FailoverPolicy",
    "FailoverSession",
    "FAILOVER_CLIENT",
    "HealthChecker",
    "HealthConfig",
    "HedgedProbePolicy",
    "HysteresisPolicy",
    "LocalMirrorTransport",
    "MemoryStore",
    "ModelTransport",
    "RDMATransport",
    "SonumaTransport",
    "TCPTransport",
    "Transport",
    "TransportCounters",
    "TransportStack",
    "build_transport",
    "generate_ops",
    "parse_policy",
    "run_failover",
]
