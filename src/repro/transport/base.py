"""The pluggable transport layer: one op interface, many fabrics.

The paper's sessions are welded to the soNUMA fabric; the ROADMAP's
"degraded links" scenario needs the opposite — a session that can carry
one-sided reads and writes over whichever channel is currently healthy.
A :class:`Transport` is that contract: timed ``read``/``write``/``probe``
coroutines addressed by ``(dst_nid, offset)``, raising
:class:`~repro.runtime.qp_api.RemoteOpFailed` on loss, identical across
backends so a :class:`~.session.FailoverSession` can switch mid-stream.

Two families implement it:

* :class:`SonumaTransport` wraps a live :class:`RMCSession` — the real
  simulated data path (QPs, RGP/RRPP pipelines, retransmission). Ops
  move actual segment bytes; a severed link surfaces as a ``timeout``
  error completion after the RMC exhausts its retransmission budget.
* :class:`ModelTransport` subclasses render the ``repro/baselines``
  analytical models (RDMA, TCP, and a local shared-memory mirror) as
  *functional* channels: each op charges the model's latency (plus a
  seeded jitter draw) and then executes against a :class:`MemoryStore`
  — a per-node byte mirror the failover layer keeps write-through
  coherent. They are the degraded paths: slower (RDMA), much slower
  (TCP), or last-resort-local (the mirror, which alone survives the
  loss of the peer itself).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from typing import Dict, Optional

from ..baselines.rdma import RDMAConfig, RDMAModel
from ..baselines.tcp import TCPConfig, TCPNetworkModel
from ..runtime.qp_api import RemoteOpFailed

__all__ = ["MemoryStore", "Transport", "SonumaTransport",
           "ModelTransport", "RDMATransport", "TCPTransport",
           "LocalMirrorTransport", "build_transport"]


class MemoryStore:
    """Per-node byte mirror backing the model transports.

    A plain ``nid -> bytearray`` map with zero-fill growth: the
    functional half of a model channel (the timing half is the
    baseline's latency model). The failover session keeps it coherent
    by writing every *completed* write through, whatever backend
    carried it — so a degraded read observes every acknowledged write.
    """

    def __init__(self):
        self._mem: Dict[int, bytearray] = {}

    def _segment(self, nid: int, upto: int) -> bytearray:
        seg = self._mem.setdefault(nid, bytearray())
        if len(seg) < upto:
            seg.extend(b"\x00" * (upto - len(seg)))
        return seg

    def write(self, nid: int, offset: int, data: bytes) -> None:
        seg = self._segment(nid, offset + len(data))
        seg[offset:offset + len(data)] = data

    def read(self, nid: int, offset: int, length: int) -> bytes:
        seg = self._segment(nid, offset + length)
        return bytes(seg[offset:offset + length])


class Transport:
    """One channel able to carry one-sided ops to remote segments.

    Subclasses provide the timed coroutines ``read``/``write`` (and may
    override ``probe``); all raise :class:`RemoteOpFailed` when the op
    is lost, which is what the health checker and failover session key
    off. ``requires_peer`` declares whether the channel is useless once
    the destination *node* (not just a link) is gone — membership
    gray-fail state vetoes those per destination.
    """

    name = "transport"
    #: False only for channels that do not traverse the fabric at all
    #: (the local mirror): they stay routable when membership declares
    #: the destination dead.
    requires_peer = True

    def __init__(self, sim):
        self.sim = sim
        self.ops_ok = 0
        self.ops_failed = 0
        self.bytes_moved = 0
        self.probes = 0
        #: Offset/length every probe reads (must be mapped on peers).
        self.probe_offset = 0
        self.probe_bytes = 8

    def read(self, dst_nid: int, offset: int, length: int):
        """Timed coroutine: fetch ``length`` bytes; returns them."""
        raise NotImplementedError

    def write(self, dst_nid: int, offset: int, data: bytes):
        """Timed coroutine: store ``data``; returns when acknowledged."""
        raise NotImplementedError

    def probe(self, dst_nid: int):
        """Timed coroutine: one round trip; returns the RTT in ns."""
        self.probes += 1
        start = self.sim.now
        yield from self.read(dst_nid, self.probe_offset, self.probe_bytes)
        return self.sim.now - start

    def stats(self) -> Dict[str, int]:
        return {"ops_ok": self.ops_ok, "ops_failed": self.ops_failed,
                "bytes_moved": self.bytes_moved, "probes": self.probes}


class SonumaTransport(Transport):
    """The primary channel: a real :class:`RMCSession` underneath.

    Ops go through the full simulated data path, so a degrading fabric
    shows up exactly as it would to an application — retransmissions,
    then ``timeout`` error completions. A small pool of pinned scratch
    lines decouples concurrent coroutines (each op borrows a line for
    its bounce buffer); size ``pool`` at least the caller's op window.
    """

    name = "sonuma"

    def __init__(self, session, max_op_bytes: int = 256, pool: int = 16):
        super().__init__(session.core.sim)
        self.session = session
        self.max_op_bytes = max_op_bytes
        self._free = deque(session.alloc_buffer(max_op_bytes)
                           for _ in range(pool))

    def _borrow(self) -> int:
        if not self._free:
            raise RuntimeError(
                "sonuma transport scratch pool exhausted: "
                "size pool >= concurrent ops")
        return self._free.popleft()

    def _issue(self, entry_coro_factory):
        """Run one sync op, waiting out transient WQ-full conditions
        (concurrent coroutines share the QP)."""
        while True:
            try:
                yield from entry_coro_factory()
            except RuntimeError as exc:
                if "WQ full" not in str(exc):
                    raise
                yield from self.session.wait_for_slot()
                continue
            return

    def read(self, dst_nid: int, offset: int, length: int):
        if length > self.max_op_bytes:
            raise ValueError(f"op of {length} B exceeds scratch line "
                             f"({self.max_op_bytes} B)")
        slot = self._borrow()
        try:
            yield from self._issue(
                lambda: self.session.read_sync(dst_nid, offset, slot,
                                               length))
            data = self.session.buffer_peek(slot, length)
        except RemoteOpFailed:
            self.ops_failed += 1
            self.session.consume_errors()
            raise
        finally:
            self._free.append(slot)
        self.ops_ok += 1
        self.bytes_moved += length
        return data

    def write(self, dst_nid: int, offset: int, data: bytes):
        if len(data) > self.max_op_bytes:
            raise ValueError(f"op of {len(data)} B exceeds scratch line "
                             f"({self.max_op_bytes} B)")
        slot = self._borrow()
        try:
            self.session.buffer_poke(slot, data)
            yield from self._issue(
                lambda: self.session.write_sync(dst_nid, offset, slot,
                                                len(data)))
        except RemoteOpFailed:
            self.ops_failed += 1
            self.session.consume_errors()
            raise
        finally:
            self._free.append(slot)
        self.ops_ok += 1
        self.bytes_moved += len(data)


class ModelTransport(Transport):
    """Analytical-model channel: modeled latency + functional mirror.

    Each op charges ``rtt_ns(length, op)`` from the subclass's baseline
    model, inflated by a seeded uniform jitter draw (consumed in issue
    order, so a fixed seed reproduces the exact delay sequence). Tests
    and scenarios can degrade the channel directly: ``down`` makes every
    op time out after ``down_timeout_ns``; ``loss_prob`` drops a seeded
    fraction of ops.
    """

    def __init__(self, sim, store: MemoryStore, seed: int = 0,
                 jitter_frac: float = 0.05,
                 down_timeout_ns: float = 10_000.0):
        super().__init__(sim)
        self.store = store
        self.jitter_frac = jitter_frac
        self.down_timeout_ns = down_timeout_ns
        #: Scenario knobs (health-checker test hooks).
        self.down = False
        self.loss_prob = 0.0
        self._rng = random.Random(
            ((seed & 0xFFFF_FFFF) << 32) ^ zlib.crc32(self.name.encode()))

    def rtt_ns(self, length: int, op: str) -> float:
        raise NotImplementedError

    def _delay(self, length: int, op: str) -> float:
        base = self.rtt_ns(length, op)
        if self.jitter_frac:
            base += base * self.jitter_frac * self._rng.random()
        return base

    def _carry(self, dst_nid: int, length: int, op: str):
        """Charge the op's fate: latency on success, a timeout then a
        raised error on loss."""
        delay = self._delay(length, op)
        lost = self.down or (self.loss_prob
                             and self._rng.random() < self.loss_prob)
        if lost:
            self.ops_failed += 1
            yield self.sim.timeout(self.down_timeout_ns)
            raise RemoteOpFailed(-1, f"{self.name}_timeout")
        yield self.sim.timeout(delay)
        self.ops_ok += 1
        self.bytes_moved += length

    def read(self, dst_nid: int, offset: int, length: int):
        yield from self._carry(dst_nid, length, "read")
        return self.store.read(dst_nid, offset, length)

    def write(self, dst_nid: int, offset: int, data: bytes):
        yield from self._carry(dst_nid, len(data), "write")
        self.store.write(dst_nid, offset, data)


class RDMATransport(ModelTransport):
    """Degraded path #1: the ConnectX-3-class RDMA baseline (Table 2).

    ~4x the primary's small-op RTT (the PCIe terms soNUMA eliminates),
    but a perfectly serviceable fabric when the primary flaps.
    """

    name = "rdma"

    def __init__(self, sim, store: MemoryStore, seed: int = 0,
                 config: Optional[RDMAConfig] = None, **kwargs):
        super().__init__(sim, store, seed=seed, **kwargs)
        self.model = RDMAModel(config or RDMAConfig())

    def rtt_ns(self, length: int, op: str) -> float:
        # Acked one-sided writes traverse the same post/DMA/completion
        # path as reads; the model's read RTT covers both.
        return self.model.read_rtt_ns(length)


class TCPTransport(ModelTransport):
    """Degraded path #2: the commodity TCP baseline (Fig. 1) — the
    channel of last resort before going local, ~40 us a direction."""

    name = "tcp"

    def __init__(self, sim, store: MemoryStore, seed: int = 0,
                 config: Optional[TCPConfig] = None, **kwargs):
        kwargs.setdefault("down_timeout_ns", 120_000.0)
        super().__init__(sim, store, seed=seed, **kwargs)
        self.model = TCPNetworkModel(config or TCPConfig())

    def rtt_ns(self, length: int, op: str) -> float:
        if op == "read":
            # Request out, data back.
            return (self.model.one_way_latency_ns(64)
                    + self.model.one_way_latency_ns(max(length, 1)))
        # Data out, short ack back.
        return (self.model.one_way_latency_ns(max(length, 1))
                + self.model.one_way_latency_ns(64))


class LocalMirrorTransport(ModelTransport):
    """Last resort: serve from the local write-through mirror.

    The one channel that does not need the peer at all
    (``requires_peer = False``): when membership declares the
    destination dead, this is what keeps reads answerable — at
    shared-memory cost, from the mirror's (possibly lagging only by
    in-flight ops) copy. Completions carried here are always typed
    ``degraded``.
    """

    name = "shm"
    requires_peer = False

    def __init__(self, sim, store: MemoryStore, seed: int = 0,
                 base_ns: float = 180.0, bytes_per_ns: float = 12.8,
                 **kwargs):
        super().__init__(sim, store, seed=seed, **kwargs)
        self.base_ns = base_ns
        self.bytes_per_ns = bytes_per_ns

    def rtt_ns(self, length: int, op: str) -> float:
        return self.base_ns + length / self.bytes_per_ns


def build_transport(name: str, sim, store: MemoryStore, seed: int = 0,
                    session=None, **kwargs) -> Transport:
    """Construct a backend by name (the harness/CLI spelling)."""
    if name == "sonuma":
        if session is None:
            raise ValueError("sonuma transport needs an RMCSession")
        return SonumaTransport(session, **kwargs)
    cls = {"rdma": RDMATransport, "tcp": TCPTransport,
           "shm": LocalMirrorTransport}.get(name)
    if cls is None:
        raise ValueError(f"unknown transport backend: {name!r}")
    return cls(sim, store, seed=seed, **kwargs)
