"""The failover session: exactly-once one-sided ops over a stack.

:class:`TransportStack` holds the priority-ordered channels, one
:class:`~.health.HealthChecker` per channel, and the active
:class:`~.policy.FailoverPolicy`; membership gray-fail state vetoes
peer-requiring channels per destination. :class:`FailoverSession` is
the application-facing wrapper: the sync ``read``/``write`` coroutines
and a windowed async ``post``/``drain`` API route each op through the
stack, retrying across backends until exactly one typed
:class:`FailoverCompletion` exists per op.

The write path reuses the resilience op log for drain-or-replay
semantics across a backend switch:

* every write is recorded in a :class:`OneSidedWriteLog` *at issue*;
* an in-flight primary write either **drains** (the RMC's
  retransmission rides out the glitch) or error-completes, in which
  case the session **replays** it on the next usable backend — the
  completion is reported once either way;
* writes acknowledged only by a degraded backend stay pending in the
  log; on failback the session runs a **catch-up** replay of the
  pending tail onto the primary (skipping entries a later completed
  write to the same location superseded) before new ops may use it —
  so the primary's memory converges with the write-through mirror;
* the log truncates over the contiguous primary-acknowledged prefix,
  exactly the checkpoint-cut contract the oplog was built for.

Completions are typed: ``ok`` (carried by the primary), ``degraded``
(any lower-priority channel — the caller knows the answer may have
cost more or, for the local mirror, come from the write-through copy),
or ``failed`` (no usable channel within the attempt budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..resilience.oplog import OneSidedWriteLog
from ..runtime.qp_api import RemoteOpFailed
from ..sim import Resource
from ..telemetry import LogLinearHistogram
from .base import MemoryStore, Transport
from .health import (DegradationTimeline, HealthChecker, HealthConfig,
                     staggered)
from .policy import parse_policy

__all__ = ["TransportCounters", "FailoverCompletion", "TransportStack",
           "FailoverSession"]


@dataclass
class TransportCounters:
    """Stack-level telemetry (per-channel detail lives in the
    checkers; this is the switch/veto/replay ledger)."""

    failovers: int = 0       # switches away from a higher-priority channel
    failbacks: int = 0       # switches toward one
    vetoes: int = 0          # channels skipped on membership gray-fail
    reroutes: int = 0        # per-op retries on another channel
    replays: int = 0         # oplog writes replayed onto the primary
    catchups: int = 0        # failback catch-up passes completed

    def as_dict(self) -> dict:
        return {"failovers": self.failovers, "failbacks": self.failbacks,
                "vetoes": self.vetoes, "reroutes": self.reroutes,
                "replays": self.replays, "catchups": self.catchups}


@dataclass(frozen=True)
class FailoverCompletion:
    """One op's terminal record — exactly one exists per op id."""

    op_id: int
    kind: str                 # "read" | "write"
    dst_nid: int
    offset: int
    length: int
    transport: Optional[str]  # channel that carried it (None if failed)
    status: str               # "ok" | "degraded" | "failed"
    attempts: int
    issued_ns: float
    completed_ns: float

    def as_dict(self) -> dict:
        return {"op_id": self.op_id, "kind": self.kind,
                "dst_nid": self.dst_nid, "offset": self.offset,
                "length": self.length, "transport": self.transport,
                "status": self.status, "attempts": self.attempts,
                "issued_ns": self.issued_ns,
                "completed_ns": self.completed_ns}


class _Op:
    __slots__ = ("op_id", "kind", "dst_nid", "offset", "length", "data",
                 "seq", "attempts", "issued_ns", "on_data")

    def __init__(self, op_id: int, kind: str, dst_nid: int, offset: int,
                 length: int, data: Optional[bytes]):
        self.op_id = op_id
        self.kind = kind
        self.dst_nid = dst_nid
        self.offset = offset
        self.length = length
        self.data = data
        self.seq: Optional[int] = None   # oplog seq (writes)
        self.attempts = 0
        self.issued_ns = 0.0
        self.on_data = None              # posted reads: data callback


class TransportStack:
    """Priority-ordered channels + health + policy + membership veto."""

    def __init__(self, sim, transports: Sequence[Transport],
                 policy="hysteresis", membership=None,
                 health: Optional[HealthConfig] = None,
                 timeline: Optional[DegradationTimeline] = None):
        if not transports:
            raise ValueError("need at least one transport")
        self.sim = sim
        self.transports = list(transports)
        self.policy = parse_policy(policy)
        self.membership = membership
        self.timeline = timeline if timeline is not None \
            else DegradationTimeline()
        base = health or HealthConfig()
        self.checkers = [
            HealthChecker(sim, t, staggered(base, i, len(self.transports)),
                          timeline=self.timeline,
                          on_change=self._health_changed)
            for i, t in enumerate(self.transports)]
        self.active = 0
        self.counters = TransportCounters()
        #: Callbacks ``fn(old_name, new_name)`` fired on every switch.
        self.on_switch: List = []

    # -- naming --------------------------------------------------------------

    @property
    def primary_name(self) -> str:
        return self.transports[0].name

    @property
    def active_name(self) -> str:
        return self.transports[self.active].name

    def primary_usable(self) -> bool:
        """Whether the priority-0 channel may carry traffic right now
        (the serving tier's fast-path gate)."""
        return self.checkers[0].usable

    # -- probing -------------------------------------------------------------

    def peer_alive(self, dst_nid: int) -> bool:
        """The membership veto, as one predicate: without a control
        plane every peer counts as alive."""
        return self.membership is None or self.membership.is_live(dst_nid)

    def start_probes(self, peers: Sequence[int], until_ns: float) -> None:
        """Start every channel's probe loop (staggered phases), bounded
        by ``until_ns`` so runs quiesce. Evicted peers drop out of the
        rotation — endless probes at a dead node would keep every
        fabric channel DEGRADED for the live ones."""
        for checker in self.checkers:
            checker.start(peers, until_ns, peer_alive=self.peer_alive)

    # -- selection -----------------------------------------------------------

    def _health_changed(self) -> None:
        self.reselect("health")

    def reselect(self, reason: str) -> bool:
        """Re-run the policy; returns True when the active channel
        switched (timeline + counters record it)."""
        index = self.policy.select(self.sim.now, self.checkers,
                                   self.active)
        if index == self.active:
            return False
        old, new = self.active_name, self.transports[index].name
        direction = "failback" if index < self.active else "failover"
        if direction == "failback":
            self.counters.failbacks += 1
        else:
            self.counters.failovers += 1
        self.timeline.record(self.sim.now, "switch", frm=old, to=new,
                             direction=direction, reason=reason)
        self.active = index
        for callback in self.on_switch:
            callback(old, new)
        return True

    def route(self, dst_nid: int,
              exclude: Tuple[str, ...] = ()) -> Tuple[Optional[int],
                                                      Optional[Transport]]:
        """Channel for one op toward ``dst_nid``: the active channel if
        eligible, else the best other — honoring health, the exclusion
        list, and the membership veto (peer-requiring channels are
        useless toward a node the control plane has declared dead)."""
        order = [self.active] + [i for i in range(len(self.transports))
                                 if i != self.active]
        for index in order:
            transport = self.transports[index]
            if transport.name in exclude:
                continue
            if not self.checkers[index].usable:
                continue
            if transport.requires_peer and not self.peer_alive(dst_nid):
                self.counters.vetoes += 1
                continue
            return index, transport
        return None, None

    def note_result(self, index: int, ok: bool) -> None:
        """Data-path feedback into the channel's health score; errors
        also re-run the policy immediately."""
        self.checkers[index].note_op(ok)
        if not ok:
            self.reselect("op-error")

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "active": self.active_name,
            "policy": self.policy.name,
            "counters": self.counters.as_dict(),
            "channels": {c.name: c.stats() for c in self.checkers},
            "ops": {t.name: t.stats() for t in self.transports},
        }


class FailoverSession:
    """Exactly-once one-sided session over a :class:`TransportStack`."""

    def __init__(self, sim, stack: TransportStack,
                 oplog: Optional[OneSidedWriteLog] = None,
                 mirror: Optional[MemoryStore] = None,
                 window: int = 8,
                 max_attempts: Optional[int] = None,
                 retry_gap_ns: float = 1_000.0,
                 poll_ns: float = 500.0,
                 histogram: Optional[LogLinearHistogram] = None):
        self.sim = sim
        self.stack = stack
        self.oplog = oplog or OneSidedWriteLog()
        self.mirror = mirror
        self.window = window
        self._window = Resource(sim, window, name="failover-window")
        self.max_attempts = max_attempts \
            or 4 * len(stack.transports) + 4
        self.retry_gap_ns = retry_gap_ns
        self.poll_ns = poll_ns
        self.histogram = histogram or LogLinearHistogram(name="failover")
        self.completions: List[FailoverCompletion] = []
        self.completed_ids: Set[int] = set()
        self.duplicate_completions = 0
        self.by_status: Dict[str, int] = {"ok": 0, "degraded": 0,
                                          "failed": 0}
        self.by_transport: Dict[str, int] = {}
        self.ops_issued = 0
        self._next_op_id = 0
        self._open = 0
        #: (dst, offset) -> seq of the latest *completed* write there —
        #: the catch-up staleness guard.
        self._last_write_seq: Dict[Tuple[int, int], int] = {}
        #: Per-dst primary-acked seqs not yet covered by truncation.
        self._acked: Dict[int, Set[int]] = {}
        #: Seqs of writes still being driven — the catch-up must wait
        #: for their verdict rather than treat them as failed.
        self._inflight_seqs: Set[int] = set()
        self._dirty_dsts: Set[int] = set()
        self.catching_up = False
        stack.on_switch.append(self._switched)

    # -- public API ----------------------------------------------------------

    def read(self, dst_nid: int, offset: int, length: int):
        """Timed coroutine: failover read. Returns ``(data,
        completion)``; raises :class:`RemoteOpFailed` only after the
        whole stack is exhausted (the ``failed`` completion is still
        recorded first)."""
        op = self._make_op("read", dst_nid, offset, length, None)
        return (yield from self._drive(op))

    def write(self, dst_nid: int, offset: int, data: bytes):
        """Timed coroutine: failover write; returns the completion."""
        op = self._make_op("write", dst_nid, offset, len(data),
                           bytes(data))
        return (yield from self._drive(op))

    def post(self, kind: str, dst_nid: int, offset: int,
             length: int = 0, data: Optional[bytes] = None,
             on_data=None):
        """Timed coroutine: admit one op into the window (blocks while
        the window is full) and drive it in the background. Returns the
        op id; the terminal record lands in :attr:`completions`.
        Posted reads deliver their bytes via ``on_data(op_id, data)``.
        """
        if kind == "write":
            if data is None:
                raise ValueError("write needs data")
            length = len(data)
        yield self._window.acquire()
        op = self._make_op(kind, dst_nid, offset, length,
                           bytes(data) if data is not None else None)
        op.on_data = on_data
        self._open += 1
        self.sim.process(self._run_posted(op),
                         name=f"failover.op{op.op_id}")
        return op.op_id

    def drain(self):
        """Timed coroutine: wait until every posted op has completed."""
        while self._open:
            yield self.sim.timeout(self.poll_ns)

    # -- op engine -----------------------------------------------------------

    def _make_op(self, kind, dst_nid, offset, length, data) -> _Op:
        op = _Op(self._next_op_id, kind, dst_nid, offset, length, data)
        self._next_op_id += 1
        return op

    def _run_posted(self, op: _Op):
        try:
            result = yield from self._drive(op)
            if op.kind == "read" and op.on_data is not None:
                op.on_data(op.op_id, result[0])
        except RemoteOpFailed:
            pass       # the "failed" completion carries the verdict
        finally:
            self._open -= 1
            self._window.release()

    def _drive(self, op: _Op):
        op.issued_ns = self.sim.now
        self.ops_issued += 1
        if op.kind == "write":
            entry = self.oplog.record(op.dst_nid, op.offset, op.data,
                                      self.sim.now)
            op.seq = entry.seq
            self._inflight_seqs.add(op.seq)
            self._dirty_dsts.add(op.dst_nid)
        last_error: Optional[RemoteOpFailed] = None
        used_indices: Set[int] = set()
        while op.attempts < self.max_attempts:
            # While a failback catch-up is replaying the degraded-era
            # write tail, new ops must not overtake it onto the primary
            # (a stale replay could land after a fresher write).
            exclude = ((self.stack.primary_name,)
                       if self.catching_up else ())
            index, transport = self.stack.route(op.dst_nid,
                                                exclude=exclude)
            op.attempts += 1
            if transport is None:
                yield self.sim.timeout(self.retry_gap_ns)
                continue
            if used_indices and index not in used_indices:
                self.stack.counters.reroutes += 1
            used_indices.add(index)
            try:
                if op.kind == "read":
                    data = yield from transport.read(op.dst_nid,
                                                     op.offset,
                                                     op.length)
                else:
                    yield from transport.write(op.dst_nid, op.offset,
                                               op.data)
            except RemoteOpFailed as exc:
                last_error = exc
                self.stack.note_result(index, False)
                continue
            self.stack.note_result(index, True)
            if op.kind == "write":
                self._write_completed(op, index)
            status = "ok" if index == 0 else "degraded"
            completion = self._complete(op, transport.name, status)
            if op.kind == "read":
                return data, completion
            return completion
        if op.seq is not None:
            self._inflight_seqs.discard(op.seq)
        self._complete(op, None, "failed")
        raise last_error if last_error is not None \
            else RemoteOpFailed(-1, "no usable transport")

    def _complete(self, op: _Op, transport: Optional[str],
                  status: str) -> FailoverCompletion:
        if op.op_id in self.completed_ids:
            self.duplicate_completions += 1
        self.completed_ids.add(op.op_id)
        completion = FailoverCompletion(
            op_id=op.op_id, kind=op.kind, dst_nid=op.dst_nid,
            offset=op.offset, length=op.length, transport=transport,
            status=status, attempts=op.attempts,
            issued_ns=op.issued_ns, completed_ns=self.sim.now)
        self.completions.append(completion)
        self.by_status[status] += 1
        if transport is not None:
            self.by_transport[transport] = \
                self.by_transport.get(transport, 0) + 1
        self.histogram.record(self.sim.now - op.issued_ns)
        return completion

    # -- write bookkeeping / catch-up ----------------------------------------

    def _write_completed(self, op: _Op, index: int) -> None:
        self._inflight_seqs.discard(op.seq)
        previous = self._last_write_seq.get((op.dst_nid, op.offset))
        if previous is None or op.seq > previous:
            self._last_write_seq[(op.dst_nid, op.offset)] = op.seq
        if self.mirror is not None:
            self.mirror.write(op.dst_nid, op.offset, op.data)
        if index == 0:
            self._ack_primary(op.dst_nid, op.seq)

    def _ack_primary(self, dst_nid: int, seq: int) -> None:
        """The primary holds this write; truncate the oplog over the
        contiguous acked prefix (the checkpoint-cut contract)."""
        acked = self._acked.setdefault(dst_nid, set())
        acked.add(seq)
        upto = None
        for entry in self.oplog.pending(dst_nid):
            if entry.seq in acked:
                upto = entry.seq
            else:
                break
        if upto is not None:
            self.oplog.truncate(dst_nid, upto_seq=upto)
            self._acked[dst_nid] = {s for s in acked if s > upto}

    def _switched(self, old_name: str, new_name: str) -> None:
        if new_name != self.stack.primary_name or self.catching_up:
            return
        if not any(self.oplog.pending(dst) for dst in self._dirty_dsts):
            return
        self.catching_up = True
        self.sim.process(self._catch_up(), name="failover.catchup")

    def _catch_up(self):
        """Failback replay: push the pending (degraded-era) write tail
        onto the primary, oldest first, skipping entries superseded by
        a later completed write to the same location. Re-snapshots
        until the pending set is drained, since ops admitted during the
        catch-up still complete on degraded channels."""
        primary = self.stack.transports[0]
        replayed = 0
        try:
            while True:
                remaining = []
                for dst in sorted(self._dirty_dsts):
                    if not self.stack.peer_alive(dst):
                        # Evicted peer: its tail stays pending (the
                        # mirror is its only store) — replaying it
                        # would just re-poison the fabric's health.
                        continue
                    acked = self._acked.setdefault(dst, set())
                    remaining.extend(
                        (dst, e) for e in self.oplog.pending(dst)
                        if e.seq not in acked)
                if not remaining:
                    return
                advanced = False
                for dst, entry in remaining:
                    if self.stack.active != 0 \
                            or not self.stack.checkers[0].usable:
                        return   # primary lost again: next failback
                    if entry.seq in self._inflight_seqs:
                        continue   # verdict not in yet: wait it out
                    advanced = True
                    latest = self._last_write_seq.get(
                        (dst, entry.offset))
                    if latest != entry.seq:
                        # Superseded by a later completed write (or the
                        # op failed outright): never lands on the
                        # primary, drop it from the pending tail.
                        self._ack_primary(dst, entry.seq)
                        continue
                    try:
                        yield from primary.write(dst, entry.offset,
                                                 entry.data)
                    except RemoteOpFailed:
                        self.stack.note_result(0, False)
                        return
                    self.stack.note_result(0, True)
                    self.oplog.records_replayed += 1
                    replayed += 1
                    self._ack_primary(dst, entry.seq)
                if not advanced:
                    # Only in-flight ops remain: let them settle.
                    yield self.sim.timeout(self.poll_ns)
        finally:
            self.catching_up = False
            self.stack.counters.replays += replayed
            self.stack.counters.catchups += 1
            self.stack.timeline.record(self.sim.now, "catchup",
                                       replayed=replayed)

    # -- observability -------------------------------------------------------

    def pending_total(self) -> int:
        """Oplog entries not yet covered by a primary ack."""
        return sum(len(self.oplog.pending(dst))
                   for dst in self._dirty_dsts)

    def exactly_once(self) -> dict:
        """The invariant the chaos tests pin: one completion per op."""
        return {
            "issued": self.ops_issued,
            "completed": len(self.completions),
            "distinct": len(self.completed_ids),
            "duplicates": self.duplicate_completions,
            "lost": self.ops_issued - len(self.completed_ids),
        }

    def stats(self) -> dict:
        return {
            "by_status": dict(self.by_status),
            "by_transport": {k: self.by_transport[k]
                             for k in sorted(self.by_transport)},
            "exactly_once": self.exactly_once(),
            "oplog": {
                "logged": self.oplog.records_logged,
                "replayed": self.oplog.records_replayed,
                "truncated": self.oplog.records_truncated,
                "pending": self.pending_total(),
            },
            "latency": self.histogram.as_dict(),
        }
