"""Per-channel health scoring: probes, EWMAs, and flap hysteresis.

Each transport channel gets a :class:`HealthChecker` running a
deadline-bounded probe loop (one small read per interval, round-robin
over the peers). Every probe — and every data-path op the session
reports via :meth:`HealthChecker.note_op` — feeds two EWMAs:

* a **loss rate** (1 per lost op, 0 per success) that marks the channel
  ``DEGRADED`` above a threshold, and
* a **probe RTT** whose inflation past a factor of the first-observed
  baseline also degrades the channel.

``DOWN`` needs ``down_after`` *consecutive* losses; leaving it needs
``up_after`` consecutive successes — the basic hysteresis that keeps a
single dropped probe from bouncing the failover policy. On top of that
sits flap detection: ``flap_threshold`` DOWN transitions inside
``flap_window_ns`` quarantine the channel for ``quarantine_ns`` — a
link that keeps coming back just long enough to attract traffic is
*worse* than one that stays down, so the checker refuses to call it
healthy until it holds still.

Every transition is appended to a shared :class:`DegradationTimeline`
— plain dicts, deterministic under a fixed seed, the artifact the
telemetry layer and the ablation export.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, List, Optional, Sequence

from ..runtime.qp_api import RemoteOpFailed

__all__ = ["ChannelState", "HealthConfig", "DegradationTimeline",
           "HealthChecker"]


class ChannelState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for one checker (shared across a stack's channels, with
    per-channel probe phases to de-lockstep the loops)."""

    probe_interval_ns: float = 2_000.0
    #: First-probe delay; the stack staggers channels automatically.
    probe_phase_ns: float = 0.0
    ewma_alpha: float = 0.3
    #: Loss EWMA above this marks the channel DEGRADED.
    loss_degraded: float = 0.25
    #: Probe RTT above ``factor * first-observed baseline`` degrades.
    rtt_degraded_factor: float = 3.0
    #: Consecutive losses before DOWN.
    down_after: int = 2
    #: Consecutive successes required to leave DOWN.
    up_after: int = 2
    #: Flap detection: this many DOWN transitions ...
    flap_threshold: int = 3
    #: ... within this window quarantines the channel ...
    flap_window_ns: float = 50_000.0
    #: ... for this long (DOWN regardless of probe results).
    quarantine_ns: float = 20_000.0

    def __post_init__(self):
        if self.probe_interval_ns <= 0:
            raise ValueError("probe interval must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if min(self.down_after, self.up_after, self.flap_threshold) < 1:
            raise ValueError("hysteresis counts must be >= 1")


class DegradationTimeline:
    """Ordered, canonical record of health/failover events.

    Each event is a plain dict with a fixed key set per ``kind``
    (``state``, ``switch``, ``catchup``) — simulated times and counter
    values only, so the list is bit-identical run to run under a fixed
    seed and across worker counts (everything that records into it runs
    on the session owner's rank).
    """

    def __init__(self):
        self.events: List[dict] = []

    def record(self, time_ns: float, kind: str, **fields) -> None:
        event = {"t_ns": time_ns, "kind": kind}
        event.update(sorted(fields.items()))
        self.events.append(event)

    def as_list(self) -> List[dict]:
        return [dict(e) for e in self.events]

    def __len__(self) -> int:
        return len(self.events)


class HealthChecker:
    """Health state machine for one transport channel."""

    def __init__(self, sim, transport, config: Optional[HealthConfig]
                 = None, timeline: Optional[DegradationTimeline] = None,
                 on_change=None):
        self.sim = sim
        self.transport = transport
        self.config = config or HealthConfig()
        self.timeline = timeline
        #: Called (with no args) after every state transition — the
        #: stack hooks this to re-run its failover policy.
        self.on_change = on_change
        self.state = ChannelState.HEALTHY
        self.loss_ewma = 0.0
        self.rtt_ewma: Optional[float] = None
        self.rtt_baseline: Optional[float] = None
        self.healthy_since = sim.now
        self.quarantined_until = float("-inf")
        self.probes_sent = 0
        self.probes_lost = 0
        self.flaps_detected = 0
        self.transitions = 0
        self._consec_ok = 0
        self._consec_fail = 0
        self._down_times: Deque[float] = deque()

    # -- the probe loop ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.transport.name

    @property
    def usable(self) -> bool:
        """Whether the failover policy may route over this channel."""
        return self.state is not ChannelState.DOWN

    def start(self, peers: Sequence[int], until_ns: float,
              peer_alive=None) -> None:
        """Spawn the probe loop (deadline-bounded, not a daemon: runs
        quiesce deterministically once ``until_ns`` passes).
        ``peer_alive(nid)``, when given, is consulted each round so an
        evicted peer stops being probed — a permanently dead node must
        not keep the channel's loss score poisoned for the live ones."""
        if not peers:
            raise ValueError("need at least one peer to probe")
        self.sim.process(self._probe_loop(list(peers), until_ns,
                                          peer_alive),
                         name=f"health.{self.name}")

    def _probe_loop(self, peers: List[int], until_ns: float,
                    peer_alive=None):
        if self.config.probe_phase_ns:
            yield self.sim.timeout(self.config.probe_phase_ns)
        target = 0
        while self.sim.now < until_ns:
            dst = None
            for _ in range(len(peers)):
                candidate = peers[target % len(peers)]
                target += 1
                if peer_alive is None or peer_alive(candidate):
                    dst = candidate
                    break
            if dst is None:
                # Every peer evicted: idle until one rejoins.
                yield self.sim.timeout(self.config.probe_interval_ns)
                continue
            self.probes_sent += 1
            start = self.sim.now
            try:
                rtt = yield from self.transport.probe(dst)
            except RemoteOpFailed:
                self.probes_lost += 1
                self.observe(False, self.sim.now - start)
            else:
                self.observe(True, rtt)
            yield self.sim.timeout(self.config.probe_interval_ns)

    # -- scoring -------------------------------------------------------------

    def note_op(self, ok: bool) -> None:
        """Data-path feedback: a session op completed (or failed) on
        this channel. Feeds the loss EWMA and the consecutive counters
        but not the RTT score (op sizes vary)."""
        self.observe(ok, None)

    def observe(self, ok: bool, rtt_ns: Optional[float]) -> None:
        cfg = self.config
        alpha = cfg.ewma_alpha
        self.loss_ewma = (alpha * (0.0 if ok else 1.0)
                          + (1.0 - alpha) * self.loss_ewma)
        if ok:
            self._consec_ok += 1
            self._consec_fail = 0
            if rtt_ns is not None:
                if self.rtt_baseline is None:
                    self.rtt_baseline = rtt_ns
                    self.rtt_ewma = rtt_ns
                else:
                    self.rtt_ewma = (alpha * rtt_ns
                                     + (1.0 - alpha) * self.rtt_ewma)
            if self.state is ChannelState.DOWN:
                if self._consec_ok >= cfg.up_after \
                        and self.sim.now >= self.quarantined_until:
                    self._transition(ChannelState.HEALTHY, "recovered")
            elif self.state is ChannelState.DEGRADED:
                if self.loss_ewma <= cfg.loss_degraded / 2 \
                        and not self._rtt_inflated():
                    self._transition(ChannelState.HEALTHY, "recovered")
            elif self._rtt_inflated():
                self._transition(ChannelState.DEGRADED, "rtt-inflation")
        else:
            self._consec_fail += 1
            self._consec_ok = 0
            if self.state is not ChannelState.DOWN \
                    and self._consec_fail >= cfg.down_after:
                self._go_down()
            elif self.state is ChannelState.HEALTHY \
                    and self.loss_ewma > cfg.loss_degraded:
                self._transition(ChannelState.DEGRADED, "loss-ewma")
        # Every observation re-runs the stack's policy (not just
        # transitions): failback holds expire between transitions.
        if self.on_change is not None:
            self.on_change()

    def _rtt_inflated(self) -> bool:
        return (self.rtt_baseline is not None
                and self.rtt_ewma is not None
                and self.rtt_ewma
                > self.config.rtt_degraded_factor * self.rtt_baseline)

    def _go_down(self) -> None:
        cfg = self.config
        now = self.sim.now
        self._down_times.append(now)
        while self._down_times \
                and self._down_times[0] < now - cfg.flap_window_ns:
            self._down_times.popleft()
        reason = "consecutive-loss"
        if len(self._down_times) >= cfg.flap_threshold:
            # Flapping: refuse to come back up until it holds still.
            self.quarantined_until = now + cfg.quarantine_ns
            self.flaps_detected += 1
            self._down_times.clear()
            reason = "flap-quarantine"
        self._transition(ChannelState.DOWN, reason)

    def _transition(self, to: ChannelState, reason: str) -> None:
        if to is self.state:
            return
        if self.timeline is not None:
            self.timeline.record(self.sim.now, "state",
                                 channel=self.name,
                                 frm=self.state.value, to=to.value,
                                 reason=reason)
        self.state = to
        self.transitions += 1
        if to is ChannelState.HEALTHY:
            self.healthy_since = self.sim.now

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "state": self.state.value,
            "loss_ewma": round(self.loss_ewma, 6),
            "rtt_ewma_ns": (round(self.rtt_ewma, 3)
                            if self.rtt_ewma is not None else None),
            "probes_sent": self.probes_sent,
            "probes_lost": self.probes_lost,
            "flaps_detected": self.flaps_detected,
            "transitions": self.transitions,
        }


def staggered(config: HealthConfig, index: int,
              channels: int) -> HealthConfig:
    """Per-channel copy of ``config`` with a deterministic probe phase
    so a stack's probe loops do not fire in lockstep."""
    if channels <= 1:
        return config
    phase = config.probe_interval_ns * index / channels
    return replace(config, probe_phase_ns=config.probe_phase_ns + phase)
