"""Failover policies: which channel carries the next op.

A policy is a pure selection function over the stack's priority-ordered
health checkers — given the current simulated time, the per-channel
health views, and the currently-active index, return the index to use.
The stack re-runs it after every health transition and every data-path
error, so the policy is where failover *and* failback temperament
lives:

* **fail-fast** — always the highest-priority usable channel. Fastest
  possible failback, but on a flapping primary it bounces with every
  flap (the ablation's worst-case switch count).
* **hysteresis** — leave the active channel only when it goes DOWN;
  fail back only once a higher-priority channel has been continuously
  HEALTHY for ``hold_ns``. The production default.
* **hedged** — hysteresis plus comparative probe RTTs: while the
  active channel is merely DEGRADED, switch if another channel's probe
  RTT EWMA undercuts the active one by ``hedge_factor`` — paying the
  switch early when the probes prove the detour is actually faster.
"""

from __future__ import annotations

from typing import Sequence

from .health import ChannelState

__all__ = ["FailoverPolicy", "FailFastPolicy", "HysteresisPolicy",
           "HedgedProbePolicy", "parse_policy"]


class FailoverPolicy:
    """Base: pick a channel index given health views (see module doc)."""

    name = "base"

    def select(self, now: float, channels: Sequence,
               active: int) -> int:
        raise NotImplementedError

    def _first_usable(self, channels: Sequence,
                      fallback: int) -> int:
        for index, channel in enumerate(channels):
            if channel.usable:
                return index
        return fallback


class FailFastPolicy(FailoverPolicy):
    """Always the best usable channel — instant failback, flappy."""

    name = "fail-fast"

    def select(self, now, channels, active):
        return self._first_usable(channels, active)


class HysteresisPolicy(FailoverPolicy):
    """Stick with the active channel; fail back only after a hold."""

    name = "hysteresis"

    def __init__(self, hold_ns: float = 10_000.0):
        if hold_ns < 0:
            raise ValueError("hold must be non-negative")
        self.hold_ns = hold_ns

    def select(self, now, channels, active):
        if not channels[active].usable:
            return self._first_usable(channels, active)
        for index in range(active):
            channel = channels[index]
            if channel.usable \
                    and channel.state is ChannelState.HEALTHY \
                    and now - channel.healthy_since >= self.hold_ns:
                return index
        return active


class HedgedProbePolicy(HysteresisPolicy):
    """Hysteresis + RTT-comparing hedge while the active channel is
    DEGRADED (probes on every channel keep running, so the comparison
    is always fresh)."""

    name = "hedged"

    def __init__(self, hold_ns: float = 4_000.0,
                 hedge_factor: float = 0.8):
        super().__init__(hold_ns)
        if not 0.0 < hedge_factor <= 1.0:
            raise ValueError("hedge_factor must be in (0, 1]")
        self.hedge_factor = hedge_factor

    def select(self, now, channels, active):
        chosen = super().select(now, channels, active)
        current = channels[chosen]
        if not (current.usable
                and current.state is ChannelState.DEGRADED
                and current.rtt_ewma is not None):
            return chosen
        for index, channel in enumerate(channels):
            if index == chosen or not channel.usable:
                continue
            if channel.state is ChannelState.HEALTHY \
                    and channel.rtt_ewma is not None \
                    and channel.rtt_ewma \
                    < current.rtt_ewma * self.hedge_factor:
                return index
        return chosen


def parse_policy(spec) -> FailoverPolicy:
    """Accepts a policy instance or one of the canonical names."""
    if isinstance(spec, FailoverPolicy):
        return spec
    policies = {"fail-fast": FailFastPolicy,
                "hysteresis": HysteresisPolicy,
                "hedged": HedgedProbePolicy}
    cls = policies.get(spec)
    if cls is None:
        raise ValueError(f"unknown failover policy {spec!r}; "
                         f"expected one of {sorted(policies)}")
    return cls()
