"""Partitionable transport-failover chaos scenario.

One front-end node drives a seeded mixed read/write op trace against
its peers' registered segments through a :class:`FailoverSession`
whose stack is the soNUMA fabric backed by the RDMA/TCP baselines and
the local mirror. A replicated flap schedule severs every (front end,
peer) link mid-run — the primary fabric goes dark, health probes catch
it, the policy fails the session over, and on restore it fails back
and catch-up-replays the degraded-era writes onto the real segments.

Like :func:`~repro.serving.harness.run_serving`, the same scenario
runs serially or under :func:`~repro.sim.parallel.run_partitioned`
with a bit-identical outcome at any worker count: the op trace, flap
schedule, and expected final segment digests are pure functions of the
arguments; all failover-session activity lives on the front end's
rank; flaps are scheduled identically on every rank (the partitioned
crossbar re-checks reachability at delivery); and membership is the
scheduled (deterministic) variant so flapping links never trigger
evictions.

The ``outcome`` carries the acceptance facts: exactly-once completion
accounting against the op log, per-status/per-transport completion
counts, the degradation timeline, latency quantiles, and final segment
digests (real memory vs. write-through mirror vs. pure-function
expectation).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.bsp import _paired_cluster_config
from ..cluster.cluster import Cluster, ClusterConfig
from ..fabric.faults import FaultInjector
from ..node.node import NodeConfig
from ..rmc.rmc import RMCConfig
from ..runtime.qp_api import RMCSession
from ..sim import (Simulator, default_transport, plan_from_spec,
                   run_partitioned)
from ..vm.address import PAGE_SIZE
from .base import MemoryStore, build_transport
from .health import DegradationTimeline, HealthConfig
from .session import FailoverSession, TransportStack

__all__ = ["run_failover", "generate_ops", "FAILOVER_CLIENT"]

_FAILOVER_CTX = 4

#: Node 0 drives the failover session; nodes 1.. hold the segments.
FAILOVER_CLIENT = 0


def _pattern(nid: int, length: int) -> bytes:
    """Deterministic initial segment content for one peer."""
    return bytes((nid * 31 + i) % 251 for i in range(length))


def _op_value(seed: int, op_index: int, length: int) -> bytes:
    return bytes((seed * 7 + op_index * 13 + i) % 251
                 for i in range(length))


def generate_ops(seed: int, num_ops: int, peers: Sequence[int],
                 region_bytes: int, op_bytes: int,
                 write_frac: float) -> List[Tuple]:
    """Seeded mixed trace: ``(kind, dst, offset, data-or-None)`` rows.

    Write targets are drawn without replacement from the (peer, slot)
    grid, so no two writes touch the same location — the final segment
    state is then order-independent and a pure function of the trace
    (reads may still race writes; the verifier accepts either the
    initial or the written value for a slot).
    """
    if region_bytes % op_bytes:
        raise ValueError("region must be a multiple of the op size")
    rng = random.Random(seed)
    slots = region_bytes // op_bytes
    write_sites = [(p, s) for p in peers for s in range(slots)]
    rng.shuffle(write_sites)
    ops: List[Tuple] = []
    for index in range(num_ops):
        if rng.random() < write_frac and write_sites:
            dst, slot = write_sites.pop()
            ops.append(("write", dst, slot * op_bytes,
                        _op_value(seed, index, op_bytes)))
        else:
            dst = peers[rng.randrange(len(peers))]
            slot = rng.randrange(slots)
            ops.append(("read", dst, slot * op_bytes, None))
    return ops


def _expected_digests(ops: Sequence[Tuple], peers: Sequence[int],
                      region_bytes: int) -> Dict[int, str]:
    segments = {p: bytearray(_pattern(p, region_bytes)) for p in peers}
    for kind, dst, offset, data in ops:
        if kind == "write":
            segments[dst][offset:offset + len(data)] = data
    return {p: hashlib.sha256(bytes(segments[p])).hexdigest()
            for p in peers}


def run_failover(num_nodes: int = 4,
                 num_ops: int = 240,
                 op_bytes: int = 64,
                 region_bytes: int = 4096,
                 write_frac: float = 0.375,
                 gap_ns: float = 250.0,
                 window: int = 8,
                 policy="hysteresis",
                 backends: Sequence[str] = ("sonuma", "rdma", "tcp",
                                            "shm"),
                 flap_cycles: int = 2,
                 flap_start_ns: float = 12_000.0,
                 flap_period_ns: float = 45_000.0,
                 flap_down_ns: float = 18_000.0,
                 probe_interval_ns: float = 1_500.0,
                 health: Optional[HealthConfig] = None,
                 retransmit_timeout_ns: float = 1_500.0,
                 max_retries: int = 1,
                 crash_node: Optional[int] = None,
                 crash_at_ns: Optional[float] = None,
                 hb_interval_ns: float = 2_000.0,
                 lease_ns: float = 6_000.0,
                 seed: int = 7,
                 fault_seed: int = 0,
                 workers: int = 1,
                 transport: Optional[str] = None,
                 partition="contiguous") -> dict:
    """Run the failover chaos scenario; returns ``{"outcome", "perf"}``.

    ``flap_cycles`` schedules that many full outages of the primary
    fabric: every (client, peer) link severed for ``flap_down_ns``,
    once per ``flap_period_ns`` starting at ``flap_start_ns``.
    ``crash_node`` additionally kills one peer outright (no restart) at
    ``crash_at_ns`` — its eviction exercises the membership veto and
    leaves only the local mirror able to answer for it.
    """
    if num_nodes < 2:
        raise ValueError("need the client plus at least one peer")
    if crash_node is not None:
        if not 1 <= crash_node < num_nodes:
            raise ValueError(f"crash_node {crash_node} out of range")
        if crash_at_ns is None:
            raise ValueError("crash_node needs crash_at_ns")
    if "sonuma" not in backends or backends[0] != "sonuma":
        raise ValueError("the soNUMA fabric must be the priority-0 "
                         "backend")

    peers = list(range(1, num_nodes))
    ops = generate_ops(seed, num_ops, peers, region_bytes, op_bytes,
                       write_frac)
    expected = _expected_digests(ops, peers, region_bytes)
    ops_digest = hashlib.sha256(repr(ops).encode()).hexdigest()[:16]
    written = {(dst, offset): data for kind, dst, offset, data in ops
               if kind == "write"}
    segment_size = -(-region_bytes // PAGE_SIZE) * PAGE_SIZE

    flap_end = (flap_start_ns + (flap_cycles - 1) * flap_period_ns
                + flap_down_ns if flap_cycles else 0.0)
    probe_until = max(num_ops * gap_ns, flap_end) + 30_000.0

    health = health or HealthConfig(probe_interval_ns=probe_interval_ns,
                                    down_after=2, up_after=2)

    config = _paired_cluster_config(
        ClusterConfig(num_nodes=num_nodes,
                      node=NodeConfig(rmc=RMCConfig(
                          retransmit_timeout_ns=retransmit_timeout_ns,
                          max_retries=max_retries))),
        num_nodes)

    def build(rank, plan):
        sim = Simulator()
        cluster = Cluster(sim=sim, config=config, partition=plan,
                          rank=rank)
        membership = cluster.enable_membership(
            interval_ns=hb_interval_ns, lease_ns=lease_ns)
        injector = FaultInjector(seed=fault_seed, per_link_streams=True)
        cluster.fabric.install_fault_injector(injector)
        for cycle in range(flap_cycles):
            at = flap_start_ns + cycle * flap_period_ns
            for peer in peers:
                injector.flap_link(FAILOVER_CLIENT, peer, after_ns=at,
                                   down_ns=flap_down_ns)
        if crash_node is not None:
            controller = cluster.fault_controller(seed=fault_seed)
            controller.schedule_crash(crash_node, at_ns=crash_at_ns,
                                      restart_after_ns=None)
        gctx = cluster.create_global_context(_FAILOVER_CTX,
                                             segment_size,
                                             qps_per_node=1)
        for nid in peers:
            if nid in cluster.nodes:
                cluster.poke_segment(nid, _FAILOVER_CTX, 0,
                                     _pattern(nid, region_bytes))
        out: dict = {}
        holder: dict = {}

        if FAILOVER_CLIENT in cluster.nodes:
            node = cluster.nodes[FAILOVER_CLIENT]
            rmc_session = RMCSession(node.core,
                                     gctx.qp(FAILOVER_CLIENT),
                                     gctx.entry(FAILOVER_CLIENT))
            store = MemoryStore()
            for nid in peers:
                store.write(nid, 0, _pattern(nid, region_bytes))
            transports = [
                build_transport(name, sim, store, seed=seed,
                                session=rmc_session,
                                **({"max_op_bytes": max(op_bytes, 64),
                                    "pool": window + 4}
                                   if name == "sonuma" else {}))
                for name in backends]
            timeline = DegradationTimeline()
            stack = TransportStack(sim, transports, policy=policy,
                                   membership=membership,
                                   health=health, timeline=timeline)
            session = FailoverSession(sim, stack, mirror=store,
                                      window=window)
            stack.start_probes(peers, probe_until)
            cluster.transports[FAILOVER_CLIENT] = stack
            wrong = [0]
            reads_checked = [0]

            def check_read(op_id, data):
                kind, dst, offset, _ = ops[op_id]
                reads_checked[0] += 1
                initial = _pattern(dst, region_bytes)[
                    offset:offset + op_bytes]
                fresh = written.get((dst, offset))
                if data != initial and data != fresh:
                    wrong[0] += 1

            def workload():
                for kind, dst, offset, data in ops:
                    if kind == "read":
                        yield from session.post("read", dst, offset,
                                                length=op_bytes,
                                                on_data=check_read)
                    else:
                        yield from session.post("write", dst, offset,
                                                data=data)
                    if gap_ns:
                        yield sim.timeout(gap_ns)
                yield from session.drain()

            sim.process(workload(), name="failover.workload")
            holder["session"] = session
            holder["stack"] = stack
            holder["timeline"] = timeline
            holder["store"] = store
            holder["wrong"] = wrong
            holder["reads_checked"] = reads_checked

        def finalize():
            if holder:
                session = holder["session"]
                stack = holder["stack"]
                stats = session.stats()
                completed = stats["exactly_once"]["completed"]
                served = (stats["by_status"]["ok"]
                          + stats["by_status"]["degraded"])
                out.update(stats)
                out["availability"] = (served / completed
                                       if completed else 1.0)
                out["wrong"] = holder["wrong"][0]
                out["reads_checked"] = holder["reads_checked"][0]
                out["stack"] = stack.stats()
                out["timeline"] = holder["timeline"].as_list()
                out["mirror"] = {
                    nid: hashlib.sha256(
                        holder["store"].read(nid, 0, region_bytes)
                    ).hexdigest()
                    for nid in peers}
            out["segments"] = {
                nid: hashlib.sha256(
                    cluster.peek_segment(nid, _FAILOVER_CTX, 0,
                                         region_bytes)).hexdigest()
                for nid in peers if nid in cluster.nodes}
            out["membership"] = {"evictions": membership.evictions,
                                 "rejoins": membership.rejoins}
            return out

        return sim, cluster.fabric, finalize

    plan = plan_from_spec(partition, build, num_nodes,
                          min(int(workers) or 1, num_nodes))
    chosen = transport or default_transport(plan.num_parts)
    run = run_partitioned(build, plan, transport=chosen)

    merged: dict = {
        "final_time": run.final_time,
        "num_ops": num_ops,
        "ops_digest": ops_digest,
        "policy": policy if isinstance(policy, str)
        else getattr(policy, "name", str(policy)),
        "backends": list(backends),
        "flap_cycles": flap_cycles,
        "expected": expected,
        "segments": {},
    }
    for part in run.results.values():
        merged["segments"].update(part.pop("segments", {}))
        merged["membership"] = part.pop("membership")
        for key, value in part.items():
            merged[key] = value
    if "exactly_once" in merged:
        eo = merged["exactly_once"]
        if eo["issued"] != num_ops:
            raise RuntimeError(
                f"workload issued {eo['issued']} of {num_ops} ops: "
                "the drive loop dropped work")
    return {
        "outcome": merged,
        "perf": {
            "transport": run.transport,
            "workers": plan.num_parts,
            "rounds": run.rounds,
            "wall_s": run.wall_s,
            "engine": run.engine_stats(),
        },
    }
