"""The serving tier: sharded KV serving for million-client populations.

Builds on the replicated KV (:mod:`repro.apps.kvstore`) and the
doorbell-batched QP fast path (:mod:`repro.runtime.qp_api`,
``RMCConfig.doorbell_batch``):

* :mod:`.hashring` — consistent-hash sharding with virtual nodes and
  shard-map routing (minimal remapping on membership change);
* :mod:`.loadgen` — seeded open-loop traffic (Poisson arrivals, Zipf
  key skew, 10^6+ logical clients multiplexed over a few sessions);
* :mod:`.pipeline` — the pipelined, doorbell-batched per-shard GET
  engine with membership-aware failover and tail-latency histograms;
* :mod:`.harness` — the partitionable end-to-end scenario
  (:func:`run_serving`), chaos runs included.
"""

from .hashring import ConsistentHashRing, ShardMap, hash64
from .harness import SERVING_CLIENT, run_serving
from .loadgen import (Request, TraceConfig, generate_trace, split_by_shard,
                      trace_digest, value_of_key)
from .pipeline import PipelinedShardClient

__all__ = [
    "ConsistentHashRing", "ShardMap", "hash64",
    "Request", "TraceConfig", "generate_trace", "split_by_shard",
    "trace_digest", "value_of_key",
    "PipelinedShardClient",
    "run_serving", "SERVING_CLIENT",
]
