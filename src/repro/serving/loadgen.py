"""Open-loop traffic generation for the serving tier.

A serving benchmark is only honest if arrivals are *open loop*: requests
arrive on a Poisson process at a configured rate whether or not the
system keeps up, and latency is measured from the arrival time — so
queueing delay under overload lands in the tail instead of silently
vanishing (the coordinated-omission trap DRackSim's full-distribution
reporting is designed to avoid).

The generator models ``num_clients`` *logical* clients (10^6+ by
default) multiplexed over a handful of pipelined sessions, the way a
front-end fleet multiplexes user connections over a few rack-internal
QPs. Key popularity is Zipf-skewed (seeded, deterministic) and every
request carries the logical client id that issued it.

Everything is a pure function of the arguments: the same seed yields a
bit-identical trace on every rank of a partitioned run, which is what
makes the serving outcome worker-count-invariant.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .hashring import hash64

__all__ = ["Request", "TraceConfig", "generate_trace", "trace_digest",
           "value_of_key", "split_by_shard"]


@dataclass(frozen=True)
class Request:
    """One logical-client GET arrival."""

    seq: int            # global arrival order (ties broken by seq)
    arrival_ns: float
    client_id: int      # logical client in [0, num_clients)
    key: int            # 1.. (0 is the empty-bucket sentinel)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the open-loop arrival process."""

    rate_mops: float = 4.0          # offered load, million req/s (= req/us)
    duration_ns: float = 50_000.0   # arrival window
    num_clients: int = 1_000_000    # logical client population
    num_keys: int = 256             # keys 1..num_keys
    zipf_s: float = 0.99            # Zipf skew exponent (0 = uniform)
    seed: int = 1234

    def __post_init__(self):
        if self.rate_mops <= 0 or self.duration_ns <= 0:
            raise ValueError("rate and duration must be positive")
        if self.num_clients < 1 or self.num_keys < 1:
            raise ValueError("need at least one client and one key")


def _zipf_cdf(num_keys: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, num_keys + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def generate_trace(config: TraceConfig) -> List[Request]:
    """Materialize the arrival trace (sorted by arrival time).

    Inter-arrivals are exponential (Poisson process at ``rate_mops``
    requests/us), keys are sampled from a Zipf distribution over key
    *ranks* whose rank->key mapping is itself a seeded shuffle (so the
    hot keys are spread over the table instead of clustering in bucket
    order), and the issuing logical client is drawn uniformly from the
    ``num_clients`` population.
    """
    rng = random.Random(config.seed)
    cdf = _zipf_cdf(config.num_keys, config.zipf_s)
    # rank -> key: seeded shuffle decouples popularity from key id.
    keys = list(range(1, config.num_keys + 1))
    rng.shuffle(keys)
    rate_per_ns = config.rate_mops * 1e-3
    trace: List[Request] = []
    now = 0.0
    seq = 0
    while True:
        now += rng.expovariate(rate_per_ns)
        if now >= config.duration_ns:
            break
        point = rng.random()
        # Binary search over the CDF.
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        trace.append(Request(
            seq=seq, arrival_ns=now,
            client_id=rng.randrange(config.num_clients),
            key=keys[lo]))
        seq += 1
    return trace


def trace_digest(trace: Sequence[Request]) -> str:
    """Stable digest of a trace (the bit-determinism golden)."""
    h = hashlib.sha256()
    for r in trace:
        h.update(f"{r.seq},{r.arrival_ns!r},{r.client_id},{r.key};"
                 .encode())
    return h.hexdigest()


def value_of_key(key: int,
                 value_mix: Sequence[Tuple[int, int]] = ((16, 3), (54, 1))
                 ) -> bytes:
    """Deterministic stored value for ``key``.

    ``value_mix`` is a weighted list of (size_bytes, weight); the size
    is picked by the key's stable hash so the mix is reproduced exactly
    on every node that materializes the table, and the content encodes
    the key so GET responses are verifiable.
    """
    total = sum(weight for _, weight in value_mix)
    point = hash64(key.to_bytes(8, "little") + b"value-mix") % total
    for size, weight in value_mix:
        if point < weight:
            break
        point -= weight
    return bytes((key + i) % 251 for i in range(size))


def split_by_shard(trace: Sequence[Request], shard_of) -> Dict[int, List[Request]]:
    """Partition a trace by ``shard_of(key)`` preserving arrival order."""
    shards: Dict[int, List[Request]] = {}
    for request in trace:
        shards.setdefault(shard_of(request.key), []).append(request)
    return shards
