"""Consistent-hash sharding with virtual nodes.

The serving tier spreads the key space over many shard primaries the
way rack-scale memory pools do (MIND's range/hash split, Dynamo-style
rings): each shard owns many *virtual nodes* (tokens) on a 64-bit ring,
a key belongs to the first token clockwise from its hash, and replica
groups are the next distinct shards along the ring. Virtual nodes keep
per-shard load within a few percent of fair, and membership changes
remap only the arc a joining/leaving shard owns — the two properties
``tests/test_serving.py`` pins with hypothesis.

Hashing uses blake2b (stable across platforms and Python versions, so
placement — and therefore every serving benchmark — is reproducible
bit for bit).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConsistentHashRing", "ShardMap", "hash64"]

_U64 = (1 << 64) - 1


def hash64(data: bytes) -> int:
    """Stable 64-bit hash (blake2b truncated)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "little")


class ConsistentHashRing:
    """A 64-bit consistent-hash ring with virtual nodes.

    Members are arbitrary hashable ids (the serving tier uses shard
    ids). ``vnodes`` tokens per member are placed at
    ``hash64(b"member:replica")``; :meth:`lookup` walks clockwise.
    """

    def __init__(self, members: Sequence = (), vnodes: int = 128):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per member")
        self.vnodes = vnodes
        self._tokens: List[int] = []
        self._owners: List = []            # parallel to _tokens
        self._members: Dict = {}           # member -> its token list
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member) -> bool:
        return member in self._members

    @property
    def members(self) -> List:
        return sorted(self._members)

    def _member_tokens(self, member) -> List[int]:
        return [hash64(f"{member!r}:{v}".encode()) & _U64
                for v in range(self.vnodes)]

    def add(self, member) -> None:
        """Join a member: inserts its vnode tokens (O(vnodes log n))."""
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        tokens = self._member_tokens(member)
        self._members[member] = tokens
        for token in tokens:
            at = bisect.bisect(self._tokens, token)
            self._tokens.insert(at, token)
            self._owners.insert(at, member)

    def remove(self, member) -> None:
        """Leave: drops the member's tokens; its arcs fall to successors."""
        tokens = self._members.pop(member, None)
        if tokens is None:
            raise KeyError(f"member {member!r} not on the ring")
        for token in tokens:
            at = bisect.bisect_left(self._tokens, token)
            while self._owners[at] != member:
                at += 1   # token collision between members (vanishingly rare)
            del self._tokens[at]
            del self._owners[at]

    def lookup(self, key: int):
        """The member owning ``key`` (first token clockwise of its hash)."""
        return self.lookup_hash(hash64(key.to_bytes(8, "little")))

    def lookup_hash(self, point: int):
        """Owner of a raw 64-bit ring position (for arc accounting)."""
        if not self._tokens:
            raise KeyError("lookup on an empty ring")
        at = bisect.bisect(self._tokens, point)
        if at == len(self._tokens):
            at = 0   # wrap: past the last token the ring restarts
        return self._owners[at]

    def successors(self, key: int, count: int) -> List:
        """The first ``count`` *distinct* members clockwise from the
        key's hash — the replica group for ``key``."""
        if count > len(self._members):
            raise ValueError(
                f"asked for {count} distinct members, ring has "
                f"{len(self._members)}")
        point = hash64(key.to_bytes(8, "little"))
        at = bisect.bisect(self._tokens, point)
        group: List = []
        for step in range(len(self._tokens)):
            owner = self._owners[(at + step) % len(self._tokens)]
            if owner not in group:
                group.append(owner)
                if len(group) == count:
                    break
        return group

    def ownership(self) -> Dict:
        """member -> fraction of the 2^64 ring it owns (exact arc
        measure; the balance bound the property tests assert)."""
        if not self._tokens:
            return {}
        fractions = {member: 0 for member in self._members}
        previous = self._tokens[-1]
        for token, owner in zip(self._tokens, self._owners):
            arc = (token - previous) & _U64
            fractions[owner] += arc
            previous = token
        # The zero-length degenerate case (single token) owns everything.
        total = sum(fractions.values()) or (1 << 64)
        return {m: arc / total for m, arc in fractions.items()}


class ShardMap:
    """Key -> replica-group placement for the serving tier.

    Wraps a :class:`ConsistentHashRing` over shard ids and resolves each
    shard to its primary node plus ``replication - 1`` backup nodes
    (the next distinct shards' primaries clockwise). ``version``
    increments on every membership change so shard-map-aware clients can
    detect staleness cheaply.
    """

    def __init__(self, shard_nodes: Dict[int, int], replication: int = 1,
                 vnodes: int = 128):
        if not shard_nodes:
            raise ValueError("need at least one shard")
        if not 1 <= replication <= len(shard_nodes):
            raise ValueError(
                f"replication {replication} out of range 1.."
                f"{len(shard_nodes)} (one backup per distinct shard)")
        #: shard id -> primary node id.
        self.shard_nodes = dict(shard_nodes)
        self.replication = replication
        self.ring = ConsistentHashRing(sorted(shard_nodes), vnodes=vnodes)
        self.version = 0

    @property
    def num_shards(self) -> int:
        return len(self.shard_nodes)

    def shard_of(self, key: int) -> int:
        """The shard owning ``key``."""
        return self.ring.lookup(key)

    def replica_shards(self, shard: int) -> List[int]:
        """The shard's replica group: itself plus the next shards in id
        order (a deterministic rotation — per-*shard*, not per-key, so
        every key of a shard shares one backup table geometry)."""
        if self.replication == 1:
            return [shard]
        ordered = sorted(self.shard_nodes)
        at = ordered.index(shard)
        return [ordered[(at + i) % len(ordered)]
                for i in range(self.replication)]

    def replica_nodes(self, shard: int) -> List[int]:
        """Node ids serving ``shard``'s table (primary first)."""
        return [self.shard_nodes[s] for s in self.replica_shards(shard)]

    def route(self, key: int) -> Tuple[int, List[int]]:
        """(shard, [primary node, backup nodes...]) for ``key``."""
        shard = self.shard_of(key)
        return shard, self.replica_nodes(shard)

    def remove_shard(self, shard: int) -> None:
        """Membership change: drop a shard (its arcs remap minimally)."""
        self.ring.remove(shard)
        del self.shard_nodes[shard]
        self.version += 1

    def add_shard(self, shard: int, node: int) -> None:
        """Membership change: add a shard (steals only its own arcs)."""
        self.ring.add(shard)
        self.shard_nodes[shard] = node
        self.version += 1
