"""Pipelined shard client: the serving tier's request engine.

:class:`~repro.apps.kvstore.KVClient` blocks on one ``read_sync`` per
probe — fine for microbenchmarks, hopeless for serving: every GET pays a
full round trip of dead core time. This client keeps a configurable
*window* of requests in flight instead and drives each as a small state
machine:

* arrivals within the window are admitted and their first probe staged;
* staged probes are posted in *doorbell batches*
  (:meth:`~repro.runtime.qp_api.RMCSession.post_batch`): one software
  issue overhead per batch instead of per request — paired with the
  RMC's ``doorbell_batch`` so the RGP also amortizes its coherent WQ
  poll;
* completions are reaped in batches
  (:meth:`~repro.runtime.qp_api.RMCSession.poll_cq_batch`); each either
  finishes its request (hit / chain end), advances it to the next probe,
  or — on an error completion (crash, eviction fencing, timeout) —
  fails it over to the next live replica and restarts its probe chain;
* latency is recorded *from the arrival time* into a
  :class:`~repro.telemetry.LogLinearHistogram`, so queueing delay under
  overload shows up in p99/p999 instead of being quietly dropped.

The request state machine mirrors :class:`FailoverKVClient` semantics
(membership-aware replica skipping, per-replica error accounting) but
over many concurrent GETs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from ..apps.kvstore import (AvailabilityStats, BUCKET_BYTES, KVStats,
                            _unpack_bucket)
from ..runtime.qp_api import RemoteOpFailed, RMCSession
from ..telemetry import LogLinearHistogram

__all__ = ["PipelinedShardClient"]


class _Flight:
    """One in-flight GET: probe position, replica choice, buffer slot."""

    __slots__ = ("request", "probe", "remaining", "target", "buf_slot")

    def __init__(self, request, buf_slot: int, replica_count: int):
        self.request = request
        self.probe = 0
        #: Replica indices not yet tried (failover pops from the front).
        self.remaining = list(range(replica_count))
        self.target: Optional[int] = None   # chosen index into replicas
        self.buf_slot = buf_slot


class PipelinedShardClient:
    """Open-loop GET engine for one shard over one session."""

    def __init__(self, session: RMCSession, shard: int,
                 replicas: Sequence[int], num_buckets: int,
                 table_offset: int = 0, window: int = 32,
                 batch: int = 8, max_probes: int = 16,
                 membership=None,
                 histogram: Optional[LogLinearHistogram] = None,
                 expected: Optional[Dict[int, bytes]] = None,
                 failover_stack=None):
        if not replicas:
            raise ValueError("need at least one replica")
        if window < 1 or batch < 1:
            raise ValueError("window and batch must be >= 1")
        self.session = session
        self.shard = shard
        self.replicas = list(replicas)
        self.num_buckets = num_buckets
        self.table_offset = table_offset
        self.window = window
        self.batch = batch
        self.max_probes = max_probes
        self.membership = membership
        self.histogram = histogram or LogLinearHistogram(
            name=f"shard{shard}-get")
        self.stats = KVStats()
        self.availability = AvailabilityStats()
        #: key -> expected value (when given, every GET is verified).
        self.expected = expected
        #: Deterministic final-value check: key -> last value read.
        self.values: Dict[int, Optional[bytes]] = {}
        self.wrong = 0
        self.first_arrival_ns: Optional[float] = None
        self.last_completion_ns = 0.0
        #: Opt-in multi-transport degradation: when the stack's primary
        #: channel (the soNUMA fabric itself) is unusable — or every
        #: fabric replica is exhausted — GETs are served over the best
        #: degraded channel instead of failing.
        self.failover_stack = failover_stack
        self._degraded_open = 0
        self._degraded_poll_ns = 200.0
        # One bounce line per window slot (a flight owns its slot for
        # its whole lifetime, across probes and failovers).
        self._bounce = session.alloc_buffer(BUCKET_BYTES * window)
        self._free_slots = deque(range(window))

    # -- routing --------------------------------------------------------------

    def _pick_replica(self, flight: _Flight) -> bool:
        """Choose the next live replica for ``flight``; False when the
        replica list is exhausted (the GET fails)."""
        while flight.remaining:
            index = flight.remaining.pop(0)
            nid = self.replicas[index]
            if self.membership is not None \
                    and not self.membership.is_live(nid):
                self.availability.evicted_skips += 1
                continue
            flight.target = index
            return True
        flight.target = None
        return False

    def _bucket_offset(self, key: int, probe: int) -> int:
        from ..apps.kvstore import _bucket_index
        slot = (_bucket_index(key, self.num_buckets) + probe) \
            % self.num_buckets
        return self.table_offset + slot * BUCKET_BYTES

    # -- the serve loop -------------------------------------------------------

    def serve(self, requests):
        """Timed coroutine: drive the arrival stream to completion.

        ``requests`` must be sorted by ``arrival_ns`` (the loadgen
        emits them that way). Returns the number of requests served
        successfully (failures are in ``availability.gets_failed``).
        """
        from ..rmc.queues import WQEntry
        from ..protocol import Opcode

        sim = self.session.core.sim
        core = self.session.core
        arrivals = deque(requests)
        if arrivals:
            self.first_arrival_ns = arrivals[0].arrival_ns
        issue_q: deque = deque()      # flights with a probe to post
        inflight: Dict[int, _Flight] = {}   # wq_index -> flight

        def admit():
            while arrivals and arrivals[0].arrival_ns <= sim.now \
                    and self._free_slots:
                request = arrivals.popleft()
                flight = _Flight(request, self._free_slots.popleft(),
                                 len(self.replicas))
                if self.failover_stack is not None \
                        and not self.failover_stack.primary_usable():
                    # The fabric itself is dark: don't even try the
                    # replicas, serve over the degraded channel.
                    self._go_degraded(flight)
                    continue
                if not self._pick_replica(flight):
                    if not self._go_degraded(flight):
                        self._finish_failed(flight)
                    continue
                issue_q.append(flight)

        while arrivals or issue_q or inflight or self._degraded_open:
            admit()
            room = self.session.qp.wq.free_slots
            if issue_q and room:
                group: List[_Flight] = []
                entries: List[WQEntry] = []
                while issue_q and len(group) < min(room, self.batch):
                    flight = issue_q.popleft()
                    group.append(flight)
                    entries.append(WQEntry(
                        op=Opcode.RREAD,
                        dst_nid=self.replicas[flight.target],
                        offset=self._bucket_offset(flight.request.key,
                                                   flight.probe),
                        local_vaddr=self._bounce
                        + flight.buf_slot * BUCKET_BYTES,
                        length=BUCKET_BYTES))
                indices = yield from self.session.post_batch(entries)
                for flight, index in zip(group, indices):
                    inflight[index] = flight
                self.stats.probes += len(group)
                continue
            if inflight:
                completions = yield from self.session.poll_cq_batch(
                    self.batch)
                for cq_entry in completions:
                    # Per-completion software handling (state machine).
                    yield core.compute(core.config.callback_overhead_ns)
                    flight = inflight.pop(cq_entry.wq_index)
                    if cq_entry.error is not None:
                        # Crash/fencing/timeout: absorb the error and
                        # fail the whole GET over to the next replica.
                        self.session.consume_errors()
                        self.availability.replica_errors += 1
                        if self._pick_replica(flight):
                            self.availability.failovers += 1
                            flight.probe = 0
                            issue_q.append(flight)
                        elif not self._go_degraded(flight):
                            self._finish_failed(flight)
                        continue
                    raw = self.session.buffer_peek(
                        self._bounce + flight.buf_slot * BUCKET_BYTES,
                        BUCKET_BYTES)
                    found_key, value = _unpack_bucket(raw)
                    if found_key == flight.request.key:
                        self._finish_ok(flight, value)
                    elif found_key == 0 \
                            or flight.probe + 1 >= self.max_probes:
                        # Chain end: key absent.
                        self._finish_ok(flight, None)
                    else:
                        flight.probe += 1
                        issue_q.append(flight)
                continue
            if arrivals:
                # Window idle: sleep until the next arrival (or, when
                # degraded flights hold every window slot, poll for one
                # to free up).
                wait = arrivals[0].arrival_ns - sim.now
                yield sim.timeout(wait if wait > 0
                                  else self._degraded_poll_ns)
                continue
            if self._degraded_open:
                yield sim.timeout(self._degraded_poll_ns)
        return self.availability.gets_ok

    def _finish_ok(self, flight: _Flight,
                   value: Optional[bytes]) -> None:
        sim = self.session.core.sim
        self.stats.gets += 1
        if value is not None:
            self.stats.hits += 1
        if self.expected is not None \
                and value != self.expected.get(flight.request.key):
            self.wrong += 1
        self.values[flight.request.key] = value
        self.availability.gets_ok += 1
        self.histogram.record(sim.now - flight.request.arrival_ns)
        self.last_completion_ns = sim.now
        self._free_slots.append(flight.buf_slot)

    # -- degraded-mode serving (multi-transport failover) ---------------------

    def _go_degraded(self, flight: _Flight) -> bool:
        """Hand the GET to the degraded-serve coroutine; False when no
        failover stack is attached (the GET then fails as before)."""
        if self.failover_stack is None:
            return False
        self._degraded_open += 1
        sim = self.session.core.sim
        sim.process(self._serve_degraded(flight),
                    name=f"shard{self.shard}-degraded")
        return True

    def _serve_degraded(self, flight: _Flight):
        """Timed coroutine: walk the probe chain over the stack's best
        non-primary channel (RDMA/TCP model or the local mirror) against
        the primary replica's region. Completions count as served and
        as ``degraded_reads`` — availability holds, at degraded cost."""
        stack = self.failover_stack
        sim = self.session.core.sim
        nid = self.replicas[0]
        probe = 0
        attempts = 0
        budget = 2 * len(stack.transports) + self.max_probes
        try:
            while attempts < budget:
                attempts += 1
                index, transport = stack.route(
                    nid, exclude=(stack.primary_name,))
                if transport is None:
                    yield sim.timeout(self._degraded_poll_ns)
                    continue
                try:
                    raw = yield from transport.read(
                        nid,
                        self._bucket_offset(flight.request.key, probe),
                        BUCKET_BYTES)
                except RemoteOpFailed:
                    stack.note_result(index, False)
                    continue
                stack.note_result(index, True)
                found_key, value = _unpack_bucket(raw)
                if found_key == flight.request.key:
                    pass
                elif found_key != 0 and probe + 1 < self.max_probes:
                    probe += 1
                    continue
                else:
                    value = None   # chain end: key absent
                self.availability.degraded_reads += 1
                self._finish_ok(flight, value)
                return
            self._finish_failed(flight)
        finally:
            self._degraded_open -= 1

    def _finish_failed(self, flight: _Flight) -> None:
        """No live replica left: the GET fails (true unavailability)."""
        self.availability.gets_failed += 1
        self.last_completion_ns = self.session.core.sim.now
        self._free_slots.append(flight.buf_slot)

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict:
        """Deterministic per-shard serving report."""
        wq = self.session.qp.wq
        served_window_ns = (self.last_completion_ns
                            - (self.first_arrival_ns or 0.0))
        served = self.availability.gets_ok
        return {
            "shard": self.shard,
            "replicas": list(self.replicas),
            "served": served,
            "failed": self.availability.gets_failed,
            "availability": self.availability.availability,
            "failovers": self.availability.failovers,
            "replica_errors": self.availability.replica_errors,
            "evicted_skips": self.availability.evicted_skips,
            "degraded_reads": self.availability.degraded_reads,
            "probes_per_get": self.stats.probes_per_get,
            "wrong": self.wrong,
            "latency": self.histogram.as_dict(),
            "doorbells": wq.doorbells,
            "posted": wq.posted_total,
            "entries_per_doorbell": (wq.posted_total / wq.doorbells
                                     if wq.doorbells else 0.0),
            "served_mops": (served / served_window_ns * 1e3
                            if served_window_ns > 0 else 0.0),
        }
