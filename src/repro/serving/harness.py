"""Partitionable million-client serving scenario.

The serving tier glued together: a :class:`~.hashring.ShardMap` places
``num_shards`` KV shards on dedicated primary nodes (node ``1 + s`` for
shard ``s``) with ``replication`` copies (each shard's backups live on
the next shards' primaries, so every node holds its own table plus
``replication - 1`` backup tables at per-shard region offsets). Node 0
is the front end: one :class:`~.pipeline.PipelinedShardClient` per
shard — the paper's one-QP-per-core model (§4.3) — drives the open-loop
Zipf/Poisson trace from :mod:`~.loadgen`, multiplexing the logical
client population over pipelined, doorbell-batched sessions.

Like the other harnesses (:func:`~repro.apps.kv_harness.run_kv_failover`,
BSP), the same scenario runs serially or split across worker processes
with :func:`~repro.sim.parallel.run_partitioned`. Everything the
``outcome`` dict reports is a pure function of the arguments: the trace
is regenerated identically on every rank, table preloads are
deterministic, membership transitions replay from the replicated fault
schedule, and the latency histograms count integers — so the merged
outcome is bit-identical for any worker count and transport, including
chaos runs that crash a shard primary mid-trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.bsp import _paired_cluster_config
from ..apps.kvstore import BUCKET_BYTES, _bucket_index, _pack_bucket
from ..cluster.cluster import Cluster, ClusterConfig
from ..fabric.faults import FaultInjector
from ..node.node import NodeConfig
from ..rmc.rmc import RMCConfig
from ..runtime.qp_api import RMCSession
from ..sim import (Simulator, default_transport, plan_from_spec,
                   run_partitioned)
from ..telemetry import LogLinearHistogram
from ..transport import (DegradationTimeline, HealthConfig, MemoryStore,
                         TransportStack, build_transport)
from ..vm.address import PAGE_SIZE
from .hashring import ShardMap
from .loadgen import (TraceConfig, generate_trace, split_by_shard,
                      trace_digest, value_of_key)
from .pipeline import PipelinedShardClient

__all__ = ["run_serving", "SERVING_CLIENT"]

_SERVING_CTX = 3

#: Node 0 is the front end; node ``1 + s`` is shard ``s``'s primary.
SERVING_CLIENT = 0


def _build_table(keys_values: Dict[int, bytes], num_buckets: int,
                 max_probes: int) -> bytes:
    """Materialize one shard's table bytes (linear probing, the same
    layout :meth:`KVServer.put_local` produces) — a pure function so
    every rank preloads identical replicas."""
    table = bytearray(num_buckets * BUCKET_BYTES)
    for key in sorted(keys_values):
        index = _bucket_index(key, num_buckets)
        for probe in range(num_buckets):
            if probe >= max_probes:
                raise ValueError(
                    f"key {key} needs probe {probe} >= max_probes="
                    f"{max_probes}; raise num_buckets or max_probes")
            slot = (index + probe) % num_buckets
            at = slot * BUCKET_BYTES
            if table[at:at + 8] == b"\x00" * 8:
                table[at:at + BUCKET_BYTES] = _pack_bucket(
                    key, keys_values[key])
                break
        else:
            raise RuntimeError("shard table full")
    return bytes(table)


def run_serving(num_shards: int = 2,
                replication: int = 2,
                rate_mops: float = 4.0,
                duration_ns: float = 40_000.0,
                window: int = 32,
                batch: int = 8,
                num_clients: int = 1_000_000,
                num_keys: int = 256,
                num_buckets: int = 512,
                zipf_s: float = 0.99,
                seed: int = 1234,
                vnodes: int = 128,
                max_probes: int = 16,
                workers: int = 1,
                transport: Optional[str] = None,
                partition="contiguous",
                crash_shard: Optional[int] = None,
                crash_at_ns: Optional[float] = None,
                restart_after_ns: Optional[float] = None,
                hb_interval_ns: float = 2_000.0,
                lease_ns: float = 6_000.0,
                fault_seed: int = 0,
                failover: Optional[str] = None,
                failover_backends: Sequence[str] = ("sonuma", "rdma",
                                                    "shm"),
                flap_at_ns: Optional[float] = None,
                flap_cycles: int = 1,
                flap_period_ns: float = 15_000.0,
                flap_down_ns: float = 6_000.0,
                probe_interval_ns: float = 1_500.0,
                retransmit_timeout_ns: Optional[float] = None,
                max_retries: Optional[int] = None) -> dict:
    """Run the serving scenario; returns ``{"outcome", "perf"}``.

    ``outcome`` holds only deterministic, partition-invariant facts:
    the trace digest, per-shard serving reports (served/failed counts,
    availability, failover counters, latency quantiles, doorbell
    amortization), the merged cluster histogram, and membership
    counters. ``perf`` holds the wall-clock side of the parallel run.

    ``crash_shard`` (with ``crash_at_ns``) kills that shard's primary
    mid-trace: in-flight GETs error-complete, the scheduled membership
    service evicts the node one lease later on every rank, and the
    pipelined clients fail over to the backups — the SLO impact shows
    up in the shard's tail quantiles and failover counters.

    ``failover`` (a policy name: ``fail-fast`` / ``hysteresis`` /
    ``hedged``) opts the front end into the multi-transport stack: a
    probe session watches the soNUMA fabric's health, and while the
    fabric is dark the pipelined clients serve GETs over the degraded
    backends (``failover_backends``) instead of failing them.
    ``flap_at_ns`` schedules ``flap_cycles`` full outages of every
    front-end link (each ``flap_down_ns`` long, one per
    ``flap_period_ns``) — the chaos scenario that shows availability
    holding at degraded throughput.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if not 1 <= replication <= num_shards:
        raise ValueError(
            f"replication {replication} out of range 1..{num_shards}")
    if crash_shard is not None:
        if not 0 <= crash_shard < num_shards:
            raise ValueError(f"crash_shard {crash_shard} out of range")
        if crash_at_ns is None:
            raise ValueError("crash_shard needs crash_at_ns")
        if replication < 2:
            raise ValueError("chaos runs need replication >= 2 "
                             "(otherwise the shard is just gone)")

    if failover is None and flap_at_ns is not None:
        raise ValueError("flap_at_ns needs failover=<policy>")
    if failover is not None \
            and (not failover_backends
                 or failover_backends[0] != "sonuma"):
        raise ValueError("the soNUMA fabric must be the priority-0 "
                         "failover backend")

    num_nodes = 1 + num_shards
    shard_map = ShardMap({s: 1 + s for s in range(num_shards)},
                         replication=replication, vnodes=vnodes)
    region_bytes = num_buckets * BUCKET_BYTES
    segment_size = -(-num_shards * region_bytes // PAGE_SIZE) * PAGE_SIZE

    # The workload: pure functions of the seed, regenerated identically
    # on every rank (what makes the outcome worker-count-invariant).
    trace_config = TraceConfig(rate_mops=rate_mops,
                               duration_ns=duration_ns,
                               num_clients=num_clients,
                               num_keys=num_keys, zipf_s=zipf_s,
                               seed=seed)
    trace = generate_trace(trace_config)
    digest = trace_digest(trace)
    shard_traces = split_by_shard(trace, shard_map.shard_of)
    expected = {k: value_of_key(k) for k in range(1, num_keys + 1)}
    shard_keys = {s: {} for s in range(num_shards)}
    for key, value in expected.items():
        shard_keys[shard_map.shard_of(key)][key] = value
    tables = {s: _build_table(shard_keys[s], num_buckets, max_probes)
              for s in range(num_shards)}

    schedule: Sequence[Tuple] = ()
    if crash_shard is not None:
        schedule = ((shard_map.shard_nodes[crash_shard], crash_at_ns,
                     restart_after_ns),)

    # A flapping fabric needs snappy error completions (the stock
    # 100 us retransmit budget would outlast the whole trace); explicit
    # values always win, failover mode tightens the defaults, and a
    # plain run keeps the stock config bit-for-bit.
    rmc_kwargs = {"doorbell_batch": max(1, batch)}
    if retransmit_timeout_ns is not None:
        rmc_kwargs["retransmit_timeout_ns"] = retransmit_timeout_ns
    elif failover is not None:
        rmc_kwargs["retransmit_timeout_ns"] = 1_500.0
    if max_retries is not None:
        rmc_kwargs["max_retries"] = max_retries
    elif failover is not None:
        rmc_kwargs["max_retries"] = 1
    config = _paired_cluster_config(
        ClusterConfig(num_nodes=num_nodes,
                      node=NodeConfig(rmc=RMCConfig(**rmc_kwargs))),
        num_nodes)

    flap_end = 0.0
    if flap_at_ns is not None and flap_cycles:
        flap_end = (flap_at_ns + (flap_cycles - 1) * flap_period_ns
                    + flap_down_ns)
    probe_until = max(duration_ns, flap_end) + 30_000.0

    def build(rank, plan):
        sim = Simulator()
        cluster = Cluster(sim=sim, config=config, partition=plan,
                          rank=rank)
        membership = cluster.enable_membership(interval_ns=hb_interval_ns,
                                               lease_ns=lease_ns)
        controller = cluster.fault_controller(seed=fault_seed)
        for victim, at_ns, restart in schedule:
            controller.schedule_crash(victim, at_ns=at_ns,
                                      restart_after_ns=restart)
        if flap_at_ns is not None:
            # Replicated identically on every rank: the partitioned
            # crossbar re-checks reachability at frame delivery.
            injector = FaultInjector(seed=fault_seed,
                                     per_link_streams=True)
            cluster.fabric.install_fault_injector(injector)
            for cycle in range(flap_cycles):
                at = flap_at_ns + cycle * flap_period_ns
                for nid in range(1, num_nodes):
                    injector.flap_link(SERVING_CLIENT, nid, after_ns=at,
                                       down_ns=flap_down_ns)
        qps_per_node = num_shards + (1 if failover is not None else 0)
        gctx = cluster.create_global_context(_SERVING_CTX, segment_size,
                                             qps_per_node=qps_per_node)
        # Untimed preload: each holder node gets its shard tables at
        # the per-shard region offset (identical geometry on every
        # replica, so one bucket offset works against any of them).
        for s in range(num_shards):
            for nid in shard_map.replica_nodes(s):
                if nid in cluster.nodes:
                    cluster.poke_segment(nid, _SERVING_CTX,
                                         s * region_bytes, tables[s])
        out = {}
        clients: List[PipelinedShardClient] = []

        stack = None
        timeline = None
        if SERVING_CLIENT in cluster.nodes:
            node = cluster.nodes[SERVING_CLIENT]
            if failover is not None:
                # The probe session rides its own QP so health checks
                # never contend with the serving windows; the mirror
                # holds every shard table at the same region geometry
                # the real replicas use.
                probe_session = RMCSession(
                    node.core, gctx.qp(SERVING_CLIENT, index=num_shards),
                    gctx.entry(SERVING_CLIENT))
                store = MemoryStore()
                for s in range(num_shards):
                    for nid in shard_map.replica_nodes(s):
                        store.write(nid, s * region_bytes, tables[s])
                transports = [
                    build_transport(name, sim, store, seed=seed,
                                    session=probe_session)
                    for name in failover_backends]
                timeline = DegradationTimeline()
                stack = TransportStack(
                    sim, transports, policy=failover,
                    membership=membership,
                    health=HealthConfig(
                        probe_interval_ns=probe_interval_ns),
                    timeline=timeline)
                stack.start_probes(list(range(1, num_nodes)),
                                   probe_until)
                cluster.transports[SERVING_CLIENT] = stack
            for s in range(num_shards):
                session = RMCSession(node.core,
                                     gctx.qp(SERVING_CLIENT, index=s),
                                     gctx.entry(SERVING_CLIENT))
                client = PipelinedShardClient(
                    session, shard=s,
                    replicas=shard_map.replica_nodes(s),
                    num_buckets=num_buckets,
                    table_offset=s * region_bytes,
                    window=window, batch=batch, max_probes=max_probes,
                    membership=membership,
                    expected=shard_keys[s],
                    failover_stack=stack)
                clients.append(client)
                sim.process(client.serve(shard_traces.get(s, [])),
                            name=f"serve-shard{s}")

        def finalize():
            if clients:
                reports = {c.shard: c.report() for c in clients}
                merged_hist = LogLinearHistogram(name="cluster-get")
                for c in clients:
                    merged_hist.merge(c.histogram)
                served = sum(c.availability.gets_ok for c in clients)
                failed = sum(c.availability.gets_failed for c in clients)
                starts = [c.first_arrival_ns for c in clients
                          if c.first_arrival_ns is not None]
                ends = [c.last_completion_ns for c in clients]
                span = (max(ends) - min(starts)) if starts else 0.0
                out["shards"] = reports
                out["latency"] = merged_hist.as_dict()
                out["served"] = served
                out["failed"] = failed
                out["availability"] = (served / (served + failed)
                                       if served + failed else 1.0)
                out["wrong"] = sum(c.wrong for c in clients)
                out["doorbells"] = sum(c.session.qp.wq.doorbells
                                       for c in clients)
                out["posted"] = sum(c.session.qp.wq.posted_total
                                    for c in clients)
                out["served_mops"] = (served / span * 1e3
                                      if span > 0 else 0.0)
                out["degraded_reads"] = sum(
                    c.availability.degraded_reads for c in clients)
                if stack is not None:
                    out["transport"] = stack.stats()
                    out["timeline"] = timeline.as_list()
            out["membership"] = {"evictions": membership.evictions,
                                 "rejoins": membership.rejoins}
            return out

        return sim, cluster.fabric, finalize

    plan = plan_from_spec(partition, build, num_nodes,
                          min(int(workers) or 1, num_nodes))
    transport = transport or default_transport(plan.num_parts)
    run = run_partitioned(build, plan, transport=transport)

    merged = {
        "final_time": run.final_time,
        "num_shards": num_shards,
        "replication": replication,
        "num_requests": len(trace),
        "logical_clients": num_clients,
        "distinct_clients": len({r.client_id for r in trace}),
        "trace_digest": digest,
        "shard_map_version": shard_map.version,
    }
    for part in run.results.values():
        for field in ("shards", "latency", "served", "failed",
                      "availability", "wrong", "doorbells", "posted",
                      "served_mops", "degraded_reads", "transport",
                      "timeline"):
            if field in part:
                merged[field] = part[field]
        # Replicated control-plane state: identical on every rank.
        merged["membership"] = part["membership"]
    if "served" in merged \
            and merged["served"] + merged["failed"] != len(trace):
        raise RuntimeError(
            f"served {merged['served']} + failed {merged['failed']} != "
            f"{len(trace)} requests: the serve loop dropped arrivals")
    return {
        "outcome": merged,
        "perf": {
            "transport": run.transport,
            "workers": plan.num_parts,
            "rounds": run.rounds,
            "wall_s": run.wall_s,
            "engine": run.engine_stats(),
        },
    }
