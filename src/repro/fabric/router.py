"""Multi-hop routed fabric: low-radix routers over an arbitrary topology.

Used by the topology ablation benches (crossbar vs. torus at scale). Each
node hosts one router; adjacent routers are joined by point-to-point
links with per-virtual-lane credit flow control; forwarding is a direct
table lookup (no CAM/TCAM, paper §6).

The per-hop cost is ``router_delay_ns`` (pin-to-pin, Alpha 21364-like
11 ns) plus serialization at the output port plus the link's propagation
latency.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Set, Tuple

from ..protocol import VirtualLane
from ..sim import Resource, Simulator, Store
from .faults import FaultInjector
from .ni import FabricConfig, NetworkInterface
from .topology import Topology

__all__ = ["RoutedFabric", "Router"]


class Router:
    """One low-radix router: per-(upstream, VL) input buffers + crossbar."""

    def __init__(self, sim: Simulator, fabric: "RoutedFabric", node_id: int):
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        # (upstream_id, vl) -> input buffer; "upstream" includes the local NI.
        self.in_buffers: Dict[Tuple[object, VirtualLane], Store] = {}
        self.in_credits: Dict[Tuple[object, VirtualLane], Resource] = {}
        # neighbor -> output line (serialization port, shared by both VLs).
        self.out_lines: Dict[int, Resource] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0

    def add_input(self, upstream) -> None:
        """Create buffers + forwarding pump for one upstream port."""
        cfg = self.fabric.config
        for vl in VirtualLane:
            key = (upstream, vl)
            self.in_buffers[key] = Store(
                self.sim, name=f"r{self.node_id}.in[{upstream},{vl.name}]")
            self.in_credits[key] = Resource(
                self.sim, capacity=cfg.vl_credits,
                name=f"r{self.node_id}.cred[{upstream},{vl.name}]")
            self.sim.process(self._forward_pump(key),
                             name=f"r{self.node_id}.fwd[{upstream},{vl.name}]")

    def add_output(self, neighbor: int) -> None:
        """Create the serialization line toward one neighbor."""
        self.out_lines[neighbor] = Resource(
            self.sim, capacity=1, name=f"r{self.node_id}.out{neighbor}")

    def _forward_pump(self, key):
        """Drain one input buffer forever, forwarding or ejecting."""
        sim = self.sim
        fabric = self.fabric
        cfg = fabric.config
        upstream, vl = key
        buffer = self.in_buffers[key]
        credits = self.in_credits[key]
        while True:
            packet = yield buffer.get()
            yield cfg.router_delay_ns  # route computation + xbar
            if packet.src_nid in fabric.failed_nodes \
                    or packet.dst_nid in fabric.failed_nodes:
                # A crashed endpoint: the frame is undeliverable (node
                # fault controller). Drop here, notify the sender's NI.
                self.packets_dropped += 1
                fabric.packets_dropped += 1
                src_ni = fabric.nis.get(packet.src_nid)
                if src_ni is not None \
                        and packet.src_nid not in fabric.failed_nodes:
                    src_ni.notify_failure(packet)
                credits.release()
                continue
            if packet.dst_nid == self.node_id:
                # Ejection port: hand to the local NI (credit-controlled).
                ni = fabric.nis[self.node_id]
                yield ni.rx_credits[vl].acquire()
                ni.deliver(packet)
            else:
                next_hop = fabric.topology.next_hop[self.node_id].get(
                    packet.dst_nid)
                if next_hop is None:
                    self.packets_dropped += 1
                    fabric.packets_dropped += 1
                    credits.release()
                    continue
                # Per-hop fault injection (drop / delay jitter only; the
                # crossbar fabric models the full corruption path).
                extra_delay = 0.0
                if fabric.fault_injector is not None:
                    decision = fabric.fault_injector.decide(
                        self.node_id, next_hop, packet)
                    if decision is not None:
                        if decision.drop:
                            self.packets_dropped += 1
                            fabric.packets_dropped += 1
                            credits.release()
                            continue
                        extra_delay = decision.extra_delay_ns
                next_router = fabric.routers[next_hop]
                # Hold a credit in the downstream input buffer before
                # occupying the output line (virtual cut-through).
                yield next_router.in_credits[(self.node_id, vl)].acquire()
                line = self.out_lines[next_hop]
                yield line.acquire()
                yield packet.size_bytes / cfg.link_bandwidth_gbps
                line.release()
                # Elision: the in-flight hop is a deferred callback, not
                # a spawned process (halves kernel events per hop).
                sim.call_later(
                    cfg.link_latency_ns + extra_delay,
                    partial(next_router.in_buffers[(self.node_id, vl)].try_put,
                            packet))
                self.packets_forwarded += 1
            # This packet has left our buffer: return the upstream credit.
            credits.release()


class RoutedFabric:
    """A fabric of routers laid out over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology,
                 config: Optional[FabricConfig] = None):
        self.sim = sim
        self.topology = topology
        self.config = config or FabricConfig()
        self.routers: Dict[int, Router] = {}
        self.nis: Dict[int, NetworkInterface] = {}
        self.packets_dropped = 0
        self.failed_nodes: Set[int] = set()
        self.fault_injector: Optional[FaultInjector] = None
        for node_id in topology.graph.nodes:
            self.routers[node_id] = Router(sim, self, node_id)
        for node_id, router in self.routers.items():
            router.add_input("local")  # injection from the local NI
            for neighbor in topology.neighbors(node_id):
                router.add_input(neighbor)
                router.add_output(neighbor)

    def attach(self, node_id: int) -> NetworkInterface:
        """Create the NI for a node and start its injection pump."""
        if node_id not in self.routers:
            raise ValueError(f"node {node_id} not in topology")
        if node_id in self.nis:
            raise ValueError(f"node {node_id} already attached")
        ni = NetworkInterface(self.sim, node_id, self.config)
        self.nis[node_id] = ni
        for vl in VirtualLane:
            self.sim.process(self._injection_pump(ni, vl),
                             name=f"rf.inject{node_id}.{vl.name}")
        return ni

    def _injection_pump(self, ni: NetworkInterface, vl: VirtualLane):
        """Move packets from the NI egress queue into the local router."""
        router = self.routers[ni.node_id]
        key = ("local", vl)
        while True:
            packet = yield ni.egress[vl].get()
            yield router.in_credits[key].acquire()
            router.in_buffers[key].try_put(packet)

    def install_fault_injector(self, injector: FaultInjector) -> FaultInjector:
        """Attach a seeded fault source consulted on every hop."""
        injector.fabric = self
        self.fault_injector = injector
        return injector

    # -- failure injection (node fault controller) ---------------------------

    def fail_node(self, node_id: int) -> None:
        """Take a node out of the fabric: frames to or from it are
        dropped at the first router they traverse. Its router keeps
        forwarding *through* traffic (the topology stays connected)."""
        self.failed_nodes.add(node_id)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back into the fabric."""
        self.failed_nodes.discard(node_id)

    def stats(self) -> Dict[str, int]:
        """Forwarding/drop counters for telemetry."""
        stats = {
            "forwarded": sum(r.packets_forwarded
                             for r in self.routers.values()),
            "dropped": self.packets_dropped,
            "attached_nodes": len(self.nis),
        }
        if self.fault_injector is not None:
            stats.update(self.fault_injector.stats())
        return stats

    def node_stats(self, node_id: int) -> Dict[str, int]:
        """Per-node fabric counters (drops at this node's router)."""
        router = self.routers.get(node_id)
        ni = self.nis.get(node_id)
        return {
            "packets_dropped": router.packets_dropped if router else 0,
            "checksum_dropped": ni.checksum_dropped if ni else 0,
            "duplicates_dropped": ni.duplicates_dropped if ni else 0,
        }
