"""The on-die network interface (NI).

"The RMC converts application commands into remote requests that are sent
to the network interface (NI). The NI is connected to an on-chip low-radix
router with reliable, point-to-point links" (paper §3). The NI exposes
per-virtual-lane egress queues (filled by the RMC pipelines) and
per-virtual-lane receive buffers (drained by RRPP for requests, RCP for
replies).

Flow control is credit-based (paper §6 link layer): a sender must hold a
credit for the destination buffer before transmitting; the credit returns
to the pool once the receiving pipeline drains the packet (plus the
credit-return wire latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..protocol import VirtualLane
from ..sim import Event, Resource, Simulator, Store

__all__ = ["FabricConfig", "NetworkInterface"]


@dataclass(frozen=True)
class FabricConfig:
    """Link/fabric parameters.

    Defaults model the paper's simulated fabric: a full crossbar with a
    flat 50 ns inter-node delay (Table 1) and NUMA-class link bandwidth
    (QPI/HTX-like; 16 GB/s per direction keeps the fabric from being the
    bottleneck so the DDR3 channel saturates first, as in Fig. 7b).
    """

    link_latency_ns: float = 50.0
    link_bandwidth_gbps: float = 16.0   # bytes/ns per direction
    vl_credits: int = 16                # per-VL receive buffer depth
    credit_return_ns: float = 10.0      # credit-return wire latency
    router_delay_ns: float = 11.0       # per-hop pin-to-pin (Alpha 21364)

    def __post_init__(self):
        if self.link_latency_ns < 0 or self.credit_return_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.vl_credits < 1:
            raise ValueError("need at least one credit per virtual lane")


class NetworkInterface:
    """Per-node NI: egress queues toward the fabric, rx buffers from it."""

    def __init__(self, sim: Simulator, node_id: int, config: FabricConfig):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.egress: Dict[VirtualLane, Store] = {
            vl: Store(sim, name=f"ni{node_id}.egress.{vl.name}")
            for vl in VirtualLane
        }
        self.rx: Dict[VirtualLane, Store] = {
            vl: Store(sim, name=f"ni{node_id}.rx.{vl.name}")
            for vl in VirtualLane
        }
        self.rx_credits: Dict[VirtualLane, Resource] = {
            vl: Resource(sim, capacity=config.vl_credits,
                         name=f"ni{node_id}.credits.{vl.name}")
            for vl in VirtualLane
        }
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        #: Optional callback invoked with an undeliverable packet when the
        #: fabric reports a failure (drives the driver's failure path).
        self.on_delivery_failure: Optional[Callable] = None

    def inject(self, packet) -> Event:
        """Queue a packet for transmission on its virtual lane."""
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        return self.egress[packet.vl].put(packet)

    def deliver(self, packet) -> None:
        """Called by the fabric when a packet arrives (credit was held)."""
        self.packets_received += 1
        self.rx[packet.vl].try_put(packet)

    def receive(self, vl: VirtualLane):
        """Coroutine used by RMC pipelines to drain one packet from a lane.

        Returns the packet and schedules the credit return to the pool
        after the credit-return latency.
        """
        packet = yield self.rx[vl].get()
        sim = self.sim
        credits = self.rx_credits[vl]
        delay = self.config.credit_return_ns

        def _return_credit():
            yield sim.timeout(delay)
            credits.release()

        sim.process(_return_credit(), name=f"ni{self.node_id}.credit")
        return packet

    def notify_failure(self, packet) -> None:
        """Fabric-side notification that ``packet`` could not be delivered
        (link/node failure). Propagates to the device driver if wired."""
        if self.on_delivery_failure is not None:
            self.on_delivery_failure(packet)
