"""The on-die network interface (NI).

"The RMC converts application commands into remote requests that are sent
to the network interface (NI). The NI is connected to an on-chip low-radix
router with reliable, point-to-point links" (paper §3). The NI exposes
per-virtual-lane egress queues (filled by the RMC pipelines) and
per-virtual-lane receive buffers (drained by RRPP for requests, RCP for
replies).

Flow control is credit-based (paper §6 link layer): a sender must hold a
credit for the destination buffer before transmitting; the credit returns
to the pool once the receiving pipeline drains the packet (plus the
credit-return wire latency).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Set

from ..protocol import Opcode, PING_TID, VirtualLane
from ..sim import Event, Resource, Simulator, Store

__all__ = ["FabricConfig", "NetworkInterface"]

#: How many recent per-source link sequence numbers the receive side
#: remembers for duplicate rejection.
_DEDUP_WINDOW = 512


@dataclass(frozen=True)
class FabricConfig:
    """Link/fabric parameters.

    Defaults model the paper's simulated fabric: a full crossbar with a
    flat 50 ns inter-node delay (Table 1) and NUMA-class link bandwidth
    (QPI/HTX-like; 16 GB/s per direction keeps the fabric from being the
    bottleneck so the DDR3 channel saturates first, as in Fig. 7b).
    """

    link_latency_ns: float = 50.0
    link_bandwidth_gbps: float = 16.0   # bytes/ns per direction
    vl_credits: int = 16                # per-VL receive buffer depth
    credit_return_ns: float = 10.0      # credit-return wire latency
    router_delay_ns: float = 11.0       # per-hop pin-to-pin (Alpha 21364)
    #: Credit accounting scheme. ``"shared"`` (default) models one
    #: receive-credit pool per (dst, vl) that every sender draws from —
    #: the original crossbar behaviour. ``"paired"`` gives each directed
    #: (src, dst, vl) link its own sender-side credit counter, which is
    #: what the partitioned parallel engine requires (a sender must be
    #: able to decide "may I transmit?" without looking at remote state).
    flow_control: str = "shared"

    def __post_init__(self):
        if self.link_latency_ns < 0 or self.credit_return_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.vl_credits < 1:
            raise ValueError("need at least one credit per virtual lane")
        if self.flow_control not in ("shared", "paired"):
            raise ValueError("flow_control must be 'shared' or 'paired'")


class NetworkInterface:
    """Per-node NI: egress queues toward the fabric, rx buffers from it."""

    def __init__(self, sim: Simulator, node_id: int, config: FabricConfig):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.egress: Dict[VirtualLane, Store] = {
            vl: Store(sim, name=f"ni{node_id}.egress.{vl.name}")
            for vl in VirtualLane
        }
        self.rx: Dict[VirtualLane, Store] = {
            vl: Store(sim, name=f"ni{node_id}.rx.{vl.name}")
            for vl in VirtualLane
        }
        self.rx_credits: Dict[VirtualLane, Resource] = {
            vl: Resource(sim, capacity=config.vl_credits,
                         name=f"ni{node_id}.credits.{vl.name}")
            for vl in VirtualLane
        }
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        self.duplicates_dropped = 0    # link-seq dedup rejections
        self.checksum_dropped = 0      # CRC-failed frames rejected
        self.epoch_fenced = 0          # stale-incarnation frames fenced
        #: This node's incarnation epoch, stamped into every injected
        #: frame's trailer. 0 until the membership service assigns one.
        self.epoch = 0
        # Link-layer sequencing: one monotonic counter per destination
        # (stamped at inject time), and a bounded per-source window of
        # recently seen sequence numbers on the receive side.
        self._tx_seq: Dict[int, int] = {}
        self._rx_seen: Dict[int, Set[int]] = {}
        self._rx_order: Dict[int, Deque[int]] = {}
        # Epoch fencing: minimum acceptable incarnation per source
        # (installed by the membership service on eviction) and the
        # highest incarnation actually observed per source.
        self._rx_fence: Dict[int, int] = {}
        self._rx_epoch: Dict[int, int] = {}
        #: Optional callback invoked with an undeliverable packet when the
        #: fabric reports a failure (drives the driver's failure path).
        self.on_delivery_failure: Optional[Callable] = None
        #: Paired flow control (see :class:`FabricConfig.flow_control`):
        #: when set by the fabric, the receive side reports "this frame's
        #: buffer slot is free" through the hook instead of releasing the
        #: shared rx-credit pool — the fabric then returns the credit to
        #: the *sender's* per-link counter (possibly in another process).
        self.credit_return_hook: Optional[Callable] = None

    def inject(self, packet) -> Event:
        """Queue a packet for transmission on its virtual lane.

        Stamps the link-layer sequence number: every transmission toward
        a destination — including RGP retransmissions, which are rebuilt
        packets — gets a fresh seq, so receivers can reject duplicated
        frames without ever confusing a retransmission for a duplicate.
        Also stamps the node's current incarnation epoch so receivers can
        fence frames emitted by an earlier (pre-crash) incarnation.
        """
        seq = self._tx_seq.get(packet.dst_nid, 0)
        packet.seq = seq
        packet.epoch = self.epoch
        self._tx_seq[packet.dst_nid] = (seq + 1) & 0xFFFFFFFF
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        return self.egress[packet.vl].put(packet)

    def deliver(self, packet) -> None:
        """Called by the fabric when a packet arrives (credit was held)."""
        if self._is_fenced(packet):
            self.epoch_fenced += 1
            self._credit_drained(packet)
            return
        if self._is_duplicate(packet):
            self.duplicates_dropped += 1
            self._credit_drained(packet)
            return
        self.packets_received += 1
        self.rx[packet.vl].try_put(packet)

    # -- incarnation fencing (membership layer, §5.1) ------------------------

    def fence_peer(self, src_nid: int, min_epoch: int) -> None:
        """Reject frames from ``src_nid`` whose incarnation epoch is below
        ``min_epoch``. Installed by the membership service when a node is
        evicted: any in-flight or straggler frame from the dead
        incarnation is dropped at the link layer and can never reach a
        pipeline (and therefore never complete into a CQ)."""
        if min_epoch > self._rx_fence.get(src_nid, 0):
            self._rx_fence[src_nid] = min_epoch

    def _is_fenced(self, packet) -> bool:
        src = packet.src_nid
        if packet.epoch < self._rx_fence.get(src, 0):
            # Liveness probes (RPING and their pongs) are exempt: they
            # never complete into a CQ — which is what the fence
            # protects — and a fenced-but-running node's pongs are the
            # only evidence the cluster can ever get that it is
            # reachable again. Fencing them would make gray/partition
            # rejoin impossible.
            if (getattr(packet, "op", None) is Opcode.RPING
                    or getattr(packet, "tid", None) == PING_TID):
                return False
            return True
        # A frame from a *newer* incarnation restarts link-level state:
        # the reborn node's sequence numbers begin again at zero, so the
        # dedup window tracking its previous life must be discarded.
        if packet.epoch > self._rx_epoch.get(src, 0):
            self._rx_epoch[src] = packet.epoch
            self._rx_seen.pop(src, None)
            self._rx_order.pop(src, None)
        return False

    def reset_link_state(self) -> None:
        """Forget all link-layer tx/rx state (node restart).

        A restarted node transmits from seq 0 in a fresh incarnation;
        peers accept it because the higher trailer epoch resets their
        per-source dedup window (see :meth:`_is_fenced`)."""
        self._tx_seq.clear()
        self._rx_seen.clear()
        self._rx_order.clear()
        self._rx_epoch.clear()
        for vl in VirtualLane:
            while True:
                ok, packet = self.rx[vl].try_get()
                if not ok:
                    break
                # Each buffered frame held a receive credit; return it so
                # the pool is full again when the node comes back up.
                self._credit_drained(packet, immediate=True)

    def reject_corrupt(self, packet) -> None:
        """Called by the fabric when a frame fails its CRC check: the
        packet is dropped at the link layer and the credit returned."""
        self.checksum_dropped += 1
        self._credit_drained(packet)

    def _is_duplicate(self, packet) -> bool:
        src = packet.src_nid
        seen = self._rx_seen.get(src)
        if seen is None:
            seen = self._rx_seen[src] = set()
            self._rx_order[src] = deque()
        if packet.seq in seen:
            return True
        seen.add(packet.seq)
        order = self._rx_order[src]
        order.append(packet.seq)
        if len(order) > _DEDUP_WINDOW:
            seen.discard(order.popleft())
        return False

    def _credit_drained(self, packet, immediate: bool = False) -> None:
        """The receive-side buffer slot held by ``packet`` is free again.

        Shared flow control returns the credit to this NI's pool (after
        the return-wire latency, or immediately on a restart wipe).
        Paired flow control hands the packet to the fabric's hook, which
        credits the sender's per-link counter instead.
        """
        if self.credit_return_hook is not None:
            self.credit_return_hook(packet)
        elif immediate:
            self.rx_credits[packet.vl].release()
        else:
            self._release_credit_later(packet.vl)

    def _release_credit_later(self, vl: VirtualLane) -> None:
        """Return the held receive credit after the usual return latency.

        Elision: a deferred callback instead of a spawned process — one
        kernel event per credit return rather than two (spawn + timeout).
        """
        self.sim.call_later(self.config.credit_return_ns,
                            self.rx_credits[vl].release)

    def receive(self, vl: VirtualLane):
        """Coroutine used by RMC pipelines to drain one packet from a lane.

        Returns the packet and schedules the credit return to the pool
        after the credit-return latency.
        """
        packet = yield self.rx[vl].get()
        self._credit_drained(packet)
        return packet

    def notify_failure(self, packet) -> None:
        """Fabric-side notification that ``packet`` could not be delivered
        (link/node failure). Propagates to the device driver if wired."""
        if self.on_delivery_failure is not None:
            self.on_delivery_failure(packet)
