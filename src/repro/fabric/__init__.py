"""NUMA memory fabric: NIs, crossbar, routed topologies, flow control."""

from .crossbar import CrossbarFabric
from .faults import FaultDecision, FaultInjector, FaultPolicy
from .ni import FabricConfig, NetworkInterface
from .partition import PartitionedCrossbar
from .router import RoutedFabric, Router
from .topology import Topology, complete, mesh2d, ring, torus2d, torus3d

__all__ = [
    "CrossbarFabric",
    "FabricConfig",
    "FaultDecision",
    "FaultInjector",
    "FaultPolicy",
    "NetworkInterface",
    "PartitionedCrossbar",
    "RoutedFabric",
    "Router",
    "Topology",
    "complete",
    "mesh2d",
    "ring",
    "torus2d",
    "torus3d",
]
