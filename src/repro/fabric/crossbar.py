"""Full-crossbar fabric: the paper's simulated configuration.

"We model a full crossbar with reliable links between RMCs and a flat
latency of 50ns" (paper §7.1). Each node owns one injection port per
direction; serialization happens at that port (shared by both virtual
lanes), propagation is the flat latency, and delivery requires holding a
receive credit at the destination NI (credit-based flow control, §6).

Failure injection: a failed node or severed pair makes packets toward it
undeliverable; the sending NI is notified so the device-driver model can
observe fabric failures ("the RMC notifies the driver of failures within
the soNUMA fabric", §5.1).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Set, Tuple

from ..protocol import VirtualLane
from ..sim import Resource, Simulator
from .faults import FaultInjector
from .ni import FabricConfig, NetworkInterface

__all__ = ["CrossbarFabric"]


class CrossbarFabric:
    """All-to-all fabric with per-node injection ports and flat latency."""

    def __init__(self, sim: Simulator, config: Optional[FabricConfig] = None):
        self.sim = sim
        self.config = config or FabricConfig()
        self.nis: Dict[int, NetworkInterface] = {}
        self._tx_ports: Dict[int, Resource] = {}
        self.failed_nodes: Set[int] = set()
        self.severed_pairs: Set[Tuple[int, int]] = set()
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.drops_by_node: Dict[int, int] = {}
        self.fault_injector: Optional[FaultInjector] = None

    def install_fault_injector(self, injector: FaultInjector) -> FaultInjector:
        """Attach a seeded fault source; every transmission consults it."""
        injector.fabric = self
        self.fault_injector = injector
        return injector

    def attach(self, node_id: int) -> NetworkInterface:
        """Create and wire the NI for a node; starts its egress pumps."""
        if node_id in self.nis:
            raise ValueError(f"node {node_id} already attached")
        ni = NetworkInterface(self.sim, node_id, self.config)
        self.nis[node_id] = ni
        self._tx_ports[node_id] = Resource(
            self.sim, capacity=1, name=f"xbar.tx{node_id}")
        for vl in VirtualLane:
            self.sim.process(self._egress_pump(ni, vl),
                             name=f"xbar.egress{node_id}.{vl.name}")
        return ni

    # -- failure injection -------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Take a node out of the fabric (its packets are dropped)."""
        self.failed_nodes.add(node_id)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back into the fabric."""
        self.failed_nodes.discard(node_id)

    def sever_link(self, a: int, b: int) -> None:
        """Cut connectivity between a pair of nodes (both directions)."""
        self.severed_pairs.add((min(a, b), max(a, b)))

    def restore_link(self, a: int, b: int) -> None:
        """Re-establish connectivity between a severed pair."""
        self.severed_pairs.discard((min(a, b), max(a, b)))

    def _reachable(self, src: int, dst: int) -> bool:
        if src in self.failed_nodes or dst in self.failed_nodes:
            return False
        return (min(src, dst), max(src, dst)) not in self.severed_pairs

    # -- data path ----------------------------------------------------------

    def _egress_pump(self, ni: NetworkInterface, vl: VirtualLane):
        """Drain one virtual lane of a node's egress queue forever."""
        sim = self.sim
        cfg = self.config
        while True:
            packet = yield ni.egress[vl].get()
            if packet.dst_nid not in self.nis or \
                    not self._reachable(ni.node_id, packet.dst_nid):
                self._count_drop(ni.node_id)
                ni.notify_failure(packet)
                continue
            decision = None
            if self.fault_injector is not None:
                decision = self.fault_injector.decide(
                    ni.node_id, packet.dst_nid, packet)
            if decision is not None and decision.drop:
                # The frame leaves the node (serialization is paid) and is
                # lost on the wire; no credit was consumed downstream.
                tx = self._tx_ports[ni.node_id]
                yield tx.acquire()
                yield packet.size_bytes / cfg.link_bandwidth_gbps
                tx.release()
                self._count_drop(ni.node_id)
                continue
            dst_ni = self.nis[packet.dst_nid]
            # Credit-based flow control: hold a receive credit first.
            yield dst_ni.rx_credits[vl].acquire()
            # Serialize on this node's (shared) injection port.
            tx = self._tx_ports[ni.node_id]
            yield tx.acquire()
            yield packet.size_bytes / cfg.link_bandwidth_gbps
            tx.release()
            # Propagate: flat crossbar latency (+ any injected jitter).
            delay = cfg.link_latency_ns
            if decision is not None:
                delay += decision.extra_delay_ns
            # Elision: one deferred callback per in-flight packet instead
            # of a spawned process (spawn + timeout = two kernel events).
            self.sim.call_later(
                delay, partial(self._deliver_now, packet, dst_ni, decision))
            if decision is not None and decision.duplicate:
                self.sim.process(
                    self._deliver_duplicate(packet, dst_ni, delay, decision),
                    name="xbar.dup")

    def _deliver_now(self, packet, dst_ni: NetworkInterface, decision=None):
        """Propagation delay has elapsed: land the packet (or drop it if a
        failure raced with it in flight)."""
        if not self._reachable(packet.src_nid, packet.dst_nid):
            # Failure raced with the packet in flight: drop + notify.
            self._count_drop(packet.src_nid)
            src_ni = self.nis.get(packet.src_nid)
            if src_ni is not None:
                src_ni.notify_failure(packet)
            dst_ni.rx_credits[packet.vl].release()
            return
        self._arrive(packet, dst_ni, decision)

    def _deliver_duplicate(self, packet, dst_ni: NetworkInterface,
                           delay: float, decision):
        """A second copy of the same frame: same wire bits, same link seq,
        so the receiving NI's dedup window rejects whichever arrives last."""
        yield dst_ni.rx_credits[packet.vl].acquire()
        yield delay
        if not self._reachable(packet.src_nid, packet.dst_nid):
            dst_ni.rx_credits[packet.vl].release()
            return
        self._arrive(packet, dst_ni, decision)

    def _arrive(self, packet, dst_ni: NetworkInterface, decision) -> None:
        if decision is not None and decision.corrupt:
            decoded = self.fault_injector.corrupted_copy(
                packet, decision.corrupt_r)
            if decoded is None:
                # CRC check failed at the receiver: frame rejected.
                dst_ni.reject_corrupt(packet)
                return
            packet = decoded
        self.packets_delivered += 1
        dst_ni.deliver(packet)

    def _count_drop(self, src_nid: int) -> None:
        self.packets_dropped += 1
        self.drops_by_node[src_nid] = self.drops_by_node.get(src_nid, 0) + 1

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Delivery/drop counters for telemetry."""
        stats = {
            "delivered": self.packets_delivered,
            "dropped": self.packets_dropped,
            "attached_nodes": len(self.nis),
        }
        if self.fault_injector is not None:
            stats.update(self.fault_injector.stats())
        return stats

    def node_stats(self, node_id: int) -> Dict[str, int]:
        """Per-node fabric counters (drops attributed to the sender)."""
        ni = self.nis.get(node_id)
        return {
            "packets_dropped": self.drops_by_node.get(node_id, 0),
            "checksum_dropped": ni.checksum_dropped if ni else 0,
            "duplicates_dropped": ni.duplicates_dropped if ni else 0,
        }
