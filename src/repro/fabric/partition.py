"""Partition-aware crossbar: the link boundary cut for the parallel engine.

The parallel engine (``sim/parallel.py``) cuts the cluster at fabric
links: each worker owns its nodes plus the *sending half* of every
attached link. That requires two departures from the shared crossbar:

* **Paired flow control** — the shared fabric's credit pool lives at the
  receiver, so a sender would have to consult remote state before
  transmitting. Here every directed ``(src, dst, vl)`` link carries its
  own sender-side credit counter; the receiver reports drained buffer
  slots through the NI's ``credit_return_hook`` and the credit travels
  back as a message after the credit-return latency. A duplicate frame
  (fault injection) is transmitted *uncredited*: like the shared
  fabric's duplicate path, it does not draw from the sender's pool.

* **End-of-instant delivery staging** — frames from different source
  partitions can arrive at one timestamp. Deliveries (and credit
  returns) are staged and executed when the simulator has exhausted
  every other event at the current instant, ordered by a canonical key;
  the serial engine running the same paired configuration stages and
  orders identically, so per-node event sequences are bit-identical on
  both sides of the cut.

A single-partition plan runs the whole cluster in one process through
the *same* code paths — that is the serial baseline the bit-exactness
golden tests compare against.
"""

from __future__ import annotations

import copy
from functools import partial
from typing import Dict, List, Optional, Tuple

from ..protocol import VirtualLane
from ..sim import Resource, Simulator
from ..sim.parallel import (
    MSG_CREDIT,
    MSG_FRAME,
    PartitionError,
    PartitionPlan,
    RemoteMessage,
    ZeroLookaheadError,
)
from .crossbar import CrossbarFabric
from .faults import FaultInjector
from .ni import FabricConfig, NetworkInterface

__all__ = ["PartitionedCrossbar"]


class _InstantStager:
    """Defers deliveries to the end of the current instant.

    ``stage(key, fn)`` records a callback; once the simulator has no
    other event left at ``now``, all staged callbacks run in ``key``
    order. The key is canonical across partitions, so each partition
    executes its subset of an instant's deliveries in the same relative
    order the serial engine executes the full set.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._staged: List[Tuple[Tuple, object]] = []
        self._drain_posted = False

    def stage(self, key: Tuple, fn) -> None:
        self._staged.append((key, fn))
        if not self._drain_posted:
            self._drain_posted = True
            self.sim.call_later(0.0, self._drain)

    def _drain(self) -> None:
        sim = self.sim
        heap = sim._heap
        if (heap and heap[0][0] <= sim.now) or sim._now_queue:
            # Other work remains at this instant: yield to the back of
            # the now-queue and try again.
            sim.call_later(0.0, self._drain)
            return
        self._drain_posted = False
        staged = self._staged
        self._staged = []
        staged.sort(key=lambda entry: entry[0])
        for _key, fn in staged:
            fn()


# Canonical end-of-instant ordering: deliveries before credit returns
# before source-side shadows, then by the frame's identity.
_KIND_FRAME = 0
_KIND_CREDIT = 1
_KIND_SHADOW = 2


def _frame_key(packet, dup: bool) -> Tuple:
    return (packet.dst_nid, packet.src_nid, _KIND_FRAME, packet.seq,
            1 if dup else 0)


def _credit_key(src_nid: int, dst_nid: int, seq: int) -> Tuple:
    # Executes on the frame *sender's* side: lead with that node id.
    return (src_nid, dst_nid, _KIND_CREDIT, seq, 0)


def _shadow_key(packet) -> Tuple:
    return (packet.src_nid, packet.dst_nid, _KIND_SHADOW, packet.seq, 0)


class PartitionedCrossbar(CrossbarFabric):
    """Crossbar with paired flow control and a partition cut.

    ``plan``/``rank`` select which nodes this instance owns. Frames and
    credits toward other ranks are appended to :attr:`outbox` as
    :class:`RemoteMessage`; the parallel runner drains it after each
    window and re-injects on the destination rank.
    """

    def __init__(self, sim: Simulator, config: Optional[FabricConfig],
                 plan: PartitionPlan, rank: int = 0):
        config = config or FabricConfig()
        if config.flow_control != "paired":
            raise PartitionError(
                "PartitionedCrossbar requires flow_control='paired' "
                f"(got {config.flow_control!r})")
        if config.link_latency_ns <= 0 or config.credit_return_ns <= 0:
            raise ZeroLookaheadError(
                "paired flow control needs positive link_latency_ns and "
                f"credit_return_ns for lookahead (got "
                f"{config.link_latency_ns}, {config.credit_return_ns})")
        if not 0 <= rank < plan.num_parts:
            raise PartitionError(f"rank {rank} outside plan "
                                 f"(0..{plan.num_parts - 1})")
        super().__init__(sim, config)
        self.plan = plan
        self.rank = rank
        self.local_nodes = frozenset(plan.nodes_of(rank))
        self.outbox: List[RemoteMessage] = []
        #: Remote-origin frames accepted but not yet drained: while any
        #: exist this rank may emit a credit after only the
        #: credit-return latency, so its lookahead shrinks accordingly.
        self.credit_obligations = 0
        self._stager = _InstantStager(sim)
        self._pair_credits: Dict[Tuple[int, int, VirtualLane],
                                 Resource] = {}

    # -- parallel-runner interface ---------------------------------------

    def lookahead(self) -> Tuple[float, float]:
        """(frame, credit) minimum emission latencies for this rank."""
        return self.config.link_latency_ns, self.config.credit_return_ns

    def has_credit_obligations(self) -> bool:
        return self.credit_obligations > 0

    def drain_outbox(self) -> List[RemoteMessage]:
        out = self.outbox
        self.outbox = []
        return out

    def inject_messages(self, messages) -> None:
        """Replay inbound cross-partition messages (pre-sorted by the
        runner on (arrival, key)) into this rank's event queue."""
        now = self.sim.now
        for msg in messages:
            delay = msg.arrival - now
            if delay < 0:
                raise PartitionError(
                    f"message arrival {msg.arrival} before now {now}: "
                    "window protocol violated")
            if msg.kind == MSG_FRAME:
                packet, decision = msg.payload
                # Uncredited duplicates never ack, so they carry no
                # credit obligation (and no lookahead impact).
                if not getattr(packet, "_uncredited", False):
                    self.credit_obligations += 1
                self.sim.call_later(delay, partial(
                    self._stage_frame, msg.key, packet, decision, True))
            elif msg.kind == MSG_CREDIT:
                src, dst, vl, _seq = msg.payload
                release = self._pair_credit(src, dst, vl).release
                self.sim.call_later(delay, partial(
                    self._stager.stage, msg.key, release))
            else:
                raise PartitionError(f"unknown message kind: {msg.kind}")

    # -- wiring -----------------------------------------------------------

    def attach(self, node_id: int) -> NetworkInterface:
        if node_id not in self.local_nodes:
            raise PartitionError(
                f"node {node_id} is owned by rank "
                f"{self.plan.rank_of(node_id)}, not rank {self.rank}")
        ni = super().attach(node_id)
        ni.credit_return_hook = self._on_frame_drained
        return ni

    def install_fault_injector(self, injector: FaultInjector):
        if self.plan.num_parts > 1 and not injector.per_link_streams:
            raise PartitionError(
                "partitioned runs need FaultInjector(per_link_streams="
                "True): a shared RNG stream's consumption order would "
                "depend on cross-partition interleaving")
        return super().install_fault_injector(injector)

    # -- data path ---------------------------------------------------------

    def _pair_credit(self, src: int, dst: int,
                     vl: VirtualLane) -> Resource:
        key = (src, dst, vl)
        res = self._pair_credits.get(key)
        if res is None:
            res = Resource(self.sim, capacity=self.config.vl_credits,
                           name=f"xbar.pair{src}-{dst}.{vl.name}")
            self._pair_credits[key] = res
        return res

    def _egress_pump(self, ni: NetworkInterface, vl: VirtualLane):
        """Paired-credit variant of the shared pump: the sender draws
        from its own per-link counter, never from remote state."""
        cfg = self.config
        src = ni.node_id
        while True:
            packet = yield ni.egress[vl].get()
            dst = packet.dst_nid
            if not 0 <= dst < self.plan.num_nodes or \
                    not self._reachable(src, dst):
                self._count_drop(src)
                ni.notify_failure(packet)
                continue
            decision = None
            if self.fault_injector is not None:
                decision = self.fault_injector.decide(src, dst, packet)
            if decision is not None and decision.drop:
                # The frame leaves the node (serialization is paid) and
                # is lost on the wire; its credit was never consumed.
                tx = self._tx_ports[src]
                yield tx.acquire()
                yield packet.size_bytes / cfg.link_bandwidth_gbps
                tx.release()
                self._count_drop(src)
                continue
            yield self._pair_credit(src, dst, vl).acquire()
            tx = self._tx_ports[src]
            yield tx.acquire()
            yield packet.size_bytes / cfg.link_bandwidth_gbps
            tx.release()
            delay = cfg.link_latency_ns
            if decision is not None:
                delay += decision.extra_delay_ns
            self._emit(packet, delay, decision, dup=False)
            if decision is not None and decision.duplicate:
                dup = copy.copy(packet)
                # Same wire bits/seq, but drawn outside the credit pool
                # (mirrors the shared fabric's second-copy semantics).
                dup._uncredited = True
                self._emit(dup, delay, decision, dup=True)

    def _emit(self, packet, delay: float, decision, dup: bool) -> None:
        key = _frame_key(packet, dup)
        dst_rank = self.plan.rank_of(packet.dst_nid)
        if dst_rank == self.rank:
            self.sim.call_later(delay, partial(
                self._stage_frame, key, packet, decision, False))
        else:
            self.outbox.append(RemoteMessage(
                arrival=self.sim.now + delay, dst_rank=dst_rank, key=key,
                kind=MSG_FRAME, payload=(packet, decision)))
        if not dup:
            # Source-side observer for failures that race with the frame
            # in flight: the destination (possibly another process)
            # discards silently; the sender does the accounting.
            self.sim.call_later(delay, partial(
                self._stager.stage, _shadow_key(packet),
                partial(self._shadow, packet)))

    def _stage_frame(self, key: Tuple, packet, decision,
                     remote: bool) -> None:
        self._stager.stage(key, partial(
            self._land_frame, packet, decision, remote))

    def _land_frame(self, packet, decision, remote: bool) -> None:
        if not self._reachable(packet.src_nid, packet.dst_nid):
            # Failure raced with the frame in flight. The sender-side
            # shadow counts the drop and reclaims the credit; a
            # remote-origin frame just cancels its credit obligation.
            if remote and not getattr(packet, "_uncredited", False):
                self.credit_obligations -= 1
            return
        self._arrive(packet, self.nis[packet.dst_nid], decision)

    def _shadow(self, packet) -> None:
        if self._reachable(packet.src_nid, packet.dst_nid):
            return
        self._count_drop(packet.src_nid)
        src_ni = self.nis.get(packet.src_nid)
        if src_ni is not None:
            src_ni.notify_failure(packet)
        # The credit the lost frame held returns after the usual wire
        # latency, exactly as if the receiver had drained it.
        self._schedule_pair_release(packet)

    def _on_frame_drained(self, packet) -> None:
        """NI hook: ``packet``'s receive-buffer slot is free again."""
        if getattr(packet, "_uncredited", False):
            return
        src = packet.src_nid
        remote = self.plan.rank_of(src) != self.rank
        if remote:
            self.credit_obligations -= 1
            self.outbox.append(RemoteMessage(
                arrival=self.sim.now + self.config.credit_return_ns,
                dst_rank=self.plan.rank_of(src),
                key=_credit_key(src, packet.dst_nid, packet.seq),
                kind=MSG_CREDIT,
                payload=(src, packet.dst_nid, packet.vl, packet.seq)))
        else:
            self._schedule_pair_release(packet)

    def _schedule_pair_release(self, packet) -> None:
        release = self._pair_credit(packet.src_nid, packet.dst_nid,
                                    packet.vl).release
        self.sim.call_later(self.config.credit_return_ns, partial(
            self._stager.stage,
            _credit_key(packet.src_nid, packet.dst_nid, packet.seq),
            release))
