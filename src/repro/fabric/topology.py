"""Fabric topologies and routing tables.

"While the actual choice of topology depends on system specifics,
low-dimensional k-ary n-cubes (e.g., 3D torii) seem well-matched to
rack-scale deployments" (paper §6). The paper's simulations use a full
crossbar; the topology ablation benches use the builders here.

Routing is table-based: "the router's forwarding logic directly maps
destination addresses to outgoing router ports, eliminating expensive
CAM or TCAM lookups" (§6). Tables are precomputed from all-pairs
shortest paths over the topology graph.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

__all__ = ["Topology", "complete", "mesh2d", "torus2d", "torus3d", "ring"]


class Topology:
    """A fabric topology: node graph + precomputed next-hop tables."""

    def __init__(self, graph: nx.Graph, name: str):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("topology graph must be connected")
        self.graph = graph
        self.name = name
        self.next_hop: Dict[int, Dict[int, int]] = self._build_tables()

    def _build_tables(self) -> Dict[int, Dict[int, int]]:
        tables: Dict[int, Dict[int, int]] = {}
        for src in self.graph.nodes:
            # Deterministic shortest-path tree rooted at src.
            paths = nx.single_source_shortest_path(self.graph, src)
            table = {}
            for dst, path in paths.items():
                if dst != src:
                    table[dst] = path[1]  # first hop toward dst
            tables[src] = table
        return tables

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def neighbors(self, node: int) -> List[int]:
        """Directly connected nodes, sorted."""
        return sorted(self.graph.neighbors(node))

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path hop count between two nodes."""
        return nx.shortest_path_length(self.graph, src, dst)

    def diameter(self) -> int:
        """Maximum shortest-path hop count over all pairs."""
        return nx.diameter(self.graph)

    def route(self, src: int, dst: int) -> List[int]:
        """The full path a packet takes from src to dst (inclusive)."""
        path = [src]
        here = src
        guard = 0
        while here != dst:
            here = self.next_hop[here][dst]
            path.append(here)
            guard += 1
            if guard > self.num_nodes:
                raise RuntimeError(
                    f"routing loop from {src} to {dst}: {path}")
        return path


def complete(n: int) -> Topology:
    """Full crossbar: every pair directly connected (one hop)."""
    if n < 1:
        raise ValueError("need at least one node")
    return Topology(nx.complete_graph(n), f"crossbar-{n}")


def ring(n: int) -> Topology:
    """A 1-D torus (ring) of n nodes."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return Topology(nx.cycle_graph(n), f"ring-{n}")


def mesh2d(width: int, height: int) -> Topology:
    """2-D mesh (no wraparound); node id = y * width + x."""
    if width < 2 or height < 2:
        raise ValueError("mesh dimensions must be >= 2")
    grid = nx.grid_2d_graph(height, width)
    mapping = {(y, x): y * width + x for y, x in grid.nodes}
    return Topology(nx.relabel_nodes(grid, mapping), f"mesh-{width}x{height}")


def torus2d(width: int, height: int) -> Topology:
    """2-D torus (the topology drawn in paper Fig. 2)."""
    if width < 3 or height < 3:
        raise ValueError("torus dimensions must be >= 3 for wraparound")
    grid = nx.grid_2d_graph(height, width, periodic=True)
    mapping = {(y, x): y * width + x for y, x in grid.nodes}
    return Topology(nx.relabel_nodes(grid, mapping),
                    f"torus-{width}x{height}")


def torus3d(x: int, y: int, z: int) -> Topology:
    """3-D torus: the paper's suggested rack-scale k-ary n-cube."""
    if min(x, y, z) < 3:
        raise ValueError("torus dimensions must be >= 3 for wraparound")
    grid = nx.grid_graph(dim=[z, y, x], periodic=True)
    mapping = {(k, j, i): (k * y + j) * x + i for k, j, i in grid.nodes}
    return Topology(nx.relabel_nodes(grid, mapping), f"torus-{x}x{y}x{z}")
