"""Deterministic fault injection for the soNUMA fabric.

The paper assumes "reliable on-chip links" but requires that "the RMC
notifies the driver of failures within the soNUMA fabric, including the
loss of links and nodes" (§5.1). This module turns faults into
first-class, *injectable* events so availability behaviour can be
studied the way DRackSim-style rack simulators do: a seeded
:class:`FaultInjector` attaches to a fabric and applies per-link
policies — probabilistic packet drop, payload corruption, duplication,
delay jitter, and transient link flaps (sever for N ns, then restore).

Every decision is drawn from one seeded RNG consumed in transmission
order, so a given (seed, policy, workload) triple reproduces the exact
same fault pattern run after run — the property the determinism tests
pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..protocol import wire

__all__ = ["FaultPolicy", "FaultDecision", "FaultInjector"]


@dataclass(frozen=True)
class FaultPolicy:
    """Per-link fault rates; all probabilities are per transmitted packet."""

    drop_prob: float = 0.0        # packet silently lost on the link
    corrupt_prob: float = 0.0     # one wire bit flipped in flight
    duplicate_prob: float = 0.0   # packet delivered twice
    delay_jitter_ns: float = 0.0  # extra propagation delay, U(0, jitter)

    def __post_init__(self):
        for name in ("drop_prob", "corrupt_prob", "duplicate_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability: {p}")
        if self.delay_jitter_ns < 0:
            raise ValueError("delay jitter must be non-negative")

    @property
    def active(self) -> bool:
        return bool(self.drop_prob or self.corrupt_prob
                    or self.duplicate_prob or self.delay_jitter_ns)


@dataclass
class FaultDecision:
    """The injector's verdict for one packet transmission."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    extra_delay_ns: float = 0.0
    #: Pre-drawn in [0,1): selects which wire bit flips when ``corrupt``
    #: (drawn at decision time so RNG consumption stays in egress order).
    corrupt_r: float = 0.0


class FaultInjector:
    """Seeded, per-link fault source attached to a fabric.

    Install with :meth:`CrossbarFabric.install_fault_injector` (or the
    routed fabric's equivalent); the fabric consults :meth:`decide` for
    every packet crossing a link and applies the verdict.
    """

    def __init__(self, seed: int = 0,
                 default_policy: Optional[FaultPolicy] = None,
                 per_link_streams: bool = False):
        self.seed = seed
        self._rng = random.Random(seed)
        self.default_policy = default_policy or FaultPolicy()
        self._link_policies: Dict[Tuple[int, int], FaultPolicy] = {}
        #: One RNG stream per *directed* link instead of a single shared
        #: stream. Required by the partitioned parallel engine: decisions
        #: for a link are drawn at its source node, so a shared stream's
        #: consumption order would depend on cross-partition interleaving
        #: — per-link streams make each source's draws self-contained.
        self.per_link_streams = per_link_streams
        self._streams: Dict[Tuple[int, int], random.Random] = {}
        self.fabric = None   # bound by install_fault_injector
        self.drops_injected = 0
        self.corruptions_injected = 0
        self.duplicates_injected = 0
        self.delays_injected = 0
        self.flaps_scheduled = 0
        self.undetected_corruptions = 0

    # -- policy management ---------------------------------------------------

    def set_link_policy(self, a: int, b: int, policy: FaultPolicy) -> None:
        """Override the default policy for the (a, b) link (both ways)."""
        self._link_policies[(min(a, b), max(a, b))] = policy

    def policy_for(self, src: int, dst: int) -> FaultPolicy:
        return self._link_policies.get((min(src, dst), max(src, dst)),
                                       self.default_policy)

    # -- per-packet decisions ------------------------------------------------

    def decide(self, src: int, dst: int, packet) -> Optional[FaultDecision]:
        """Draw this transmission's fate; None when the link is clean."""
        policy = self.policy_for(src, dst)
        if not policy.active:
            return None
        rng = self._rng_for(src, dst)
        if policy.drop_prob and rng.random() < policy.drop_prob:
            self.drops_injected += 1
            return FaultDecision(drop=True)
        decision = FaultDecision()
        if policy.corrupt_prob and rng.random() < policy.corrupt_prob:
            decision.corrupt = True
            decision.corrupt_r = rng.random()
            self.corruptions_injected += 1
        if policy.duplicate_prob and rng.random() < policy.duplicate_prob:
            decision.duplicate = True
            self.duplicates_injected += 1
        if policy.delay_jitter_ns:
            decision.extra_delay_ns = rng.random() * policy.delay_jitter_ns
            if decision.extra_delay_ns:
                self.delays_injected += 1
        if decision.corrupt or decision.duplicate \
                or decision.extra_delay_ns:
            return decision
        return None

    def _rng_for(self, src: int, dst: int) -> random.Random:
        if not self.per_link_streams:
            return self._rng
        key = (src, dst)
        rng = self._streams.get(key)
        if rng is None:
            # Deterministic per (seed, src, dst); the constants just
            # spread nearby ids across the seed space.
            rng = random.Random(
                (self.seed * 0x9E3779B1 + src * 0x85EB_CA77 + dst)
                & 0xFFFF_FFFF_FFFF)
            self._streams[key] = rng
        return rng

    def corrupted_copy(self, packet, corrupt_r: float):
        """Model an in-flight bit flip through the real wire encoding.

        Encodes the packet, flips the bit selected by ``corrupt_r``, and
        re-decodes. CRC-16 catches every single-bit error, so this
        returns None (receiver drops the frame); the decoded-packet
        return path exists to model undetected corruption faithfully
        should a multi-bit policy ever be added.
        """
        raw = bytearray(wire.encode(packet))
        bit = int(corrupt_r * len(raw) * 8)
        raw[bit // 8] ^= 1 << (bit % 8)
        try:
            decoded = wire.decode(bytes(raw))
        except ValueError:
            return None
        self.undetected_corruptions += 1
        return decoded

    # -- transient link flaps ------------------------------------------------

    def flap_link(self, a: int, b: int, after_ns: float,
                  down_ns: float) -> None:
        """Sever the (a, b) link ``after_ns`` from now for ``down_ns``."""
        if self.fabric is None:
            raise RuntimeError("injector not installed on a fabric")
        if down_ns <= 0:
            raise ValueError("flap duration must be positive")
        sim = self.fabric.sim
        fabric = self.fabric
        self.flaps_scheduled += 1

        def _flap():
            # Non-daemon on purpose: a scheduled flap always completes,
            # so a run can never end with the link stuck severed.
            yield sim.timeout(after_ns)
            fabric.sever_link(a, b)
            yield sim.timeout(down_ns)
            fabric.restore_link(a, b)

        sim.process(_flap(), name=f"faults.flap{a}-{b}")

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "fault_drops": self.drops_injected,
            "fault_corruptions": self.corruptions_injected,
            "fault_duplicates": self.duplicates_injected,
            "fault_delays": self.delays_injected,
            "fault_flaps": self.flaps_scheduled,
            "fault_undetected": self.undetected_corruptions,
        }
