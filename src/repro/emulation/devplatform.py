"""The development platform: RMCemu on a ccNUMA host (§7.1).

The paper's second evaluation vehicle is a software prototype: Xen VMs
pinned to NUMA domains of a 4-socket Opteron, with the RMC emulated by
kernel threads (RMCemu) and the fabric emulated by shared-memory queues
crossing chip-to-chip links. Its published characteristics (§7.2-7.4,
Table 2):

* remote read base latency ~1.5 us (5x the simulated hardware),
* latency grows steeply with request size (software unrolling is the
  bottleneck), max bandwidth ~1.8 Gb/s,
* send/receive half-duplex latency ~1.4 us, optimal push/pull threshold
  1 KB (vs 256 B on simulated hardware),
* ~1.97 M remote operations per second.

We reproduce the platform by reconfiguring the *same* soNUMA stack with
software per-operation costs (the ``*_overhead_ns`` fields of
:class:`~repro.rmc.rmc.RMCConfig`), NUMA-interconnect fabric latency,
and user-level overheads inflated to emulation-path costs. The
parameters below are calibrated so the four bullet points above hold;
everything else (protocol, unrolling, queues) is shared code.
"""

from __future__ import annotations

from ..cluster.cluster import ClusterConfig
from ..fabric.ni import FabricConfig
from ..node.core import CoreConfig
from ..node.node import NodeConfig
from ..rmc.mmu import MMUConfig
from ..rmc.rmc import RMCConfig

__all__ = [
    "EMU_RMC_CONFIG",
    "EMU_FABRIC_CONFIG",
    "EMU_CORE_CONFIG",
    "dev_platform_cluster_config",
    "DEV_PLATFORM_MESSAGING_THRESHOLD",
]

#: RMCemu software costs per pipeline event. The unroll cost caps the
#: emulated RMC at ~1 line / 280 ns ~= 0.23 GB/s ~= 1.8 Gb/s (Table 2).
EMU_RMC_CONFIG = RMCConfig(
    request_overhead_ns=260.0,   # WQ pickup in the RGP kernel thread
    unroll_overhead_ns=280.0,    # per-line software unroll (the bottleneck)
    rrpp_overhead_ns=230.0,      # per-request software serving
    rcp_overhead_ns=150.0,       # per-reply software completion
    mmu=MMUConfig(),
)

#: Shared-memory queues crossing Opteron chip-to-chip links: higher
#: latency than the on-die fabric, ample bandwidth (HyperTransport).
EMU_FABRIC_CONFIG = FabricConfig(
    link_latency_ns=220.0,
    link_bandwidth_gbps=6.0,
    vl_credits=16,
    credit_return_ns=60.0,
)

#: User-level library costs are similar (same inline functions), but
#: polling crosses NUMA domains, so per-iteration cost is higher.
EMU_CORE_CONFIG = CoreConfig(
    issue_overhead_ns=180.0,
    poll_overhead_ns=60.0,
    callback_overhead_ns=30.0,
)

#: "the threshold is set to a larger value of 1KB for optimal
#: performance" on the development platform (§7.3).
DEV_PLATFORM_MESSAGING_THRESHOLD = 1024


def dev_platform_cluster_config(num_nodes: int,
                                qp_size: int = 64) -> ClusterConfig:
    """A :class:`ClusterConfig` reproducing the development platform.

    The paper emulates a full crossbar among VMs ("We emulate a full
    crossbar and run the protocol described in §6"), so the topology
    stays a crossbar; only the cost structure changes.
    """
    node = NodeConfig(
        rmc=EMU_RMC_CONFIG,
        core=EMU_CORE_CONFIG,
    )
    return ClusterConfig(num_nodes=num_nodes, node=node,
                         fabric=EMU_FABRIC_CONFIG)
