"""Development-platform emulation (Xen/RMCemu, paper §7.1)."""

from .devplatform import (
    DEV_PLATFORM_MESSAGING_THRESHOLD,
    EMU_CORE_CONFIG,
    EMU_FABRIC_CONFIG,
    EMU_RMC_CONFIG,
    dev_platform_cluster_config,
)

__all__ = [
    "DEV_PLATFORM_MESSAGING_THRESHOLD",
    "EMU_CORE_CONFIG",
    "EMU_FABRIC_CONFIG",
    "EMU_RMC_CONFIG",
    "dev_platform_cluster_config",
]
