"""Cache-coherent shared-memory baseline (the Fig. 9 SHM comparator).

The paper's ``SHM(pthreads)`` PageRank baseline runs on a single
cache-coherent multiprocessor: "we model an eight-core multiprocessor
with 4MB of LLC per core. We provision the LLC so that the aggregate
cache size equals that of the eight machines in the soNUMA setting.
Thus, no benefits can be attributed to larger cache capacity in the
soNUMA comparison." (§7.5)

We build it from the *same* node substrate as soNUMA (one
:class:`~repro.node.node.Node` with N cores and an N-times larger L2),
so the comparison attributes differences to the communication model, not
to divergent memory-system modeling.
"""

from __future__ import annotations

from typing import Optional

from ..memory.cache import CacheConfig
from ..memory.hierarchy import MemoryConfig
from ..node.node import Node, NodeConfig
from ..sim import Simulator

__all__ = ["shm_node_config", "build_shm_node"]


def shm_node_config(num_cores: int,
                    llc_per_core_bytes: int = 4 * 1024 * 1024,
                    memory_bytes: int = 64 * 1024 * 1024) -> NodeConfig:
    """A multiprocessor node with LLC provisioned per the paper."""
    if num_cores < 1:
        raise ValueError("need at least one core")
    base = MemoryConfig()
    llc = CacheConfig(
        name="LLC",
        size_bytes=llc_per_core_bytes * num_cores,
        associativity=base.l2.associativity,
        latency_ns=base.l2.latency_ns,
        mshrs=base.l2.mshrs,
    )
    return NodeConfig(
        memory_bytes=memory_bytes,
        num_cores=num_cores,
        memory=MemoryConfig(l1=base.l1, l2=llc, dram=base.dram),
    )


class _NullFabric:
    """A stand-in fabric for a standalone SHM node (no remote traffic)."""

    def __init__(self, sim: Simulator):
        from ..fabric.crossbar import CrossbarFabric

        self._fabric = CrossbarFabric(sim)

    def attach(self, node_id: int):
        return self._fabric.attach(node_id)


def build_shm_node(sim: Optional[Simulator] = None, num_cores: int = 8,
                   **config_kwargs):
    """Construct the SHM multiprocessor; returns (sim, node)."""
    sim = sim or Simulator()
    config = shm_node_config(num_cores, **config_kwargs)
    node = Node(sim, node_id=0, fabric=_NullFabric(sim), config=config)
    return sim, node
