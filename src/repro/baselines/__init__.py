"""Baseline models the paper compares against: TCP/IP, RDMA/IB, SHM."""

from .rdma import RDMAConfig, RDMAModel
from .shm import build_shm_node, shm_node_config
from .tcp import TCPConfig, TCPNetworkModel

__all__ = [
    "RDMAConfig",
    "RDMAModel",
    "TCPConfig",
    "TCPNetworkModel",
    "build_shm_node",
    "shm_node_config",
]
