"""RDMA/InfiniBand baseline (the Table 2 comparator).

The paper compares soNUMA against "an industry-leading commercial
solution that combines the Mellanox ConnectX-3 RDMA host channel adapter
connected to host Xeon E5-2670 2.60GHz via a PCIe-Gen3 bus ... servers
connected back-to-back via a 56Gbps InfiniBand link" [14], reporting:

    Max BW 50 Gb/s, read RTT 1.19 us, fetch-and-add 1.15 us,
    35 M IOPS @ 4 cores / 4 QPs.

What the paper used: real Mellanox hardware (personal communication).
What we build: a component-level latency/bandwidth model whose terms are
the published architectural costs the paper's argument rests on — PCIe
crossings of 400-500 ns ("Studies have shown that it takes 400-500ns to
communicate short bursts over the PCIe bus", §2.2) and the PCIe-Gen3
bandwidth ceiling. The model is calibrated so the four Table 2 numbers
emerge from the components, which is exactly the comparison the paper
makes (soNUMA wins by eliminating the PCIe terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RDMAConfig", "RDMAModel"]


@dataclass(frozen=True)
class RDMAConfig:
    """ConnectX-3-class component costs."""

    #: MMIO doorbell + WQE fetch by the HCA over PCIe (source side).
    post_pcie_ns: float = 300.0
    #: HCA processing per packet direction (transport + DMA engines).
    nic_processing_ns: float = 70.0
    #: Back-to-back InfiniBand wire latency per direction.
    wire_latency_ns: float = 55.0
    #: Destination-side DMA read/write across PCIe + DRAM access.
    remote_dma_ns: float = 360.0
    #: Completion DMA write + CQE poll at the source.
    completion_ns: float = 150.0
    #: 56 Gb/s InfiniBand link (bytes/ns).
    ib_bandwidth_gbps: float = 7.0
    #: PCIe Gen3 x8 effective data bandwidth: the 50 Gb/s ceiling.
    pcie_bandwidth_gbps: float = 6.25
    #: Per-operation host software cost (ibverbs post/poll inline path);
    #: with 4 QPs on 4 cores the paper's setup reaches 35 M IOPS.
    sw_per_op_ns: float = 114.0

    def __post_init__(self):
        values = [self.post_pcie_ns, self.nic_processing_ns,
                  self.wire_latency_ns, self.remote_dma_ns,
                  self.completion_ns, self.sw_per_op_ns]
        if min(values) < 0:
            raise ValueError("costs must be non-negative")
        if min(self.ib_bandwidth_gbps, self.pcie_bandwidth_gbps) <= 0:
            raise ValueError("bandwidths must be positive")


class RDMAModel:
    """Latency/bandwidth/IOPS predictions for the RDMA baseline."""

    def __init__(self, config: RDMAConfig = RDMAConfig()):
        self.config = config

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Max achievable bandwidth: the PCIe bus, not the IB link,
        is the ceiling ("the PCIe-Gen3 bus limits RDMA bandwidth to
        50 Gbps, even with 56Gbps InfiniBand", §7.4)."""
        return min(self.config.ib_bandwidth_gbps,
                   self.config.pcie_bandwidth_gbps) * 8.0

    def read_rtt_ns(self, size: int = 8) -> float:
        """One-sided read round-trip: post -> HCA -> wire -> remote HCA
        -> DMA from host memory -> wire -> DMA into host -> completion."""
        cfg = self.config
        bw = min(cfg.ib_bandwidth_gbps, cfg.pcie_bandwidth_gbps)
        serialization = size / bw
        return (cfg.post_pcie_ns
                + 2 * cfg.nic_processing_ns          # src HCA out + in
                + 2 * cfg.wire_latency_ns
                + 2 * cfg.nic_processing_ns          # dst HCA in + out
                + cfg.remote_dma_ns
                + serialization
                + cfg.completion_ns)

    def read_rtt_us(self, size: int = 8) -> float:
        """Read RTT in microseconds (Table 2's unit)."""
        return self.read_rtt_ns(size) / 1000.0

    def fetch_add_rtt_ns(self) -> float:
        """Atomics are executed by the destination HCA; the path is the
        read path with the DMA replaced by a locked DMA read-modify-write
        (slightly cheaper than a full DMA data fetch)."""
        read_path = self.read_rtt_ns(8)
        return read_path - 40.0  # paper: 1.15 us vs 1.19 us read

    def fetch_add_rtt_us(self) -> float:
        """Fetch-and-add RTT in microseconds (Table 2's unit)."""
        return self.fetch_add_rtt_ns() / 1000.0

    def iops_millions(self, cores: int = 4, qps: int = 4) -> float:
        """Peak small-read rate: limited by per-op software cost per
        core/QP (posts pipeline through the HCA)."""
        per_core = 1e3 / self.config.sw_per_op_ns  # Mops per core
        return per_core * min(cores, qps)

    def bandwidth_gbps(self, size: int) -> float:
        """Streaming read bandwidth at a request size: amortizes the RTT
        over the HCA's deep pipeline; ceiling is the PCIe bus."""
        ceiling = self.effective_bandwidth_gbps
        # Small requests are op-rate-limited (IOPS x size).
        op_limited = self.iops_millions() * 1e6 * size * 8.0 / 1e9
        return min(ceiling, op_limited)

    def sweep(self, sizes) -> List[Tuple[int, float, float]]:
        """(size, read_rtt_us, bandwidth_gbps) rows."""
        return [(s, self.read_rtt_us(s), self.bandwidth_gbps(s))
                for s in sizes]
