"""Commodity TCP/IP network model (the Fig. 1 baseline).

Fig. 1 of the paper runs netpipe between two directly-connected Calxeda
ECX-1000 SoCs (integrated 10 Gb/s fabric): latency exceeds 40 us for
small packets and bandwidth stays under 2 Gb/s for large ones, "due to
the high processing requirements of TCP/IP ... aggravated by the limited
performance offered by ARM cores" (§2.2).

What the paper used: real hardware + Linux TCP. What we build: a
first-order analytical model with the two parameters that produce both
observations — a fixed per-message stack traversal cost and a per-MTU
per-packet CPU cost that caps streaming throughput. This preserves the
behaviour Fig. 1 exists to demonstrate: the three-orders-of-magnitude
gap between commodity networking and local DRAM for fine-grained
accesses (see DESIGN.md substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["TCPConfig", "TCPNetworkModel"]


@dataclass(frozen=True)
class TCPConfig:
    """Calxeda-microserver-class TCP/IP cost parameters."""

    #: Fixed one-way cost: syscall, socket, TCP/IP stack, driver, NIC,
    #: and interrupt path on both hosts (slow ARM Cortex-A9 cores).
    stack_oneway_ns: float = 40_000.0
    #: CPU cost to process one MTU-sized packet (checksums, segmentation,
    #: skb management). 1448 B / 6 us ~= 0.24 GB/s ~= 1.93 Gb/s ceiling.
    per_packet_ns: float = 6_000.0
    #: TCP maximum segment size.
    mss_bytes: int = 1448
    #: Raw link rate (10 Gb/s fabric): 1.25 bytes/ns.
    wire_bandwidth_gbps: float = 1.25

    def __post_init__(self):
        if min(self.stack_oneway_ns, self.per_packet_ns) < 0:
            raise ValueError("costs must be non-negative")
        if self.mss_bytes < 1 or self.wire_bandwidth_gbps <= 0:
            raise ValueError("invalid MSS or wire bandwidth")


class TCPNetworkModel:
    """Netpipe-style latency/bandwidth predictions for commodity TCP."""

    def __init__(self, config: TCPConfig = TCPConfig()):
        self.config = config

    def packets(self, size: int) -> int:
        """MSS-sized packets needed for a message of ``size`` bytes."""
        if size <= 0:
            raise ValueError("message size must be positive")
        return max(1, math.ceil(size / self.config.mss_bytes))

    def one_way_latency_ns(self, size: int) -> float:
        """Netpipe one-way latency (half the ping-pong RTT).

        For latency, per-packet processing is serial with the stack
        traversal (a single message in flight).
        """
        cfg = self.config
        wire = size / cfg.wire_bandwidth_gbps
        return cfg.stack_oneway_ns + self.packets(size) * cfg.per_packet_ns \
            + wire

    def one_way_latency_us(self, size: int) -> float:
        """One-way latency in microseconds (Fig. 1's unit)."""
        return self.one_way_latency_ns(size) / 1000.0

    def streaming_bandwidth_gbps(self, size: int) -> float:
        """Netpipe streaming bandwidth at a given message size.

        When streaming, stack costs amortize over the window but each
        packet still burns ``per_packet_ns`` of CPU; the sender CPU (not
        the 10 Gb/s wire) is the bottleneck, capping throughput below
        2 Gb/s as in Fig. 1.
        """
        cfg = self.config
        npkts = self.packets(size)
        cpu_time = npkts * cfg.per_packet_ns
        wire_time = size / cfg.wire_bandwidth_gbps
        # Per-message pipeline bottleneck plus a residual per-message
        # stack share (batching hides most but not all of it).
        per_message = max(cpu_time, wire_time) + cfg.stack_oneway_ns * 0.05
        return (size / per_message) * 8.0

    def netpipe_sweep(self, sizes) -> List[Tuple[int, float, float]]:
        """(size, latency_us, bandwidth_gbps) rows, Fig. 1's two curves."""
        return [(s, self.one_way_latency_us(s),
                 self.streaming_bandwidth_gbps(s)) for s in sizes]
