"""Address-layout constants and helpers shared across the model.

soNUMA operates at **cache-line granularity** (64 B) over **8 KB pages**
(Table 1 of the paper). Remote addresses are named by the triple
``<node_id, ctx_id, offset>``; this module provides the arithmetic for
splitting/joining addresses, alignment, and line/page iteration used by
the RMC's unrolling logic and the page-table walker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "VA_BITS",
    "PT_LEVELS",
    "PT_LEVEL_BITS",
    "PAGE_OFFSET_BITS",
    "line_align_down",
    "line_align_up",
    "page_align_down",
    "page_align_up",
    "page_number",
    "page_offset",
    "lines_in_range",
    "split_page_indices",
    "RemoteAddress",
]

#: Remote operations transfer whole cache lines (paper §4.1).
CACHE_LINE_SIZE = 64

#: Table 1: "4GB, 8KB pages, single DDR3-1600 channel".
PAGE_SIZE = 8192

#: Bits of page offset (8 KB pages).
PAGE_OFFSET_BITS = 13

#: Radix page-table levels walked by the RMC's hardware page walker.
PT_LEVELS = 4

#: Index bits per level: 4 levels x 9 bits + 13 offset bits = 49-bit VA.
PT_LEVEL_BITS = 9

#: Virtual address width modeled.
VA_BITS = PT_LEVELS * PT_LEVEL_BITS + PAGE_OFFSET_BITS


def line_align_down(addr: int) -> int:
    """Round an address down to its cache-line base."""
    return addr & ~(CACHE_LINE_SIZE - 1)


def line_align_up(addr: int) -> int:
    """Round an address up to the next cache-line boundary."""
    return (addr + CACHE_LINE_SIZE - 1) & ~(CACHE_LINE_SIZE - 1)


def page_align_down(addr: int) -> int:
    """Round an address down to its page base."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Round an address up to the next page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def page_number(addr: int) -> int:
    """Virtual/physical page number containing ``addr``."""
    return addr >> PAGE_OFFSET_BITS


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def lines_in_range(addr: int, length: int) -> List[int]:
    """Base addresses of every cache line touched by [addr, addr+length).

    This is exactly the unroll set the RGP generates for a multi-line
    WQ request (one line-sized network transaction per element).
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    first = line_align_down(addr)
    last = line_align_down(addr + length - 1)
    return list(range(first, last + CACHE_LINE_SIZE, CACHE_LINE_SIZE))


def split_page_indices(vaddr: int) -> Tuple[int, ...]:
    """Per-level page-table indices for a virtual address (root first)."""
    vpn = page_number(vaddr)
    indices = []
    for level in range(PT_LEVELS):
        shift = (PT_LEVELS - 1 - level) * PT_LEVEL_BITS
        indices.append((vpn >> shift) & ((1 << PT_LEVEL_BITS) - 1))
    return tuple(indices)


@dataclass(frozen=True)
class RemoteAddress:
    """The paper's remote naming triple ``<node_id, ctx_id, offset>``.

    ``offset`` is relative to the context segment base on the destination
    node; the destination RMC computes the local virtual address from it
    (paper §4.2, RRPP).
    """

    node_id: int
    ctx_id: int
    offset: int

    def __post_init__(self):
        if self.node_id < 0:
            raise ValueError(f"invalid node_id {self.node_id}")
        if self.ctx_id < 0:
            raise ValueError(f"invalid ctx_id {self.ctx_id}")
        if self.offset < 0:
            raise ValueError(f"invalid offset {self.offset}")

    def advance(self, delta: int) -> "RemoteAddress":
        """A new address ``delta`` bytes further into the same context."""
        return RemoteAddress(self.node_id, self.ctx_id, self.offset + delta)

    def lines(self, length: int) -> Iterator["RemoteAddress"]:
        """Iterate the line-aligned remote addresses covering a transfer."""
        for line in lines_in_range(self.offset, length):
            yield RemoteAddress(self.node_id, self.ctx_id, line)
