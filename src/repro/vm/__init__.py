"""Virtual memory substrate: physical memory, page tables, TLBs, segments."""

from .address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    RemoteAddress,
    line_align_down,
    line_align_up,
    lines_in_range,
    page_align_down,
    page_align_up,
    page_number,
    page_offset,
)
from .address_space import AddressSpace, ContextSegment, SegmentViolation
from .page_table import PageFault, PageTable, PageTableEntry, PageWalker
from .physical import FrameAllocator, OutOfMemoryError, PhysicalMemory
from .tlb import TLB

__all__ = [
    "AddressSpace",
    "CACHE_LINE_SIZE",
    "ContextSegment",
    "FrameAllocator",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "PageFault",
    "PageTable",
    "PageTableEntry",
    "PageWalker",
    "PhysicalMemory",
    "RemoteAddress",
    "SegmentViolation",
    "TLB",
    "line_align_down",
    "line_align_up",
    "lines_in_range",
    "page_align_down",
    "page_align_up",
    "page_number",
    "page_offset",
]
