"""Per-node physical memory with real backing bytes.

Every node owns one :class:`PhysicalMemory`. All data that applications
read or write — local loads/stores, RMC line reads at the destination of
a remote read, payload deposits by the RCP — ultimately lands here, so
functional correctness (does the remote read return the bytes that were
written?) is enforced by construction and independently of any timing
model. See DESIGN.md, "Functional-accuracy note".

The :class:`FrameAllocator` hands out physical page frames to address
spaces; the OS-model device driver uses it to back and pin context
segments (paper §5.1).
"""

from __future__ import annotations

from typing import List

from .address import PAGE_SIZE

__all__ = ["PhysicalMemory", "FrameAllocator", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """No free physical frames remain on this node."""


class PhysicalMemory:
    """A flat byte-addressable physical memory of ``size`` bytes."""

    def __init__(self, size: int):
        if size <= 0 or size % PAGE_SIZE != 0:
            raise ValueError(
                f"physical memory size must be a positive multiple of the "
                f"page size ({PAGE_SIZE}), got {size}"
            )
        self.size = size
        self._data = bytearray(size)

    def read(self, paddr: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``paddr``."""
        self._check_range(paddr, length)
        return bytes(self._data[paddr:paddr + length])

    def write(self, paddr: int, data: bytes) -> None:
        """Write ``data`` at physical address ``paddr``."""
        self._check_range(paddr, len(data))
        self._data[paddr:paddr + len(data)] = data

    def read_u64(self, paddr: int) -> int:
        """Read an 8-byte little-endian unsigned integer (atomics use this)."""
        return int.from_bytes(self.read(paddr, 8), "little")

    def write_u64(self, paddr: int, value: int) -> None:
        """Write an 8-byte little-endian unsigned integer."""
        self.write(paddr, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def _check_range(self, paddr: int, length: int) -> None:
        if paddr < 0 or length < 0 or paddr + length > self.size:
            raise IndexError(
                f"physical access [{paddr}, {paddr + length}) outside "
                f"memory of size {self.size}"
            )


class FrameAllocator:
    """Allocates physical page frames from a :class:`PhysicalMemory`.

    Frames are handed out low-to-high and recycled via a free list. The
    device driver "pins" frames simply by holding the allocation for the
    lifetime of the context segment.
    """

    def __init__(self, memory: PhysicalMemory, reserved_bytes: int = 0):
        if reserved_bytes % PAGE_SIZE != 0:
            raise ValueError("reserved_bytes must be page-aligned")
        self.memory = memory
        self._next_frame = reserved_bytes // PAGE_SIZE
        self._total_frames = memory.size // PAGE_SIZE
        self._free: List[int] = []
        self.allocated_frames = 0

    @property
    def free_frames(self) -> int:
        remaining = self._total_frames - self._next_frame
        return remaining + len(self._free)

    def alloc_frame(self) -> int:
        """Return the physical base address of a fresh (zeroed) frame."""
        if self._free:
            frame = self._free.pop()
        elif self._next_frame < self._total_frames:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise OutOfMemoryError(
                f"out of physical frames ({self._total_frames} total)"
            )
        self.allocated_frames += 1
        paddr = frame * PAGE_SIZE
        self.memory.write(paddr, bytes(PAGE_SIZE))  # zero the frame
        return paddr

    def alloc_frames(self, count: int) -> List[int]:
        """Allocate ``count`` frames; all-or-nothing."""
        if count > self.free_frames:
            raise OutOfMemoryError(
                f"requested {count} frames, only {self.free_frames} free"
            )
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, paddr: int) -> None:
        """Return a frame to the allocator."""
        if paddr % PAGE_SIZE != 0:
            raise ValueError(f"frame address {paddr:#x} not page-aligned")
        self._free.append(paddr // PAGE_SIZE)
        self.allocated_frames -= 1
