"""Radix page tables and the hardware page walker.

The RMC has "direct access to the page tables managed by the operating
system" (paper §5.1) — no page-table replication into device memory. We
model a 4-level radix table. The *structure* is a real radix tree (so the
walker's per-level touch count is faithful), while the node storage is
Python dicts rather than in-simulated-memory arrays; the walker charges
one memory access per level for timing.

Translation faults raise :class:`PageFault`; the RMC's RRPP turns
out-of-segment accesses into error replies before ever reaching the page
table, so a fault here indicates an unmapped-but-in-segment page, which
the driver model treats as a bug (segments are fully backed and pinned at
registration time).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .address import (
    PAGE_SIZE,
    PT_LEVELS,
    page_offset,
    split_page_indices,
)

__all__ = ["PageTable", "PageTableEntry", "PageFault", "PageWalker"]


class PageFault(Exception):
    """Raised when translating a virtual address with no valid mapping."""

    def __init__(self, vaddr: int, asid: int):
        super().__init__(f"page fault at vaddr={vaddr:#x} asid={asid}")
        self.vaddr = vaddr
        self.asid = asid


class PageTableEntry:
    """A leaf PTE: physical frame base plus permission/pin bits."""

    __slots__ = ("frame_paddr", "writable", "pinned")

    def __init__(self, frame_paddr: int, writable: bool = True,
                 pinned: bool = False):
        if frame_paddr % PAGE_SIZE != 0:
            raise ValueError(f"frame {frame_paddr:#x} not page-aligned")
        self.frame_paddr = frame_paddr
        self.writable = writable
        self.pinned = pinned

    def __repr__(self) -> str:  # pragma: no cover
        flags = ("w" if self.writable else "r") + ("p" if self.pinned else "")
        return f"<PTE frame={self.frame_paddr:#x} {flags}>"


class PageTable:
    """A 4-level radix page table for one address space (ASID)."""

    def __init__(self, asid: int):
        self.asid = asid
        self._root: Dict = {}
        self.mapped_pages = 0

    def map(self, vaddr: int, frame_paddr: int, writable: bool = True,
            pinned: bool = False) -> PageTableEntry:
        """Install a leaf mapping for the page containing ``vaddr``."""
        if vaddr % PAGE_SIZE != 0:
            raise ValueError(f"map target {vaddr:#x} not page-aligned")
        node = self._root
        indices = split_page_indices(vaddr)
        for index in indices[:-1]:
            node = node.setdefault(index, {})
        leaf_index = indices[-1]
        if leaf_index in node:
            raise ValueError(f"page {vaddr:#x} already mapped")
        pte = PageTableEntry(frame_paddr, writable=writable, pinned=pinned)
        node[leaf_index] = pte
        self.mapped_pages += 1
        return pte

    def unmap(self, vaddr: int) -> None:
        """Remove the mapping for the page containing ``vaddr``."""
        node = self._root
        indices = split_page_indices(vaddr)
        for index in indices[:-1]:
            if index not in node:
                raise PageFault(vaddr, self.asid)
            node = node[index]
        if indices[-1] not in node:
            raise PageFault(vaddr, self.asid)
        pte = node.pop(indices[-1])
        if pte.pinned:
            raise ValueError(f"cannot unmap pinned page {vaddr:#x}")
        self.mapped_pages -= 1

    def lookup(self, vaddr: int) -> Tuple[PageTableEntry, int]:
        """Walk the radix tree; returns (pte, levels_touched).

        ``levels_touched`` is the number of tree nodes visited, which the
        timed :class:`PageWalker` converts into memory accesses.
        """
        node = self._root
        levels = 0
        indices = split_page_indices(vaddr)
        for index in indices[:-1]:
            levels += 1
            if index not in node:
                raise PageFault(vaddr, self.asid)
            node = node[index]
        levels += 1
        pte = node.get(indices[-1])
        if pte is None:
            raise PageFault(vaddr, self.asid)
        return pte, levels

    def translate(self, vaddr: int) -> int:
        """Virtual-to-physical translation (functional, untimed)."""
        pte, _levels = self.lookup(vaddr)
        return pte.frame_paddr + page_offset(vaddr)

    def is_mapped(self, vaddr: int) -> bool:
        """Whether the page containing ``vaddr`` has a valid mapping."""
        try:
            self.lookup(vaddr)
            return True
        except PageFault:
            return False

    def iter_mappings(self) -> Iterator[Tuple[int, PageTableEntry]]:
        """Yield (vaddr, pte) for every mapped page (test/debug aid)."""

        def walk(node: Dict, prefix: int, level: int):
            from .address import PT_LEVEL_BITS, PAGE_OFFSET_BITS
            for index, child in sorted(node.items()):
                vpn_part = prefix | (
                    index << ((PT_LEVELS - 1 - level) * PT_LEVEL_BITS)
                )
                if level == PT_LEVELS - 1:
                    yield vpn_part << PAGE_OFFSET_BITS, child
                else:
                    yield from walk(child, vpn_part, level + 1)

        yield from walk(self._root, 0, 0)


class PageWalker:
    """The RMC's hardware page walker: timed page-table walks.

    On a TLB miss, the walker issues one memory access per radix level
    through the provided ``memory_access`` coroutine factory (in the full
    node model this is the RMC's MMU path through its L1 cache, so hot
    page-table nodes hit in the cache exactly as the paper intends).
    """

    def __init__(self, memory_access_cost_fn):
        """``memory_access_cost_fn() -> generator yielding sim events``
        charges the cost of a single page-table-node access."""
        self._access = memory_access_cost_fn
        self.walks = 0
        self.levels_touched = 0

    def walk(self, page_table: PageTable, vaddr: int):
        """Timed walk coroutine; returns the leaf PTE."""
        pte, levels = page_table.lookup(vaddr)
        self.walks += 1
        self.levels_touched += levels
        for _ in range(levels):
            yield from self._access()
        return pte
