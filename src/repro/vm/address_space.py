"""Per-process virtual address spaces and context segments.

An :class:`AddressSpace` owns a page table and a simple region allocator.
The OS model (``repro.node.driver``) creates one per process, backs
allocations with physical frames, and registers a contiguous region as
the node's **context segment** — the "range of the node's address space
which is globally accessible by others" (paper §4.1).

Bounds checking of incoming remote offsets against the registered segment
is the RRPP's security check; out-of-range accesses yield error replies
(paper §4.2), which this module expresses via :class:`SegmentViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .address import PAGE_SIZE, page_align_up
from .page_table import PageTable
from .physical import FrameAllocator

__all__ = ["AddressSpace", "ContextSegment", "SegmentViolation"]


class SegmentViolation(Exception):
    """A remote offset fell outside the registered context segment."""

    def __init__(self, offset: int, length: int, segment_size: int):
        super().__init__(
            f"remote access [{offset}, {offset + length}) outside context "
            f"segment of size {segment_size}"
        )
        self.offset = offset
        self.length = length
        self.segment_size = segment_size


@dataclass
class ContextSegment:
    """A registered, pinned, globally-accessible window of an address space.

    The destination RMC computes ``local vaddr = base + offset`` for each
    incoming request and rejects offsets beyond ``size``.
    """

    ctx_id: int
    base_vaddr: int
    size: int
    writable: bool = True

    def check(self, offset: int, length: int) -> None:
        """Validate an incoming remote access; raises SegmentViolation."""
        if offset < 0 or length <= 0 or offset + length > self.size:
            raise SegmentViolation(offset, length, self.size)

    def vaddr_of(self, offset: int) -> int:
        """Local virtual address corresponding to a remote offset."""
        return self.base_vaddr + offset


class AddressSpace:
    """A virtual address space: region allocator + page table + backing.

    Allocation is a simple bump allocator over a large VA window —
    sufficient for the evaluation workloads, which allocate at start-up
    and never free mid-run (context segments are pinned anyway).
    """

    #: All user allocations start here (keeps 0 unmapped to catch bugs).
    BASE_VADDR = 0x1000_0000

    def __init__(self, asid: int, frames: FrameAllocator):
        self.asid = asid
        self.page_table = PageTable(asid)
        self.frames = frames
        self._next_vaddr = self.BASE_VADDR
        self.segment: Optional[ContextSegment] = None

    def allocate(self, size: int, pinned: bool = False,
                 writable: bool = True) -> int:
        """Allocate and back ``size`` bytes; returns the base vaddr."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base = self._next_vaddr
        span = page_align_up(size)
        self._next_vaddr += span + PAGE_SIZE  # guard page between regions
        for page_base in range(base, base + span, PAGE_SIZE):
            frame = self.frames.alloc_frame()
            self.page_table.map(page_base, frame, writable=writable,
                                pinned=pinned)
        return base

    def register_segment(self, ctx_id: int, size: int,
                         writable: bool = True) -> ContextSegment:
        """Allocate, pin, and register the node's context segment."""
        if self.segment is not None:
            raise RuntimeError(
                f"address space {self.asid} already has a context segment"
            )
        base = self.allocate(size, pinned=True, writable=writable)
        self.segment = ContextSegment(ctx_id, base, size, writable)
        return self.segment

    def translate(self, vaddr: int) -> int:
        """Untimed functional translation helper."""
        return self.page_table.translate(vaddr)
