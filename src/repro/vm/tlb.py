"""Set-associative TLB with address-space-identifier (ASID) tags.

The RMC's MMU "contains a TLB for fast access to recent address
translations ... TLB entries are tagged with address space identifiers
corresponding to the application context. TLB misses are serviced by a
hardware page walker." (paper §4.3). Table 1 gives a 32-entry RMC TLB.

The replacement policy is true LRU within a set, implemented with an
ordered dict per set.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from .address import page_number
from .page_table import PageTableEntry

__all__ = ["TLB"]


class TLB:
    """A set-associative, ASID-tagged translation lookaside buffer."""

    def __init__(self, entries: int = 32, associativity: int = 4):
        if entries <= 0 or associativity <= 0:
            raise ValueError("entries and associativity must be positive")
        if entries % associativity != 0:
            raise ValueError(
                f"entries ({entries}) must be a multiple of associativity "
                f"({associativity})"
            )
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        # set index -> OrderedDict[(asid, vpn) -> PTE], LRU first
        self._sets: Dict[int, OrderedDict] = {
            i: OrderedDict() for i in range(self.num_sets)
        }
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, asid: int, vaddr: int) -> Optional[PageTableEntry]:
        """Probe the TLB; returns the PTE on hit, None on miss."""
        vpn = page_number(vaddr)
        tlb_set = self._sets[self._set_index(vpn)]
        key = (asid, vpn)
        pte = tlb_set.get(key)
        if pte is not None:
            tlb_set.move_to_end(key)  # mark most-recently-used
            self.hits += 1
            return pte
        self.misses += 1
        return None

    def insert(self, asid: int, vaddr: int, pte: PageTableEntry) -> None:
        """Fill after a page walk, evicting the set's LRU entry if full."""
        vpn = page_number(vaddr)
        tlb_set = self._sets[self._set_index(vpn)]
        key = (asid, vpn)
        if key in tlb_set:
            tlb_set.move_to_end(key)
            tlb_set[key] = pte
            return
        if len(tlb_set) >= self.associativity:
            tlb_set.popitem(last=False)  # evict LRU
        tlb_set[key] = pte

    def invalidate_page(self, asid: int, vaddr: int) -> bool:
        """Shoot down one translation; returns whether it was present."""
        vpn = page_number(vaddr)
        tlb_set = self._sets[self._set_index(vpn)]
        removed = tlb_set.pop((asid, vpn), None) is not None
        if removed:
            self.invalidations += 1
        return removed

    def invalidate_asid(self, asid: int) -> int:
        """Shoot down every translation of one address space."""
        removed = 0
        for tlb_set in self._sets.values():
            stale = [key for key in tlb_set if key[0] == asid]
            for key in stale:
                del tlb_set[key]
                removed += 1
        self.invalidations += removed
        return removed

    def flush(self) -> None:
        """Drop every entry (e.g. on RMC reset after a fabric failure)."""
        for tlb_set in self._sets.values():
            count = len(tlb_set)
            tlb_set.clear()
            self.invalidations += count

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
