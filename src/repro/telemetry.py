"""Cluster-wide telemetry: aggregate and render component statistics.

Every component of the model keeps counters (cache hits, DRAM traffic,
RMC pipeline activity, NI packets, fabric deliveries, TLB behaviour).
This module gathers them into one structured snapshot per node — used
by the examples for end-of-run reports and by tests to assert on
system-level behaviour (e.g. "the server's RMC served N requests and
its core executed nothing").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["NodeSnapshot", "ClusterSnapshot", "snapshot",
           "merge_snapshots", "format_report", "LogLinearHistogram"]


class LogLinearHistogram:
    """Fixed-bucket log-linear latency histogram (HdrHistogram-style).

    The serving tier records one sample per request at rates where
    keeping raw samples (as :class:`~repro.sim.LatencyStat` does) would
    dominate memory, so quantiles come from a fixed bucket layout
    instead: values below ``min_value_ns`` share bucket 0; above it,
    each power-of-two decade is split into ``sub_buckets`` equal linear
    buckets. Relative quantile error is bounded by ``1 / sub_buckets``
    (3.1% at the default 32), every bucket count is an integer, and
    bucket boundaries depend only on the constructor arguments — so
    histograms recorded on different workers or shards :meth:`merge`
    exactly and the reported percentiles are bit-deterministic.

    Quantiles are reported as the *upper bound* of the bucket holding
    the target rank (a conservative estimate: the true quantile is never
    above the reported one by construction).
    """

    def __init__(self, min_value_ns: float = 16.0, sub_buckets: int = 32,
                 name: str = ""):
        if min_value_ns <= 0:
            raise ValueError("min_value_ns must be positive")
        if sub_buckets < 1:
            raise ValueError("need at least one sub-bucket per decade")
        self.min_value_ns = float(min_value_ns)
        self.sub_buckets = sub_buckets
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.max_recorded = 0.0

    def _index(self, value: float) -> int:
        if value < self.min_value_ns:
            return 0
        ratio = value / self.min_value_ns
        mantissa, exponent = math.frexp(ratio)   # ratio = m * 2**e, m in [0.5, 1)
        decade = exponent - 1                    # floor(log2(ratio)) >= 0
        low = float(1 << decade)
        width = low / self.sub_buckets
        sub = min(int((ratio - low) / width), self.sub_buckets - 1)
        return 1 + decade * self.sub_buckets + sub

    def bucket_upper_ns(self, index: int) -> float:
        """Upper value bound of bucket ``index`` (ns)."""
        if index <= 0:
            return self.min_value_ns
        decade, sub = divmod(index - 1, self.sub_buckets)
        low = float(1 << decade)
        width = low / self.sub_buckets
        return self.min_value_ns * (low + (sub + 1) * width)

    def record(self, value_ns: float) -> None:
        """Drop one latency sample (ns) into its bucket."""
        if value_ns < 0:
            raise ValueError(f"negative latency sample: {value_ns}")
        index = self._index(value_ns)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        if value_ns > self.max_recorded:
            self.max_recorded = value_ns

    def merge(self, other: "LogLinearHistogram") -> None:
        """Fold another histogram (same layout) into this one."""
        if (other.min_value_ns != self.min_value_ns
                or other.sub_buckets != self.sub_buckets):
            raise ValueError("cannot merge histograms with different "
                             "bucket layouts")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        if other.max_recorded > self.max_recorded:
            self.max_recorded = other.max_recorded

    def quantile(self, q: float) -> float:
        """Latency (ns) at quantile ``q`` in [0, 1]: the upper bound of
        the bucket containing the ceil(q * count)-th sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return self.bucket_upper_ns(index)
        return self.bucket_upper_ns(max(self.buckets))  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def as_dict(self) -> Dict[str, float]:
        """Headline percentiles for reports (all ns)."""
        return {
            "count": self.count,
            "p50_ns": self.p50,
            "p99_ns": self.p99,
            "p999_ns": self.p999,
            "max_ns": self.max_recorded,
        }


@dataclass
class NodeSnapshot:
    """One node's counters at a point in simulated time."""

    node_id: int
    rmc_counters: Dict[str, int]
    cache_stats: Dict[str, Dict[str, float]]
    tlb_hit_rate: float
    tlb_misses: int
    maq_peak: int
    itt_peak: int
    ni_packets_sent: int
    ni_packets_received: int
    ni_bytes_sent: int
    dram_bytes: int
    ct_cache_hit_rate: float
    driver_failures: int
    # Reliability counters (appended with defaults so callers that
    # construct snapshots positionally keep working).
    ni_checksum_dropped: int = 0
    ni_duplicates_dropped: int = 0
    fabric_node_stats: Dict[str, int] = field(default_factory=dict)
    suspected_nodes: int = 0
    #: Frames dropped because their sender's incarnation was fenced by
    #: the membership service (stale epoch — a dead node still talking).
    ni_epoch_fenced: int = 0
    #: Resilience counters (coded checkpoints / op log / degraded
    #: reads); empty dict when the node never touched the subsystem.
    resilience: Dict[str, int] = field(default_factory=dict)
    #: Multi-transport stack health: per-channel state/EWMAs plus
    #: failover/failback/veto counters for nodes driving a
    #: :class:`~repro.transport.session.FailoverSession`; empty dict
    #: otherwise.
    transport: Dict[str, object] = field(default_factory=dict)


@dataclass
class ClusterSnapshot:
    """All nodes plus fabric-level statistics."""

    time_ns: float
    nodes: List[NodeSnapshot]
    fabric_stats: Dict[str, int]
    #: Membership-service stats (epoch, evictions, rejoins, MTTR) when
    #: the cluster has one enabled; empty dict otherwise.
    membership_stats: Dict[str, float] = field(default_factory=dict)
    #: Engine accounting for parallel runs: per-partition
    #: ``events_processed`` / wall-clock plus totals (see
    #: :func:`merge_snapshots`). Deliberately *not* part of the model
    #: state — bit-exactness comparisons must exclude it, since wall
    #: clock differs run to run.
    engine_stats: Dict[str, object] = field(default_factory=dict)

    def node(self, node_id: int) -> NodeSnapshot:
        """One node's snapshot by id (partition-merge safe: snapshots
        of a partitioned cluster hold a subset of node ids)."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no snapshot for node {node_id}")

    def total(self, attribute: str) -> int:
        """Sum a NodeSnapshot numeric field across nodes."""
        return sum(getattr(n, attribute) for n in self.nodes)


def _resilience_dict(cluster, node_id: int) -> Dict[str, int]:
    counters = getattr(cluster, "resilience", {}).get(node_id)
    return counters.as_dict() if counters is not None else {}


def _transport_dict(cluster, node_id: int) -> Dict[str, object]:
    stack = getattr(cluster, "transports", {}).get(node_id)
    return stack.stats() if stack is not None else {}


def snapshot(cluster) -> ClusterSnapshot:
    """Collect a :class:`ClusterSnapshot` from a live cluster."""
    nodes = []
    for node in cluster.nodes:
        rmc = node.rmc
        fabric = cluster.fabric
        node_stats = (fabric.node_stats(node.node_id)
                      if hasattr(fabric, "node_stats") else {})
        nodes.append(NodeSnapshot(
            node_id=node.node_id,
            rmc_counters=rmc.counters.as_dict(),
            cache_stats=node.memsys.cache_stats(),
            tlb_hit_rate=rmc.mmu.tlb.hit_rate,
            tlb_misses=rmc.mmu.tlb.misses,
            maq_peak=rmc.mmu.maq.peak_in_use,
            itt_peak=rmc.itt.peak_in_flight,
            ni_packets_sent=node.ni.packets_sent,
            ni_packets_received=node.ni.packets_received,
            ni_bytes_sent=node.ni.bytes_sent,
            dram_bytes=node.memsys.dram.bytes_transferred,
            ct_cache_hit_rate=rmc.ct_cache.hit_rate,
            driver_failures=len(node.driver.failures),
            ni_checksum_dropped=node.ni.checksum_dropped,
            ni_duplicates_dropped=node.ni.duplicates_dropped,
            fabric_node_stats=node_stats,
            suspected_nodes=len(node.driver.suspects),
            ni_epoch_fenced=getattr(node.ni, "epoch_fenced", 0),
            resilience=_resilience_dict(cluster, node.node_id),
            transport=_transport_dict(cluster, node.node_id),
        ))
    membership = getattr(cluster, "membership", None)
    return ClusterSnapshot(time_ns=cluster.sim.now, nodes=nodes,
                           fabric_stats=cluster.fabric.stats(),
                           membership_stats=(membership.stats()
                                             if membership is not None
                                             else {}))


def merge_snapshots(parts: List[ClusterSnapshot],
                    engine_stats: Optional[Dict[str, object]] = None
                    ) -> ClusterSnapshot:
    """Fold per-partition snapshots into one cluster-wide snapshot.

    Every counter increments on exactly one rank (deliveries at the
    destination's rank, drops and injector decisions at the source's),
    so fabric counters *sum* to the serial run's values and the node
    lists are disjoint — concatenation sorted by id reproduces the
    serial snapshot bit for bit. ``engine_stats`` (typically
    ``PartitionedRun.engine_stats()``) is attached verbatim.
    """
    if not parts:
        raise ValueError("no snapshots to merge")
    nodes = sorted((n for p in parts for n in p.nodes),
                   key=lambda n: n.node_id)
    fabric: Dict[str, int] = {}
    for part in parts:
        for key, value in part.fabric_stats.items():
            fabric[key] = fabric.get(key, 0) + value
    return ClusterSnapshot(
        time_ns=max(p.time_ns for p in parts),
        nodes=nodes,
        fabric_stats=fabric,
        membership_stats={},
        engine_stats=engine_stats or {},
    )


def format_report(snap: ClusterSnapshot) -> str:
    """Human-readable end-of-run report."""
    lines = [
        f"cluster telemetry @ t={snap.time_ns / 1000:.1f} us",
        f"fabric: {snap.fabric_stats}",
    ]
    if snap.engine_stats:
        es = snap.engine_stats
        lines.append(
            f"engine: events={es.get('total_events_processed', 0)} "
            f"rounds={es.get('rounds', 0)} "
            f"wall={es.get('wall_s', 0.0):.3f}s "
            f"({es.get('events_per_sec', 0.0):,.0f} ev/s)")
        for part in es.get("partitions", []):
            nodes = part.get("nodes", [])
            lines.append(
                f"  partition {part.get('rank')}: nodes={nodes} "
                f"events={part.get('events_processed', 0)} "
                f"wall={part.get('wall_s', 0.0):.3f}s")
    if snap.membership_stats:
        ms = snap.membership_stats
        lines.append(
            f"membership: epoch={ms.get('epoch', 0)} "
            f"live={ms.get('live_members', 0)} "
            f"evictions={ms.get('evictions', 0)} "
            f"rejoins={ms.get('rejoins', 0)} "
            f"mttr={ms.get('mttr_ns', 0.0) / 1000:.1f} us")
    for node in snap.nodes:
        lines.append(f"node {node.node_id}:")
        lines.append(
            f"  rmc: served={node.rmc_counters.get('requests_served', 0)} "
            f"wq={node.rmc_counters.get('wq_requests', 0)} "
            f"lines={node.rmc_counters.get('lines_sent', 0)} "
            f"completions={node.rmc_counters.get('cq_completions', 0)}")
        lines.append(
            f"  mmu: tlb_hit={node.tlb_hit_rate:.2%} "
            f"maq_peak={node.maq_peak} itt_peak={node.itt_peak} "
            f"ct$_hit={node.ct_cache_hit_rate:.2%}")
        lines.append(
            f"  ni: tx={node.ni_packets_sent} rx={node.ni_packets_received} "
            f"tx_bytes={node.ni_bytes_sent}")
        lines.append(f"  dram bytes: {node.dram_bytes}")
        errors = {k: v for k, v in node.rmc_counters.items()
                  if k.startswith("errors_")}
        if errors:
            lines.append(f"  errors: {errors}")
        reliability = {
            "retransmissions":
                node.rmc_counters.get("retransmissions", 0),
            "lines_retransmitted":
                node.rmc_counters.get("lines_retransmitted", 0),
            "timed_out":
                node.rmc_counters.get("transactions_timed_out", 0),
            "stale_replies": node.rmc_counters.get("replies_stale", 0),
            "dup_replies": node.rmc_counters.get("replies_duplicate", 0),
            "crc_dropped": node.ni_checksum_dropped,
            "dup_frames_dropped": node.ni_duplicates_dropped,
            "link_drops": node.fabric_node_stats.get("packets_dropped", 0),
            "epoch_fenced": node.ni_epoch_fenced,
        }
        if any(reliability.values()):
            lines.append(f"  reliability: {reliability}")
        if any(node.resilience.values()):
            lines.append(f"  resilience: {node.resilience}")
        if node.transport:
            counters = node.transport.get("counters", {})
            channels = node.transport.get("channels", {})
            states = {name: ch.get("state")
                      for name, ch in channels.items()}
            lines.append(
                f"  transport: active={node.transport.get('active')} "
                f"policy={node.transport.get('policy')} "
                f"failovers={counters.get('failovers', 0)} "
                f"failbacks={counters.get('failbacks', 0)} "
                f"vetoes={counters.get('vetoes', 0)} "
                f"channels={states}")
        if node.driver_failures:
            lines.append(f"  fabric failures seen: {node.driver_failures}")
        if node.suspected_nodes:
            lines.append(f"  suspected peers: {node.suspected_nodes}")
    return "\n".join(lines)
