"""Cluster builder: N nodes over a fabric, with global-context setup.

The highest-level entry point of the library: a :class:`Cluster` builds
the fabric, the nodes, and (optionally) a global context spanning every
node so applications can immediately issue remote operations.

"all operating system instances of an soNUMA fabric are under a single
administrative domain" (§5.1) — context ids are coordinated centrally
here, exactly as a rack-scale deployment's control plane would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fabric.crossbar import CrossbarFabric
from ..fabric.ni import FabricConfig
from ..fabric.partition import PartitionedCrossbar
from ..fabric.router import RoutedFabric
from ..fabric.topology import Topology
from ..node.node import Node, NodeConfig
from ..rmc.context import ContextEntry
from ..rmc.queues import QueuePair
from ..sim import PartitionError, PartitionPlan, Simulator

__all__ = ["ClusterConfig", "Cluster", "GlobalContext", "NodeMap"]


class NodeMap:
    """Mapping of ``node_id -> Node`` that iterates like the old list.

    A partitioned cluster instantiates only the nodes its rank owns;
    indexing a node that lives on another rank raises
    :class:`~repro.sim.PartitionError` instead of silently touching
    state that would diverge from the serial run.
    """

    def __init__(self, nodes):
        self._nodes: Dict[int, Node] = {n.node_id: n for n in nodes}

    def __getitem__(self, node_id: int) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise PartitionError(
                f"node {node_id} is not simulated by this partition")
        return node

    def get(self, node_id: int, default=None):
        return self._nodes.get(node_id, default)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self):
        return iter(sorted(self._nodes.values(),
                           key=lambda n: n.node_id))

    def __len__(self) -> int:
        return len(self._nodes)


@dataclass(frozen=True)
class ClusterConfig:
    """Whole-system configuration (Table 1 defaults throughout)."""

    num_nodes: int = 2
    node: NodeConfig = field(default_factory=NodeConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    #: None => full crossbar (the paper's simulated configuration);
    #: otherwise packets traverse the given multi-hop topology.
    topology: Optional[Topology] = None

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.topology is not None \
                and self.topology.num_nodes < self.num_nodes:
            raise ValueError("topology smaller than the cluster")


@dataclass
class GlobalContext:
    """A context opened on every node: the partitioned global address
    space applications program against."""

    ctx_id: int
    segment_size: int
    entries: Dict[int, ContextEntry]
    qps: Dict[int, List[QueuePair]]

    def qp(self, node_id: int, index: int = 0) -> QueuePair:
        """A node's ``index``-th registered queue pair in this context."""
        return self.qps[node_id][index]

    def entry(self, node_id: int) -> ContextEntry:
        """A node's context entry (address space + segment) for this ctx."""
        return self.entries[node_id]


class Cluster:
    """N soNUMA nodes joined by a memory fabric."""

    def __init__(self, sim: Optional[Simulator] = None,
                 config: Optional[ClusterConfig] = None,
                 partition: Optional[PartitionPlan] = None,
                 rank: int = 0):
        self.sim = sim or Simulator()
        self.config = config or ClusterConfig()
        self.partition = partition
        self.rank = rank
        #: Every node id in the cluster — identical on all ranks, unlike
        #: ``nodes`` which holds only this partition's instances.
        self.all_node_ids: List[int] = list(range(self.config.num_nodes))
        paired = self.config.fabric.flow_control == "paired"
        if partition is not None or paired:
            if self.config.topology is not None:
                raise PartitionError(
                    "paired flow control / partitioned runs support the "
                    "crossbar fabric only (topology must be None)")
            plan = partition or PartitionPlan.single(self.config.num_nodes)
            if plan.num_nodes != self.config.num_nodes:
                raise PartitionError(
                    f"partition plan covers {plan.num_nodes} nodes but "
                    f"the cluster has {self.config.num_nodes}")
            self.fabric = PartitionedCrossbar(self.sim, self.config.fabric,
                                              plan, rank=rank)
            owned = plan.nodes_of(rank)
        elif self.config.topology is None:
            self.fabric = CrossbarFabric(self.sim, self.config.fabric)
            owned = self.all_node_ids
        else:
            self.fabric = RoutedFabric(self.sim, self.config.topology,
                                       self.config.fabric)
            owned = self.all_node_ids
        self.nodes = NodeMap(
            Node(self.sim, node_id, self.fabric, self.config.node)
            for node_id in owned
        )
        #: Set by :meth:`enable_membership` / :meth:`fault_controller`.
        self.membership = None
        self.faults = None
        #: node_id -> ResilienceCounters, created on demand by
        #: :meth:`resilience_counters` (telemetry reads this).
        self.resilience: Dict[int, object] = {}
        #: node_id -> TransportStack for nodes driving a multi-transport
        #: failover session (telemetry reads health/failover counters
        #: and the degradation timeline from here).
        self.transports: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def is_primary(self) -> bool:
        """True on rank 0 (and always in serial runs): the rank that
        logs cluster-wide (node-agnostic) fault-timeline events so a
        merged parallel timeline matches the serial one."""
        return self.partition is None or self.rank == 0

    # -- failure handling control plane (§5.1) -------------------------------

    def enable_membership(self, interval_ns: float = 20_000.0,
                          lease_ns: Optional[float] = None,
                          on_join=None, on_evict=None, on_rejoin=None):
        """Start the lease-based membership service: every node probes
        every other with RPING heartbeats; lease expiry evicts (with
        epoch fencing on all NIs), pong resumption rejoins. Callbacks
        (``fn(node_id, epoch)``) passed here are registered before the
        initial joins fire. Returns the
        :class:`~repro.cluster.membership.MembershipService`.

        On a *partitioned* cluster the probing mesh cannot run (each
        rank simulates only its own nodes), so this returns a
        :class:`~repro.cluster.membership.ScheduledMembership` instead:
        same interface, same fencing, but evictions/rejoins are driven
        deterministically from the replicated fault controller rather
        than from RPING detectors."""
        from .membership import MembershipService, ScheduledMembership

        if self.membership is not None:
            raise RuntimeError("membership already enabled")
        service_cls = (ScheduledMembership if self.partition is not None
                       else MembershipService)
        self.membership = service_cls(self, interval_ns=interval_ns,
                                      lease_ns=lease_ns)
        for callback, registry in ((on_join, self.membership.on_join),
                                   (on_evict, self.membership.on_evict),
                                   (on_rejoin, self.membership.on_rejoin)):
            if callback is not None:
                registry.append(callback)
        self.membership.start()
        if self.faults is not None:
            self.faults.membership = self.membership
        return self.membership

    def fault_controller(self, seed: int = 0):
        """Create (once) the node-level fault controller, bound to the
        membership service when one is enabled. Returns the
        :class:`~repro.cluster.failures.NodeFaultController`."""
        from .failures import NodeFaultController

        if self.faults is None:
            self.faults = NodeFaultController(self, self.membership,
                                              seed=seed)
        return self.faults

    def resilience_counters(self, node_id: int):
        """The node's :class:`~repro.resilience.counters
        .ResilienceCounters`, created on first use. The resilience
        subsystem (striped checkpoints, op logs, coded KV) increments
        them; telemetry snapshots fold them into the per-node report."""
        from ..resilience.counters import ResilienceCounters

        if node_id not in self.resilience:
            self.resilience[node_id] = ResilienceCounters()
        return self.resilience[node_id]

    def on_evict(self, callback) -> None:
        """Register ``fn(node_id, epoch)`` fired on every eviction."""
        self._membership_required().on_evict.append(callback)

    def on_rejoin(self, callback) -> None:
        """Register ``fn(node_id, epoch)`` fired on every rejoin."""
        self._membership_required().on_rejoin.append(callback)

    def on_join(self, callback) -> None:
        """Register ``fn(node_id, epoch)`` fired for each initial join."""
        self._membership_required().on_join.append(callback)

    def _membership_required(self):
        if self.membership is None:
            raise RuntimeError(
                "call enable_membership() before registering callbacks")
        return self.membership

    def create_global_context(self, ctx_id: int, segment_size: int,
                              qps_per_node: int = 1,
                              qp_size: int = 64) -> GlobalContext:
        """Open ``ctx_id`` on every node and create QPs for each."""
        entries: Dict[int, ContextEntry] = {}
        qps: Dict[int, List[QueuePair]] = {}
        for node in self.nodes:
            entries[node.node_id] = node.driver.open_context(
                ctx_id, segment_size)
            qps[node.node_id] = [
                node.driver.create_qp(ctx_id, size=qp_size)
                for _ in range(qps_per_node)
            ]
        return GlobalContext(ctx_id=ctx_id, segment_size=segment_size,
                             entries=entries, qps=qps)

    def run(self, until: Optional[float] = None) -> float:
        """Advance the whole-system simulation."""
        return self.sim.run(until=until)

    # -- functional helpers for tests and examples --------------------------

    def poke_segment(self, node_id: int, ctx_id: int, offset: int,
                     data: bytes) -> None:
        """Write bytes directly into a node's context segment (untimed).

        Handles page-boundary crossings (frames need not be physically
        contiguous even when the segment is virtually contiguous).
        """
        from ..vm.address import PAGE_SIZE

        entry = self.nodes[node_id].driver.contexts[ctx_id]
        phys = self.nodes[node_id].phys
        vaddr = entry.segment.vaddr_of(offset)
        written = 0
        while written < len(data):
            room = PAGE_SIZE - (vaddr % PAGE_SIZE)
            span = min(len(data) - written, room)
            paddr = entry.address_space.translate(vaddr)
            phys.write(paddr, data[written:written + span])
            vaddr += span
            written += span

    def peek_segment(self, node_id: int, ctx_id: int, offset: int,
                     length: int) -> bytes:
        """Read bytes directly from a node's context segment (untimed)."""
        from ..vm.address import PAGE_SIZE

        entry = self.nodes[node_id].driver.contexts[ctx_id]
        phys = self.nodes[node_id].phys
        vaddr = entry.segment.vaddr_of(offset)
        out = bytearray()
        while len(out) < length:
            room = PAGE_SIZE - (vaddr % PAGE_SIZE)
            span = min(length - len(out), room)
            paddr = entry.address_space.translate(vaddr)
            out += phys.read(paddr, span)
            vaddr += span
        return bytes(out)
