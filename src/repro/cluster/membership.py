"""Lease-based cluster membership with monotonic epochs (§5.1).

"All operating system instances of an soNUMA fabric are under a single
administrative domain" — this module models that domain's control plane:
a membership service that layers *leases* on the driver-level RPING
heartbeat detectors and maintains two monotonic counters:

* the **cluster epoch** — bumped on every membership change (eviction,
  rejoin), giving applications a cheap staleness check ("has the world
  changed since I looked?");
* a per-node **incarnation** — stamped by each node's NI into the wire
  trailer of every frame it transmits. When the service evicts a node it
  installs a *fence* on every surviving NI: frames carrying the dead
  incarnation are dropped at the link layer, so a reply that was in
  flight when its sender was declared dead — or that a gray-partitioned
  sender keeps emitting after eviction — can never complete into a CQ.
  A restarted node is assigned the next incarnation before it touches
  the fabric, so its new traffic passes the same fence its old traffic
  dies on.

The service is a modeling stand-in for a control plane reached out of
band (the rack's management network): it has global knowledge, reacts to
any node's detector, and mutates NI fences directly. Under a symmetric
partition both sides are suspected and evicted; when the partition heals
the pongs resume and both rejoin under fresh incarnations — epoch
fencing makes that safe even though the "dead" nodes never stopped
running (the split-brain case in-memory replication papers fence with
exactly this mechanism).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["MemberState", "MemberRecord", "MembershipService",
           "ScheduledMembership"]


class MemberState(enum.Enum):
    ALIVE = "alive"
    EVICTED = "evicted"


@dataclass
class MemberRecord:
    """Control-plane view of one node."""

    node_id: int
    state: MemberState = MemberState.ALIVE
    #: The incarnation currently authorized to speak for this node.
    incarnation: int = 1
    #: Frames below this incarnation are fenced on every peer NI.
    fenced_below: int = 0
    evicted_at: Optional[float] = None
    rejoined_at: Optional[float] = None
    evictions: int = 0
    rejoins: int = 0

    @property
    def is_live(self) -> bool:
        return self.state is MemberState.ALIVE


class MembershipService:
    """The single-domain control plane: leases, epochs, fencing."""

    def __init__(self, cluster, interval_ns: float = 20_000.0,
                 lease_ns: Optional[float] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.interval_ns = interval_ns
        self.lease_ns = lease_ns if lease_ns is not None else 3 * interval_ns
        #: Cluster configuration epoch; bumps on every membership change.
        self.epoch = 1
        self.members: Dict[int, MemberRecord] = {
            node.node_id: MemberRecord(node.node_id)
            for node in cluster.nodes
        }
        #: Callbacks ``fn(node_id, epoch)`` fired on membership changes.
        self.on_evict: List[Callable[[int, int], None]] = []
        self.on_rejoin: List[Callable[[int, int], None]] = []
        self.on_join: List[Callable[[int, int], None]] = []
        self.evictions = 0
        self.rejoins = 0
        #: Downtime samples (rejoined_at - evicted_at), for MTTR.
        self.repair_times_ns: List[float] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Stamp incarnation 1 into every NI and start every node's
        heartbeat detector, wired into this service."""
        if self._started:
            raise RuntimeError("membership service already started")
        self._started = True
        for node in self.cluster.nodes:
            node.ni.epoch = self.members[node.node_id].incarnation
        for node in self.cluster.nodes:
            self.attach_detector(node)
            for callback in self.on_join:
                callback(node.node_id, self.epoch)

    def attach_detector(self, node) -> None:
        """(Re-)wire one node's driver heartbeat into the service and
        start probing. Used at start and again after a node restart."""
        driver = node.driver
        reporter = node.node_id
        driver.on_node_failure = (
            lambda peer, _r=reporter: self._peer_suspected(_r, peer))
        driver.on_node_recovery = (
            lambda peer, _r=reporter: self._peer_recovered(_r, peer))
        peers = [n.node_id for n in self.cluster.nodes
                 if n.node_id != node.node_id]
        driver.enable_failure_detector(peers, interval_ns=self.interval_ns,
                                       lease_ns=self.lease_ns)

    # -- queries -------------------------------------------------------------

    def is_live(self, node_id: int) -> bool:
        return self.members[node_id].is_live

    def live_members(self) -> List[int]:
        return sorted(nid for nid, rec in self.members.items()
                      if rec.is_live)

    def incarnation_of(self, node_id: int) -> int:
        return self.members[node_id].incarnation

    # -- transitions ---------------------------------------------------------

    def _peer_suspected(self, reporter: int, peer: int) -> None:
        """``reporter``'s detector saw ``peer``'s lease expire.

        Reports from evicted nodes are discarded: an evicted node's own
        probes are fenced at every survivor, so its detector soon
        suspects the whole (healthy) cluster — trusting it would cascade
        the one eviction into all of them."""
        if not self.members[reporter].is_live:
            return
        record = self.members.get(peer)
        if record is None or not record.is_live:
            return   # already evicted: duplicate suspicions are no-ops
        self.evict(peer)

    def _peer_recovered(self, reporter: int, peer: int) -> None:
        """``reporter``'s detector got a pong from a suspect again."""
        if not self.members[reporter].is_live:
            return   # evicted reporters have no say (see above)
        record = self.members.get(peer)
        if record is None or record.is_live:
            return   # already rejoined: duplicate recoveries are no-ops
        self.rejoin(peer)

    def evict(self, node_id: int) -> int:
        """Declare a node dead: bump the epoch, fence its incarnation on
        every surviving NI, fire callbacks. Returns the new epoch."""
        record = self.members[node_id]
        if not record.is_live:
            return self.epoch
        record.state = MemberState.EVICTED
        record.fenced_below = record.incarnation + 1
        record.evicted_at = self.sim.now
        record.evictions += 1
        self.evictions += 1
        self.epoch += 1
        for node in self.cluster.nodes:
            if node.node_id == node_id:
                continue
            node.ni.fence_peer(node_id, record.fenced_below)
            # Requester-side fence: stop retransmitting toward the dead
            # node — a retry could otherwise outlive its crash-restart
            # window and "succeed" against the wiped reborn incarnation.
            node.rmc.abort_peer(node_id)
        for callback in self.on_evict:
            callback(node_id, self.epoch)
        return self.epoch

    def register_restart(self, node_id: int) -> int:
        """A crashed node is being restarted (fault controller): assign
        its next incarnation and stamp it into the node's NI *before* the
        node touches the fabric, so its first frames already pass the
        fence installed at eviction. Returns the new incarnation."""
        record = self.members[node_id]
        if record.incarnation < record.fenced_below:
            record.incarnation = record.fenced_below
        node = self.cluster.nodes[node_id]
        node.ni.epoch = record.incarnation
        return record.incarnation

    def rejoin(self, node_id: int) -> int:
        """A previously evicted node is reachable again: readmit it under
        a fresh incarnation and a new epoch. Returns the new epoch.

        If the node was *restarted* (controller called
        :meth:`register_restart`) its incarnation is already beyond the
        fence. If it merely recovered from a gray period or a partition —
        it never stopped running — the fence would still be dropping its
        traffic, so re-incarnate it here before readmission."""
        record = self.members[node_id]
        if record.is_live:
            return self.epoch
        if record.incarnation < record.fenced_below:
            record.incarnation = record.fenced_below
            self.cluster.nodes[node_id].ni.epoch = record.incarnation
        record.state = MemberState.ALIVE
        record.rejoined_at = self.sim.now
        record.rejoins += 1
        self.rejoins += 1
        if record.evicted_at is not None:
            self.repair_times_ns.append(record.rejoined_at
                                        - record.evicted_at)
        self.epoch += 1
        for callback in self.on_rejoin:
            callback(node_id, self.epoch)
        return self.epoch

    # -- observability -------------------------------------------------------

    @property
    def mttr_ns(self) -> float:
        """Mean time to repair: average observed downtime (0 if none)."""
        if not self.repair_times_ns:
            return 0.0
        return sum(self.repair_times_ns) / len(self.repair_times_ns)

    def stats(self) -> Dict[str, float]:
        return {
            "epoch": self.epoch,
            "live_members": len(self.live_members()),
            "evictions": self.evictions,
            "rejoins": self.rejoins,
            "mttr_ns": self.mttr_ns,
        }


class ScheduledMembership(MembershipService):
    """Deterministic membership for *partitioned* clusters.

    The RPING-based :class:`MembershipService` is cluster-global: every
    node probes every other, and the first detector to see a lease
    expire drives the eviction. On a partitioned (multi-rank) cluster
    each rank simulates only its own nodes, so the probing mesh cannot
    run — and worse, detector timing would depend on which rank hosts
    which detector, breaking the parallel engine's bit-for-bit
    determinism guarantee.

    This variant replaces probing with *scheduled* transitions that
    every rank replays identically:

    * the fault controller reports each crash through
      :meth:`note_crash`; the eviction fires exactly ``lease_ns`` later
      (the instant the last pre-crash lease would have expired) on
      every rank, fencing only the nodes the rank owns;
    * a restart (:meth:`register_restart`, called on every rank by the
      replicated controller) schedules the rejoin one heartbeat
      ``interval_ns`` after reboot — the first probe round that would
      have seen a pong.

    The service keeps a record for *every* node id in the cluster (not
    just the rank-owned ones) so liveness queries agree across ranks,
    and it mirrors the full :class:`MembershipService` interface:
    ``is_live`` / ``evict`` / ``register_restart`` / ``rejoin`` /
    ``attach_detector`` (a no-op here) / ``stats`` and the callback
    registries. Epoch fencing and incarnations behave exactly as in the
    probing service; only the *detection delay* is idealized (a fixed
    lease instead of probe-phase-dependent), which is the price of a
    partition-invariant model.
    """

    def __init__(self, cluster, interval_ns: float = 20_000.0,
                 lease_ns: Optional[float] = None):
        super().__init__(cluster, interval_ns=interval_ns,
                         lease_ns=lease_ns)
        # Records for all nodes, including ones other ranks simulate.
        self.members = {nid: MemberRecord(nid)
                        for nid in cluster.all_node_ids}

    def start(self) -> None:
        """Stamp incarnation 1 into every owned NI; no probes are
        started. Join callbacks fire for every node id so rank-level
        bookkeeping is identical everywhere."""
        if self._started:
            raise RuntimeError("membership service already started")
        self._started = True
        for node in self.cluster.nodes:
            node.ni.epoch = self.members[node.node_id].incarnation
        for nid in self.cluster.all_node_ids:
            for callback in self.on_join:
                callback(nid, self.epoch)

    def attach_detector(self, node) -> None:
        """No probing mesh on a partitioned cluster: transitions come
        from :meth:`note_crash` / :meth:`register_restart` instead."""

    def note_crash(self, node_id: int) -> None:
        """Fault-controller hook: a node was fail-stopped *now*. Evict
        it when its lease runs out, unless it was restarted first —
        exactly what the probing detectors would conclude, at the
        deterministic worst-case instant."""
        record = self.members.get(node_id)
        if record is None or not record.is_live:
            return
        sim = self.sim
        incarnation = record.incarnation

        def _lease_expiry():
            yield sim.timeout(self.lease_ns)
            current = self.members[node_id]
            faults = self.cluster.faults
            if current.is_live and current.incarnation == incarnation \
                    and (faults is None or faults.is_down(node_id)):
                self.evict(node_id)

        sim.process(_lease_expiry(), name=f"membership.lease{node_id}")

    def register_restart(self, node_id: int) -> int:
        """Replicated restart path: advance the incarnation past the
        fence everywhere, stamp the NI only on the owning rank, and
        schedule the deterministic rejoin (first post-reboot heartbeat
        round). Returns the new incarnation."""
        record = self.members[node_id]
        if record.incarnation < record.fenced_below:
            record.incarnation = record.fenced_below
        node = self.cluster.nodes.get(node_id)
        if node is not None:
            node.ni.epoch = record.incarnation
        sim = self.sim

        def _first_pong():
            yield sim.timeout(self.interval_ns)
            faults = self.cluster.faults
            if faults is None or not faults.is_down(node_id):
                self.rejoin(node_id)

        sim.process(_first_pong(), name=f"membership.rejoin{node_id}")
        return record.incarnation

    def rejoin(self, node_id: int) -> int:
        """As the base service, but the NI re-incarnation stamp only
        touches rank-owned nodes."""
        record = self.members[node_id]
        if record.is_live:
            return self.epoch
        if record.incarnation < record.fenced_below:
            record.incarnation = record.fenced_below
            node = self.cluster.nodes.get(node_id)
            if node is not None:
                node.ni.epoch = record.incarnation
        record.state = MemberState.ALIVE
        record.rejoined_at = self.sim.now
        record.rejoins += 1
        self.rejoins += 1
        if record.evicted_at is not None:
            self.repair_times_ns.append(record.rejoined_at
                                        - record.evicted_at)
        self.epoch += 1
        for callback in self.on_rejoin:
            callback(node_id, self.epoch)
        return self.epoch


