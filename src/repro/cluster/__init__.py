"""Cluster assembly: multi-node systems, global contexts, membership,
and node-level fault injection."""

from .cluster import Cluster, ClusterConfig, GlobalContext
from .failures import FaultEvent, NodeFaultController
from .membership import MemberRecord, MembershipService, MemberState

__all__ = [
    "Cluster",
    "ClusterConfig",
    "FaultEvent",
    "GlobalContext",
    "MemberRecord",
    "MemberState",
    "MembershipService",
    "NodeFaultController",
]
