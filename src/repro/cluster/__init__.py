"""Cluster assembly: multi-node systems and global contexts."""

from .cluster import Cluster, ClusterConfig, GlobalContext

__all__ = ["Cluster", "ClusterConfig", "GlobalContext"]
