"""Whole-node fault injection: crash, restart, partition, gray-degrade.

PR 1's :class:`~repro.fabric.faults.FaultInjector` perturbs individual
*links* (drop/corrupt/duplicate/jitter). This controller operates one
level up, on *nodes*, the granularity at which the paper's control plane
observes failures ("the RMC notifies the driver of failures within the
soNUMA fabric, including the loss of links and nodes", §5.1):

* :meth:`crash` — fail-stop: the RMC halts (in-flight operations are
  error-completed so the node's own blocked coroutines can observe
  their death), the heartbeat detector stops, and the fabric drops all
  frames to and from the node.
* :meth:`restart` — the node reboots with amnesia: context segments are
  zeroed, link-layer state is reset, the RMC resumes with no QPs, and
  (when a membership service is attached) the node gets its next
  incarnation stamped into its NI *before* it re-enters the fabric.
* :meth:`partition` / :meth:`heal_partition` — sever every link between
  two node groups (split brain); both sides keep running.
* :meth:`gray_fail` / :meth:`gray_restore` — the node stops answering
  RPING probes but keeps serving data: dead to the control plane, alive
  on the data path. The membership fence is what stops its stale replies.
* :meth:`gray_degrade` — a sick-but-alive node: apply a per-link
  :class:`~repro.fabric.faults.FaultPolicy` (loss/jitter) to every link
  touching it, composing with the PR 1 injector.

Every action is recorded in an ordered, timestamped event log, and the
:meth:`schedule_*` variants drive the same actions from inside the
simulation at deterministic times — the crash-timeline benchmark replays
a (seed, schedule, workload) triple and gets identical JSON out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..fabric.faults import FaultPolicy

__all__ = ["FaultEvent", "NodeFaultController"]


@dataclass
class FaultEvent:
    """One entry of the fault timeline."""

    time_ns: float
    kind: str        # crash | restart | partition | heal | gray | ...
    node_id: int     # -1 for group-level events (partitions)
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"time_ns": self.time_ns, "kind": self.kind,
                "node_id": self.node_id, "detail": self.detail}


class NodeFaultController:
    """Crash/restart/partition/gray injection for whole nodes."""

    def __init__(self, cluster, membership=None, seed: int = 0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.membership = membership
        self.seed = seed
        self.rng = random.Random(seed)
        self.events: List[FaultEvent] = []
        self.down: Set[int] = set()
        self.gray: Set[int] = set()
        self.crashes = 0
        self.restarts = 0
        if not hasattr(self.fabric, "fail_node"):
            raise TypeError(
                f"{type(self.fabric).__name__} cannot fail nodes")

    # -- queries -------------------------------------------------------------

    def _all_node_ids(self) -> List[int]:
        """Every node id in the cluster, including ones another rank
        simulates (partitioned runs replicate fabric-level fault state
        everywhere)."""
        ids = getattr(self.cluster, "all_node_ids", None)
        if ids is not None:
            return list(ids)
        return [n.node_id for n in self.cluster.nodes]

    def is_down(self, node_id: int) -> bool:
        return node_id in self.down

    def is_gray(self, node_id: int) -> bool:
        return node_id in self.gray

    def _log(self, kind: str, node_id: int, detail: str = "") -> FaultEvent:
        event = FaultEvent(time_ns=self.sim.now, kind=kind,
                           node_id=node_id, detail=detail)
        self.events.append(event)
        return event

    # -- fail-stop crash / restart -------------------------------------------

    def crash(self, node_id: int, reason: str = "node_crash") -> int:
        """Fail-stop the node now. Returns the number of its in-flight
        operations error-completed (so its coroutines unblock)."""
        if node_id in self.down:
            return 0
        # Partitioned runs replicate the controller on every rank: the
        # fabric-level failure state is applied everywhere (all ranks
        # must agree on reachability), node-local actions and the
        # timeline entry happen only on the owning rank — merged rank
        # timelines then reproduce the serial timeline exactly.
        node = self.cluster.nodes.get(node_id)
        failed = 0
        if node is not None:
            failed = node.rmc.halt(reason)
            node.driver.disable_failure_detector()
        self.fabric.fail_node(node_id)
        self.down.add(node_id)
        self.gray.discard(node_id)
        # Scheduled (partitioned) membership has no probing detectors:
        # tell it directly so the eviction fires at lease expiry on
        # every rank. The RPING-based service has no such hook — its
        # detectors notice the silence on their own.
        note_crash = getattr(self.membership, "note_crash", None)
        if note_crash is not None:
            note_crash(node_id)
        if node is not None:
            node.rmc.mute_pings = False
            self.crashes += 1
            self._log("crash", node_id,
                      f"{failed} in-flight op(s) error-completed")
        return failed

    def restart(self, node_id: int, wipe_memory: bool = True) -> None:
        """Reboot a crashed node: amnesia, fresh incarnation, rejoin path.

        The node's context *registrations* survive (a rebooted node runs
        the same boot-time driver setup) but their segment contents are
        zeroed — checkpointed state must be re-fetched from peers. All
        QPs are gone; applications on the node must create new ones.
        """
        if node_id not in self.down:
            raise RuntimeError(f"node {node_id} is not down")
        node = self.cluster.nodes.get(node_id)
        if node is not None:
            if wipe_memory:
                for ctx_id, entry in node.driver.contexts.items():
                    self.cluster.poke_segment(node_id, ctx_id, 0,
                                              bytes(entry.segment.size))
            node.rmc.resume()
            node.ni.reset_link_state()
        incarnation = 0
        if self.membership is not None:
            incarnation = self.membership.register_restart(node_id)
        self.fabric.restore_node(node_id)
        if node is not None:
            node.driver.reset_failure_detector()
            if self.membership is not None:
                self.membership.attach_detector(node)
        self.down.discard(node_id)
        if node is not None:
            self.restarts += 1
            self._log("restart", node_id,
                      f"incarnation {incarnation}" if incarnation
                      else "no membership attached")

    # -- gray failures -------------------------------------------------------

    def gray_fail(self, node_id: int) -> None:
        """Dead to the control plane, alive on the data path: the node
        stops answering RPING probes but keeps serving requests. Its
        lease expires, membership evicts it, and the epoch fence starts
        killing its still-flowing replies — the split-brain scenario."""
        node = self.cluster.nodes.get(node_id)
        self.gray.add(node_id)
        if node is not None:
            node.rmc.mute_pings = True
            self._log("gray", node_id, "RPING muted")

    def gray_restore(self, node_id: int) -> None:
        """End a gray period: probes are answered again; membership
        rejoins the node under a fresh incarnation on the next pong."""
        node = self.cluster.nodes.get(node_id)
        self.gray.discard(node_id)
        if node is not None:
            node.rmc.mute_pings = False
            self._log("gray_restore", node_id)

    def gray_degrade(self, node_id: int,
                     policy: Optional[FaultPolicy] = None,
                     drop_prob: float = 0.05,
                     delay_jitter_ns: float = 500.0) -> FaultPolicy:
        """Make every link touching the node lossy/jittery (sick node).

        Composes with the PR 1 injector: requires one installed on the
        fabric (the controller's seed does not replace the injector's).
        """
        injector = getattr(self.fabric, "fault_injector", None)
        if injector is None:
            raise RuntimeError(
                "gray_degrade needs a FaultInjector installed on the fabric")
        if policy is None:
            policy = FaultPolicy(drop_prob=drop_prob,
                                 delay_jitter_ns=delay_jitter_ns)
        for other in self._all_node_ids():
            if other != node_id:
                injector.set_link_policy(node_id, other, policy)
        if getattr(self.cluster, "is_primary", True):
            self._log("gray_degrade", node_id,
                      f"drop={policy.drop_prob} "
                      f"jitter={policy.delay_jitter_ns}ns")
        return policy

    def gray_undegrade(self, node_id: int) -> None:
        """Restore clean links around a degraded node."""
        injector = getattr(self.fabric, "fault_injector", None)
        if injector is None:
            return
        clean = FaultPolicy()
        for other in self._all_node_ids():
            if other != node_id:
                injector.set_link_policy(node_id, other, clean)
        if getattr(self.cluster, "is_primary", True):
            self._log("gray_undegrade", node_id)

    # -- partitions ----------------------------------------------------------

    def partition(self, group_a: Sequence[int],
                  group_b: Optional[Sequence[int]] = None) -> None:
        """Sever every link between ``group_a`` and ``group_b`` (default:
        the rest of the cluster). Both sides keep running — split brain."""
        if not hasattr(self.fabric, "sever_link"):
            raise TypeError(
                f"{type(self.fabric).__name__} cannot sever links")
        side_a = set(group_a)
        side_b = (set(group_b) if group_b is not None
                  else set(self._all_node_ids()) - side_a)
        for a in sorted(side_a):
            for b in sorted(side_b):
                self.fabric.sever_link(a, b)
        if getattr(self.cluster, "is_primary", True):
            self._log("partition", -1,
                      f"{sorted(side_a)} | {sorted(side_b)}")

    def heal_partition(self, group_a: Sequence[int],
                       group_b: Optional[Sequence[int]] = None) -> None:
        """Restore every link between the two groups."""
        side_a = set(group_a)
        side_b = (set(group_b) if group_b is not None
                  else set(self._all_node_ids()) - side_a)
        for a in sorted(side_a):
            for b in sorted(side_b):
                self.fabric.restore_link(a, b)
        if getattr(self.cluster, "is_primary", True):
            self._log("heal", -1, f"{sorted(side_a)} | {sorted(side_b)}")

    # -- scheduled (in-simulation) fault timelines ---------------------------

    def schedule_crash(self, node_id: int, at_ns: float,
                       restart_after_ns: Optional[float] = None) -> None:
        """Crash the node at ``at_ns`` (sim time from now); optionally
        restart it ``restart_after_ns`` later. Deterministic: no RNG."""
        sim = self.sim

        def _timeline():
            yield sim.timeout(at_ns)
            self.crash(node_id)
            if restart_after_ns is not None:
                yield sim.timeout(restart_after_ns)
                self.restart(node_id)

        sim.process(_timeline(), name=f"faults.crash{node_id}")

    def schedule_gray(self, node_id: int, at_ns: float,
                      duration_ns: Optional[float] = None) -> None:
        """Gray-fail the node at ``at_ns``; optionally restore after
        ``duration_ns``."""
        sim = self.sim

        def _timeline():
            yield sim.timeout(at_ns)
            self.gray_fail(node_id)
            if duration_ns is not None:
                yield sim.timeout(duration_ns)
                self.gray_restore(node_id)

        sim.process(_timeline(), name=f"faults.gray{node_id}")

    def schedule_random_crashes(self, count: int, horizon_ns: float,
                                restart_after_ns: float,
                                candidates: Optional[Sequence[int]] = None
                                ) -> List[Dict[str, float]]:
        """Draw ``count`` (node, time) crash/restart pairs from the
        controller's seeded RNG over ``[0, horizon_ns)`` and schedule
        them. Returns the drawn schedule (deterministic per seed)."""
        pool = (list(candidates) if candidates is not None
                else self._all_node_ids())
        schedule = []
        for _ in range(count):
            node_id = self.rng.choice(pool)
            at_ns = self.rng.uniform(0, horizon_ns)
            schedule.append({"node_id": node_id, "at_ns": at_ns,
                             "restart_after_ns": restart_after_ns})
        # Schedule in time order so same-seed runs interleave identically.
        for entry in sorted(schedule, key=lambda e: (e["at_ns"],
                                                     e["node_id"])):
            self.schedule_crash(entry["node_id"], entry["at_ns"],
                                entry["restart_after_ns"])
        return schedule

    # -- observability -------------------------------------------------------

    def timeline(self) -> List[Dict[str, object]]:
        """The executed fault timeline as JSON-friendly dicts."""
        return [event.as_dict() for event in self.events]

    def stats(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "nodes_down": len(self.down),
            "nodes_gray": len(self.gray),
            "fault_events": len(self.events),
        }
