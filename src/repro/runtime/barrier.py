"""Barrier synchronization in software (§5.3).

"We have also implemented a simple barrier primitive such that nodes
sharing a ctx_id can synchronize. Each participating node broadcasts the
arrival at a barrier by issuing a write to an agreed upon offset on each
of its peers. The nodes then poll locally until all of them reach the
barrier."

Arrival lines carry a monotonically increasing *generation* number so
the same barrier object can be reused across supersteps (the BSP loop of
the PageRank study, §7.5) without a reset phase.

Failure awareness: a plain barrier deadlocks the moment one participant
dies — every survivor polls forever for an arrival that will never come.
This barrier therefore integrates with the membership layer: when a
participant is evicted (:meth:`Barrier.note_eviction`, wired to the
membership service's eviction callback), waiters raise a typed
:class:`RankFailed` exactly once per dead rank and thereafter *exclude*
it from both the broadcast and the poll. A node that learns of its own
eviction raises :class:`NodeEvicted` instead. Error completions toward a
participant (the RMC's retransmission budget ran out — the peer is
unreachable) are treated the same way, so the barrier degrades to a
typed error even without a membership service wired.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..vm.address import CACHE_LINE_SIZE
from .layout import CommLayout, MessagingConfig
from .qp_api import RMCSession

__all__ = ["Barrier", "RankFailed", "NodeEvicted"]


class RankFailed(RuntimeError):
    """A barrier participant died (evicted by membership, or its writes
    error-completed). The rank is excluded from subsequent waits; the
    application decides whether to recover (checkpoint restart) or
    abort."""

    def __init__(self, rank: int):
        super().__init__(f"barrier participant {rank} failed")
        self.rank = rank


class NodeEvicted(RuntimeError):
    """*This* node was evicted from the cluster (its lease expired —
    e.g. it was crashed, gray-partitioned, or declared dead). Raised by
    collectives on the evicted node itself so its coroutines stop
    participating instead of acting on a fenced incarnation."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} was evicted from the cluster")
        self.node_id = node_id


class Barrier:
    """A reusable, failure-aware all-node barrier over one-sided writes."""

    def __init__(self, session: RMCSession, node_id: int,
                 participants: Sequence[int],
                 layout: Optional[CommLayout] = None):
        if node_id not in participants:
            raise ValueError("node must be among the participants")
        self.session = session
        self.node_id = node_id
        self.participants = sorted(participants)
        self.layout = layout or CommLayout(
            session.ctx.segment.size, max(participants) + 1,
            MessagingConfig())
        self._generation = 0
        self._scratch = session.alloc_buffer(CACHE_LINE_SIZE)
        self.barriers_completed = 0
        #: Ranks permanently excluded from this barrier (already
        #: surfaced to the application via :class:`RankFailed`).
        self.excluded: Set[int] = set()
        #: Evicted ranks not yet surfaced: the next wait (or poll
        #: iteration) raises one :class:`RankFailed` per entry.
        self._pending_failures: List[int] = []
        #: Set when the membership layer evicts *this* node.
        self.self_evicted = False

    # -- membership integration ---------------------------------------------

    def note_eviction(self, rank: int) -> None:
        """Membership callback: ``rank`` was evicted from the cluster."""
        if rank == self.node_id:
            self.self_evicted = True
            return
        if rank in self.participants and rank not in self.excluded \
                and rank not in self._pending_failures:
            self._pending_failures.append(rank)

    def exclude(self, rank: int) -> None:
        """Recovery: mark ``rank`` dead *without* raising — the caller
        already learned of the failure through another channel (its own
        :class:`RankFailed`, a failed shuffle read, the recovery plan)
        and is acknowledging it. Idempotent."""
        if rank == self.node_id or rank not in self.participants:
            return
        if rank in self._pending_failures:
            self._pending_failures.remove(rank)
        self.excluded.add(rank)

    @property
    def generation(self) -> int:
        """The current barrier generation (for recovery resync)."""
        return self._generation

    def resync_generation(self, generation: int) -> None:
        """Recovery: jump to ``generation`` so survivors whose barrier
        counts diverged during a crash re-align before re-entering the
        collective. Arrival lines are monotonic, so jumping forward can
        never confuse a stale line for a fresh arrival."""
        if generation < self._generation:
            raise ValueError("barrier generations only move forward")
        self._generation = generation

    @property
    def live_participants(self) -> List[int]:
        return [p for p in self.participants if p not in self.excluded]

    def _raise_pending(self) -> None:
        if self.self_evicted:
            raise NodeEvicted(self.node_id)
        if self._pending_failures:
            rank = self._pending_failures.pop(0)
            self.excluded.add(rank)
            raise RankFailed(rank)

    def _absorb_session_failures(self) -> None:
        """Error completions toward a live participant mean the RMC gave
        up on it (budget exhausted): treat it as failed."""
        for peer in self.session.failed_peers:
            if peer in self.participants and peer != self.node_id \
                    and peer not in self.excluded \
                    and peer not in self._pending_failures:
                self._pending_failures.append(peer)

    # -- the collective ------------------------------------------------------

    def wait(self):
        """Timed coroutine: arrive at the barrier and block until every
        live participant has arrived at this generation.

        Raises :class:`RankFailed` (one per newly dead rank) or
        :class:`NodeEvicted` instead of deadlocking."""
        self._raise_pending()
        self._generation += 1
        generation = self._generation
        payload = generation.to_bytes(8, "little")
        yield from self.session.buffer_write(self._scratch, payload)

        # Broadcast arrival to every live peer (pipelined one-sided writes).
        my_line = self.layout.barrier_offset(self.node_id)
        for peer in self.participants:
            if peer == self.node_id or peer in self.excluded:
                continue
            yield from self.session.wait_for_slot()
            yield from self.session.write_async(peer, my_line,
                                                self._scratch, 8)
        yield from self.session.drain_cq()
        self._absorb_session_failures()
        self._raise_pending()

        # Poll locally until all live peers' arrival lines reach generation.
        core = self.session.core
        space = self.session.space
        for peer in self.participants:
            if peer == self.node_id:
                continue
            vaddr = self.session.ctx.segment.vaddr_of(
                self.layout.barrier_offset(peer))
            while peer not in self.excluded:
                self._raise_pending()
                yield core.compute(core.config.poll_overhead_ns)
                yield from core.touch(space, vaddr)
                seen = int.from_bytes(self.session.buffer_peek(vaddr, 8),
                                      "little")
                if seen >= generation:
                    break
        self.barriers_completed += 1
        return generation
