"""Barrier synchronization in software (§5.3).

"We have also implemented a simple barrier primitive such that nodes
sharing a ctx_id can synchronize. Each participating node broadcasts the
arrival at a barrier by issuing a write to an agreed upon offset on each
of its peers. The nodes then poll locally until all of them reach the
barrier."

Arrival lines carry a monotonically increasing *generation* number so
the same barrier object can be reused across supersteps (the BSP loop of
the PageRank study, §7.5) without a reset phase.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..vm.address import CACHE_LINE_SIZE
from .layout import CommLayout, MessagingConfig
from .qp_api import RMCSession

__all__ = ["Barrier"]


class Barrier:
    """A reusable all-node barrier over one-sided writes."""

    def __init__(self, session: RMCSession, node_id: int,
                 participants: Sequence[int],
                 layout: Optional[CommLayout] = None):
        if node_id not in participants:
            raise ValueError("node must be among the participants")
        self.session = session
        self.node_id = node_id
        self.participants = sorted(participants)
        self.layout = layout or CommLayout(
            session.ctx.segment.size, max(participants) + 1,
            MessagingConfig())
        self._generation = 0
        self._scratch = session.alloc_buffer(CACHE_LINE_SIZE)
        self.barriers_completed = 0

    def wait(self):
        """Timed coroutine: arrive at the barrier and block until every
        participant has arrived at this generation."""
        self._generation += 1
        generation = self._generation
        payload = generation.to_bytes(8, "little")
        yield from self.session.buffer_write(self._scratch, payload)

        # Broadcast arrival to every peer (pipelined one-sided writes).
        my_line = self.layout.barrier_offset(self.node_id)
        for peer in self.participants:
            if peer == self.node_id:
                continue
            yield from self.session.wait_for_slot()
            yield from self.session.write_async(peer, my_line,
                                                self._scratch, 8)
        yield from self.session.drain_cq()

        # Poll locally until all peers' arrival lines reach generation.
        core = self.session.core
        space = self.session.space
        for peer in self.participants:
            if peer == self.node_id:
                continue
            vaddr = self.session.ctx.segment.vaddr_of(
                self.layout.barrier_offset(peer))
            while True:
                yield core.compute(core.config.poll_overhead_ns)
                yield from core.touch(space, vaddr)
                seen = int.from_bytes(self.session.buffer_peek(vaddr, 8),
                                      "little")
                if seen >= generation:
                    break
        self.barriers_completed += 1
        return generation
