"""The RMC access library (paper §5.2).

"The QPs are accessed via a lightweight API, a set of C/C++ inline
functions that issue remote memory commands and synchronize by polling
the completion queue. We expose a synchronous (blocking) and an
asynchronous (non-blocking) set of functions for both reads and writes."

This module is the Python rendering of that API. An :class:`RMCSession`
binds one application thread (a core) to one QP; its methods are timed
coroutines run inside the simulation:

* ``read_sync`` / ``write_sync`` — blocking one-sided operations;
* ``read_async`` / ``write_async`` — the Split-C-like asynchronous API
  of Fig. 4: post now, run a callback when the CQ reports completion;
* ``wait_for_slot`` — process CQ events until the WQ has a free slot
  (the paper's ``rmc_wait_for_slot``);
* ``drain_cq`` — wait for all outstanding operations (``rmc_drain_cq``);
* ``fetch_add_sync`` / ``compare_swap_sync`` — remote atomics, executed
  within the destination node's coherence hierarchy (§5.2).

Timing faithfully includes the software overhead per request — the very
overhead that caps per-core operation rate at ~10 M ops/s (§7.5) — plus
the coherent WQ/CQ line accesses shared with the RMC.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..node.core import Core
from ..protocol import Opcode
from ..rmc.context import ContextEntry
from ..rmc.queues import CQEntry, QueuePair, WQEntry

__all__ = ["RemoteOpError", "RemoteOpFailed", "RMCSession"]


#: Marker callback registered by synchronous operations: their
#: completion is stored for the waiting coroutine instead of being
#: dispatched. Fire-and-forget async posts (callback=None) are *never*
#: stored — a stale stored completion under a recycled WQ index would
#: satisfy a later synchronous wait prematurely.
_SYNC_WAITER = object()


class RemoteOpFailed(RuntimeError):
    """A remote operation completed with an error status delivered
    through the CQ — a segment violation (§4.2) or a reliability-layer
    ``timeout`` after the RMC exhausted its retransmission budget."""

    def __init__(self, wq_index: int, error: str):
        super().__init__(f"remote operation in WQ slot {wq_index} "
                         f"failed: {error}")
        self.wq_index = wq_index
        self.error = error


#: Backward-compatible alias (the original name of the exception).
RemoteOpError = RemoteOpFailed


class RMCSession:
    """One thread's handle on a QP: issue operations, poll completions."""

    def __init__(self, core: Core, qp: QueuePair, ctx: ContextEntry):
        if qp.ctx_id != ctx.ctx_id:
            raise ValueError("QP and context entry do not match")
        self.core = core
        self.qp = qp
        self.ctx = ctx
        self.space = ctx.address_space
        # wq_index -> (callback, sync_token) for posted operations.
        self._callbacks: Dict[int, Tuple[Optional[Callable], object]] = {}
        # sync token -> CQEntry for completions reaped before their
        # waiter resumed. Keyed by a monotonic token, NOT the wq_index:
        # the WQ slot is released the moment the completion is reaped,
        # so a concurrent coroutine can repost into the same index and
        # would otherwise satisfy its wait with the previous op's entry.
        self._finished: Dict[int, CQEntry] = {}
        self._sync_seq = 0
        # wq_index -> WQEntry for every operation still outstanding
        # (reliability: reset() returns these so reads can be replayed).
        self._posted: Dict[int, WQEntry] = {}
        #: CQ entries that reported errors (observable by applications).
        self.errors: list = []
        #: Destinations that have produced at least one error completion
        #: (messaging uses this to break spin loops on dead peers).
        self.failed_peers: Set[int] = set()
        self.ops_issued = 0
        self.ops_completed = 0
        #: Optional transparent one-sided write log (resilience): when
        #: attached, every remote write records (dst, offset, payload)
        #: at post time so a restarted peer can be caught up by replay.
        self.write_log = None

    # -- buffers ------------------------------------------------------------

    def alloc_buffer(self, size: int) -> int:
        """Allocate a pinned local buffer in this context's space."""
        return self.space.allocate(size, pinned=True)

    def buffer_write(self, vaddr: int, data: bytes):
        """Timed local write into a buffer (app-side data preparation)."""
        return self.core.mem_write(self.space, vaddr, data)

    def buffer_read(self, vaddr: int, length: int):
        """Timed local read of a buffer (app-side result consumption)."""
        return self.core.mem_read(self.space, vaddr, length)

    def buffer_poke(self, vaddr: int, data: bytes) -> None:
        """Untimed functional buffer write (test/setup convenience)."""
        position = 0
        while position < len(data):
            from ..vm.address import PAGE_SIZE
            room = PAGE_SIZE - ((vaddr + position) % PAGE_SIZE)
            span = min(len(data) - position, room)
            paddr = self.space.translate(vaddr + position)
            self.core.port.write_bytes(paddr, data[position:position + span])
            position += span

    def buffer_peek(self, vaddr: int, length: int) -> bytes:
        """Untimed functional buffer read (test/verify convenience)."""
        from ..vm.address import PAGE_SIZE
        out = bytearray()
        while len(out) < length:
            room = PAGE_SIZE - ((vaddr + len(out)) % PAGE_SIZE)
            span = min(length - len(out), room)
            paddr = self.space.translate(vaddr + len(out))
            out += self.core.port.read_bytes(paddr, span)
        return bytes(out)

    def attach_write_log(self, log) -> None:
        """Attach a :class:`~repro.resilience.oplog.OneSidedWriteLog`:
        from now on every remote write issued through this session is
        transparently recorded (uncoordinated-recovery support).
        Pass ``None`` to detach."""
        self.write_log = log

    def _log_write(self, dst_nid: int, offset: int, local_vaddr: int,
                   length: int) -> None:
        if self.write_log is not None:
            self.write_log.record(dst_nid, offset,
                                  self.buffer_peek(local_vaddr, length),
                                  self.core.sim.now)

    # -- asynchronous API (Fig. 4) -------------------------------------------

    def wait_for_slot(self, callback: Optional[Callable] = None):
        """Timed coroutine: process CQ events until the WQ has room.

        Returns the number of free slots (>= 1). ``callback(cq_entry)``
        runs for every completion processed while waiting, mirroring
        ``rmc_wait_for_slot(qp, pagerank_async)``.
        """
        while not self.qp.wq.can_post():
            yield from self._poll_cq_once(callback)
        return self.qp.wq.free_slots

    def read_async(self, dst_nid: int, offset: int, local_vaddr: int,
                   length: int, callback: Optional[Callable] = None):
        """Timed coroutine: post a non-blocking remote read.

        Requires a free WQ slot (use :meth:`wait_for_slot`). Returns the
        WQ slot index.
        """
        return (yield from self._post(
            WQEntry(op=Opcode.RREAD, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=length), callback))

    def write_async(self, dst_nid: int, offset: int, local_vaddr: int,
                    length: int, callback: Optional[Callable] = None):
        """Timed coroutine: post a non-blocking remote write."""
        self._log_write(dst_nid, offset, local_vaddr, length)
        return (yield from self._post(
            WQEntry(op=Opcode.RWRITE, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=length), callback))

    def drain_cq(self, callback: Optional[Callable] = None):
        """Timed coroutine: wait until no operations remain outstanding,
        running ``callback`` for each completion (``rmc_drain_cq``)."""
        while self.qp.outstanding() > 0:
            yield from self._poll_cq_once(callback)

    def poll_once(self, callback: Optional[Callable] = None):
        """Timed coroutine: one CQ polling sweep; returns the reaped
        completion (or None). Lets higher-level stall loops (e.g. the
        messaging credit wait) observe error completions — and thereby
        peer failure — while they spin on something else."""
        return (yield from self._poll_cq_once(callback))

    # -- batched fast path (serving tier) --------------------------------------

    def post_batch(self, entries, callback: Optional[Callable] = None):
        """Timed coroutine: post several WQ entries under ONE doorbell.

        The software issue overhead — the dominant per-op cost that caps
        a core at ~10 M ops/s (§7.5) — is charged once for the whole
        batch (prepare + a single doorbell write); each entry still pays
        its coherent WQ slot store. Paired with
        :attr:`~repro.rmc.rmc.RMCConfig.doorbell_batch` on the RMC side,
        this is the serving tier's batching fast path. Requires free WQ
        slots for every entry (callers size batches by
        ``qp.wq.free_slots``). Returns the slot indices in posting
        order.
        """
        if not entries:
            return []
        if self.qp.halted:
            raise RemoteOpFailed(-1, "rmc_halted")
        if len(entries) > self.qp.wq.free_slots:
            raise RuntimeError(
                f"WQ lacks room for a {len(entries)}-entry batch: "
                "reap completions first")
        yield self.core.compute(self.core.config.issue_overhead_ns)
        indices = []
        for entry in entries:
            if entry.op in (Opcode.RWRITE, Opcode.RNOTIFY):
                self._log_write(entry.dst_nid, entry.offset,
                                entry.local_vaddr, entry.length)
            # Each staged WQ slot is still a coherent store the RMC
            # later reads; only the doorbell is shared.
            slot_vaddr = self.qp.wq.slot_vaddr(self.qp.wq.next_free())
            yield from self.core.touch(self.space, slot_vaddr,
                                       is_write=True)
            index = self.qp.wq.place(entry)
            self._callbacks[index] = (callback, None)
            self._posted[index] = entry
            self.ops_issued += 1
            indices.append(index)
        self.qp.wq.ring_doorbell()
        return indices

    def poll_cq_batch(self, max_reap: int,
                      callback: Optional[Callable] = None):
        """Timed coroutine: one polling sweep that reaps up to
        ``max_reap`` ready completions.

        The software poll overhead is charged once per sweep; every
        reaped completion still pays its coherent CQ slot load. Error
        completions are *returned* (and recorded in :attr:`errors`) so
        pipelined callers can observe per-request failures; completions
        belonging to a synchronous waiter are routed to it and not
        returned. Returns a (possibly empty) list of
        :class:`~repro.rmc.queues.CQEntry`.
        """
        if self.qp.halted:
            raise RemoteOpFailed(-1, "rmc_halted")
        yield self.core.compute(self.core.config.poll_overhead_ns)
        reaped: List[CQEntry] = []
        while len(reaped) < max_reap:
            slot_vaddr = self.qp.cq.slot_vaddr(self.qp.cq.read_index)
            yield from self.core.touch(self.space, slot_vaddr)
            cq_entry = self.qp.cq.poll()
            if cq_entry is None:
                break
            self.qp.cq.reap()
            self.qp.wq.release_slot(cq_entry.wq_index)
            self.ops_completed += 1
            posted = self._posted.pop(cq_entry.wq_index, None)
            if cq_entry.error is not None:
                self.errors.append(cq_entry)
                if posted is not None:
                    self.failed_peers.add(posted.dst_nid)
            registered, token = self._callbacks.pop(cq_entry.wq_index,
                                                    (None, None))
            if registered is _SYNC_WAITER:
                # A synchronous operation on this session owns it.
                self._finished[token] = cq_entry
                continue
            chosen = registered if registered is not None else callback
            if chosen is not None and cq_entry.error is None:
                yield self.core.compute(
                    self.core.config.callback_overhead_ns)
                chosen(cq_entry)
            reaped.append(cq_entry)
        return reaped

    # -- synchronous API -------------------------------------------------------

    def read_sync(self, dst_nid: int, offset: int, local_vaddr: int,
                  length: int):
        """Timed coroutine: remote read; returns when data is in the
        local buffer. Raises :class:`RemoteOpError` on error replies."""
        token = yield from self._post_sync(
            WQEntry(op=Opcode.RREAD, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=length))
        yield from self._wait_completion(token)

    def write_sync(self, dst_nid: int, offset: int, local_vaddr: int,
                   length: int):
        """Timed coroutine: remote write; returns when acknowledged."""
        self._log_write(dst_nid, offset, local_vaddr, length)
        token = yield from self._post_sync(
            WQEntry(op=Opcode.RWRITE, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=length))
        yield from self._wait_completion(token)

    def fetch_add_sync(self, dst_nid: int, offset: int, local_vaddr: int,
                       addend: int):
        """Timed coroutine: remote fetch-and-add on a u64; returns the
        value *before* the addition."""
        token = yield from self._post_sync(
            WQEntry(op=Opcode.RFETCH_ADD, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=8, operand=addend))
        yield from self._wait_completion(token)
        return int.from_bytes(self.buffer_peek(local_vaddr, 8), "little")

    def notify_sync(self, dst_nid: int, local_vaddr: int, length: int):
        """Timed coroutine: send a remote notification (§8 extension).

        The payload (up to one line at ``local_vaddr``) is delivered to
        the destination driver's notification queue and raises a modeled
        interrupt there — no polling at the receiver. Raises
        :class:`RemoteOpError` (``notify_rejected``) if the destination
        has no queue registered or it is full.
        """
        token = yield from self._post_sync(
            WQEntry(op=Opcode.RNOTIFY, dst_nid=dst_nid, offset=0,
                    local_vaddr=local_vaddr, length=length))
        yield from self._wait_completion(token)

    def compare_swap_sync(self, dst_nid: int, offset: int, local_vaddr: int,
                          compare: int, swap: int):
        """Timed coroutine: remote compare-and-swap on a u64; returns the
        observed old value (swap succeeded iff it equals ``compare``)."""
        token = yield from self._post_sync(
            WQEntry(op=Opcode.RCOMP_SWAP, dst_nid=dst_nid, offset=offset,
                    local_vaddr=local_vaddr, length=8, operand=swap,
                    compare=compare))
        yield from self._wait_completion(token)
        return int.from_bytes(self.buffer_peek(local_vaddr, 8), "little")

    # -- failure recovery ------------------------------------------------------

    def consume_errors(self) -> List[CQEntry]:
        """Return and clear the accumulated error completions.

        ``failed_peers`` is cleared too: consuming the errors is the
        application declaring it has handled them (e.g. after a link
        was restored and the peer is reachable again).
        """
        errors, self.errors = self.errors, []
        self.failed_peers.clear()
        return errors

    def reset(self) -> List[WQEntry]:
        """Recovery path after a fabric failure: clear the QP rings and
        session bookkeeping; returns the WQ entries that were still
        outstanding so the application can decide what to replay.

        Pair with ``driver.reset_rmc()`` (which aborts the ITT side);
        then :meth:`replay` can re-drive idempotent operations.
        """
        pending = [self._posted[index] for index in sorted(self._posted)]
        self._posted.clear()
        self._callbacks.clear()
        self._finished.clear()
        self.qp.wq.reset()
        self.qp.cq.reset()
        return pending

    def replay(self, entries):
        """Timed coroutine: re-issue ``entries`` (from :meth:`reset`)
        synchronously. Only reads are replayed automatically — they are
        idempotent; writes/atomics may have executed remotely before the
        failure, so re-driving them is an application decision. Returns
        the number of operations replayed."""
        replayed = 0
        for entry in entries:
            if entry.op is not Opcode.RREAD:
                continue
            yield from self.wait_for_slot()
            token = yield from self._post_sync(entry)
            yield from self._wait_completion(token)
            replayed += 1
        return replayed

    # -- internals -------------------------------------------------------------

    def _post(self, entry: WQEntry, callback: Optional[Callable]):
        """Charge the software issue path and place the WQ entry."""
        if self.qp.halted:
            raise RemoteOpFailed(-1, "rmc_halted")
        if not self.qp.wq.can_post():
            raise RuntimeError(
                "WQ full: call wait_for_slot() before posting")
        yield self.core.compute(self.core.config.issue_overhead_ns)
        # The WQ slot write is a coherent store the RMC will later read.
        slot_vaddr = self.qp.wq.slot_vaddr(self.qp.wq.next_free())
        yield from self.core.touch(self.space, slot_vaddr, is_write=True)
        index = self.qp.wq.post(entry)
        if callback is _SYNC_WAITER:
            self._sync_seq += 1
            self._callbacks[index] = (callback, self._sync_seq)
        else:
            self._callbacks[index] = (callback, None)
        self._posted[index] = entry
        self.ops_issued += 1
        return index

    def _post_sync(self, entry: WQEntry):
        """Post with a sync waiter registered; returns the completion
        token to pass to :meth:`_wait_completion`."""
        index = yield from self._post(entry, _SYNC_WAITER)
        return self._callbacks[index][1]

    def _poll_cq_once(self, callback: Optional[Callable] = None):
        """One CQ polling loop iteration (software + coherent load).

        On a halted (crashed) RMC the poll raises ``rmc_halted`` instead
        of spinning: the pipelines will never complete anything again, so
        a waiting coroutine would otherwise burn simulated cycles forever
        and the simulation would never terminate."""
        if self.qp.halted:
            raise RemoteOpFailed(-1, "rmc_halted")
        yield self.core.compute(self.core.config.poll_overhead_ns)
        slot_vaddr = self.qp.cq.slot_vaddr(self.qp.cq.read_index)
        yield from self.core.touch(self.space, slot_vaddr)
        cq_entry = self.qp.cq.poll()
        if cq_entry is None:
            return None
        self.qp.cq.reap()
        self.qp.wq.release_slot(cq_entry.wq_index)
        self.ops_completed += 1
        posted = self._posted.pop(cq_entry.wq_index, None)
        if cq_entry.error is not None:
            self.errors.append(cq_entry)
            if posted is not None:
                self.failed_peers.add(posted.dst_nid)
        registered, token = self._callbacks.pop(cq_entry.wq_index,
                                                (None, None))
        if registered is _SYNC_WAITER:
            # A synchronous operation is (or will be) spinning for this
            # exact completion.
            self._finished[token] = cq_entry
            return cq_entry
        chosen = registered if registered is not None else callback
        if chosen is not None and cq_entry.error is None:
            yield self.core.compute(self.core.config.callback_overhead_ns)
            chosen(cq_entry)
        return cq_entry

    def _wait_completion(self, token: int):
        """Spin on the CQ until the sync op holding ``token`` completes."""
        while token not in self._finished:
            yield from self._poll_cq_once()
        cq_entry = self._finished.pop(token)
        if cq_entry.error is not None:
            raise RemoteOpError(cq_entry.wq_index, cq_entry.error)
