"""Unsolicited communication (send/receive) in software (§5.3).

"To communicate using send and receive operations, two application
instances must first each allocate a bounded buffer from their own
portion of the global virtual address space. The sender always writes to
the peer's buffer using rmc_write operations, and the content is read
locally from cached memory by the receiver. ... Flow-control is
implemented via a credit scheme".

Two mechanisms, chosen per message by a compile-time threshold (§5.3):

* **push** — the sender packetizes the message into cache-line slots
  (16-byte header + 48-byte payload) and remote-writes each slot into
  the peer's bounded buffer. Lowest latency for small messages; per-
  chunk packetization cost for large ones.
* **pull** — the sender stages the payload in its own segment and pushes
  a one-slot descriptor; the receiver issues a single ``rmc_read`` for
  the whole payload and acknowledges via a counter line, letting the
  sender reuse the staging slot. Highest bandwidth for large messages;
  extra control round-trip at the start of each transfer.

Credits: the receiver maintains a cumulative consumed-slot counter and
remote-writes it into the sender's credit line every ``slots/2``
consumptions (batched, piggyback-style); the sender stalls when its
in-flight window reaches the last-acknowledged count plus the buffer
size.

Slot wire format (one 64-byte line, written atomically)::

    byte  0      type: 0 empty, 1 push chunk, 2 pull descriptor
    byte  1      flags: bit0 = last chunk of message
    bytes 2-3    chunk payload length (u16 LE)
    bytes 4-7    message sequence number (u32 LE)
    bytes 8-11   pull: payload offset in sender's segment (u32 LE)
    bytes 12-15  pull: payload size (u32 LE)
    bytes 16-63  push payload (up to 48 bytes)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..vm.address import CACHE_LINE_SIZE
from .layout import CommLayout, MessagingConfig
from .qp_api import RMCSession

__all__ = ["Messenger", "MessagingConfig", "MessagingTimeout", "PeerFailure"]


class PeerFailure(RuntimeError):
    """The transport reported error completions toward this peer (link
    or node failure): the messaging operation cannot make progress."""

    def __init__(self, peer: int, where: str):
        super().__init__(f"peer {peer} unreachable during {where}")
        self.peer = peer


class MessagingTimeout(RuntimeError):
    """recv() hit its deadline with no (complete) message from the peer."""

    def __init__(self, peer: int, timeout_ns: float):
        super().__init__(
            f"no message from peer {peer} within {timeout_ns:g} ns")
        self.peer = peer
        self.timeout_ns = timeout_ns

_TYPE_EMPTY = 0
_TYPE_PUSH = 1
_TYPE_PULL = 2
_FLAG_LAST = 1


def _discard_completion(_cq_entry):
    """No-op completion callback: pushed-slot writes are fire-and-forget
    (delivery is what the receiver's polling observes)."""


def _pack_slot(slot_type: int, flags: int, length: int, seq: int,
               pull_offset: int = 0, pull_size: int = 0,
               payload: bytes = b"") -> bytes:
    if len(payload) > MessagingConfig.PAYLOAD_PER_SLOT:
        raise ValueError("payload exceeds slot capacity")
    header = bytes([slot_type, flags]) \
        + length.to_bytes(2, "little") \
        + (seq & 0xFFFFFFFF).to_bytes(4, "little") \
        + pull_offset.to_bytes(4, "little") \
        + pull_size.to_bytes(4, "little")
    body = header + payload
    return body + bytes(CACHE_LINE_SIZE - len(body))


def _unpack_slot(line: bytes):
    slot_type = line[0]
    flags = line[1]
    length = int.from_bytes(line[2:4], "little")
    seq = int.from_bytes(line[4:8], "little")
    pull_offset = int.from_bytes(line[8:12], "little")
    pull_size = int.from_bytes(line[12:16], "little")
    payload = line[16:16 + length] if slot_type == _TYPE_PUSH else b""
    return slot_type, flags, length, seq, pull_offset, pull_size, payload


class _PeerState:
    """Per-peer send/receive bookkeeping."""

    def __init__(self):
        # send side (me -> peer)
        self.sent_slots = 0          # cumulative slots pushed to the peer
        self.send_seq = 0            # message sequence counter
        #: Per-peer staging ring for outgoing slot lines. It must be
        #: per-peer: the RGP reads an async write's payload at emission
        #: time, so a line staged for one peer cannot be reused for
        #: another peer while that write is still in flight.
        self.push_ring = 0
        self.staged_transfers = 0    # cumulative pull transfers staged
        # receive side (peer -> me)
        self.next_slot = 0           # next inbound slot index to poll
        self.consumed_slots = 0      # cumulative inbound slots consumed
        self.credits_reported = 0    # last consumed count reported to peer
        self.acked_transfers = 0     # cumulative pull transfers acked


class Messenger:
    """Send/receive endpoint for one node within a global context."""

    def __init__(self, session: RMCSession, node_id: int, num_nodes: int,
                 config: Optional[MessagingConfig] = None):
        self.session = session
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config or MessagingConfig()
        self.layout = CommLayout(session.ctx.segment.size, num_nodes,
                                 self.config)
        self._peers: Dict[int, _PeerState] = {}
        # Scratch line for receive-side credit/ack writes (synchronous,
        # so no in-flight reuse hazard). Outgoing push slots stage in a
        # per-peer ring (see _PeerState.push_ring).
        self._scratch = session.alloc_buffer(4 * CACHE_LINE_SIZE)
        self._pull_bounce = 0
        self._pull_bounce_size = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0

    def _peer(self, peer: int) -> _PeerState:
        if peer == self.node_id:
            raise ValueError("cannot message self")
        if peer not in self._peers:
            state = _PeerState()
            state.push_ring = self.session.alloc_buffer(
                self.config.slots * CACHE_LINE_SIZE)
            self._peers[peer] = state
        return self._peers[peer]

    # -- local segment helpers ------------------------------------------------

    def _seg_vaddr(self, offset: int) -> int:
        return self.session.ctx.segment.vaddr_of(offset)

    def _read_local(self, offset: int, length: int):
        return self.session.core.mem_read(
            self.session.space, self._seg_vaddr(offset), length)

    def _write_local(self, offset: int, data: bytes):
        return self.session.core.mem_write(
            self.session.space, self._seg_vaddr(offset), data)

    # -- send ------------------------------------------------------------------

    def send(self, peer: int, data: bytes,
             timeout_ns: Optional[float] = None):
        """Timed coroutine: deliver ``data`` to ``peer`` (push or pull).

        With ``timeout_ns`` set, raises :class:`MessagingTimeout` if the
        peer's bounded buffer window stays exhausted for that long — the
        escape hatch for send/send head-to-head patterns that would
        otherwise deadlock on credits (the bounded-buffer analogue of an
        MPI "unsafe" program)."""
        if not data:
            raise ValueError("cannot send an empty message")
        state = self._peer(peer)
        seq = state.send_seq
        state.send_seq += 1
        deadline_ns = None
        if timeout_ns is not None:
            deadline_ns = self.session.core.sim.now + timeout_ns
        if len(data) <= self.config.threshold:
            yield from self._send_push(peer, state, seq, data,
                                       deadline_ns, timeout_ns)
        else:
            yield from self._send_pull(peer, state, seq, data,
                                       deadline_ns, timeout_ns)
        self.messages_sent += 1
        self.bytes_sent += len(data)

    def _send_push(self, peer: int, state: _PeerState, seq: int,
                   data: bytes, deadline_ns: Optional[float] = None,
                   timeout_ns: Optional[float] = None):
        """Packetize into slots; one remote write per slot."""
        cfg = self.config
        chunk = cfg.PAYLOAD_PER_SLOT
        chunks = [data[i:i + chunk] for i in range(0, len(data), chunk)]
        for index, piece in enumerate(chunks):
            yield from self._wait_for_credit(peer, state, deadline_ns,
                                             timeout_ns)
            flags = _FLAG_LAST if index == len(chunks) - 1 else 0
            line = _pack_slot(_TYPE_PUSH, flags, len(piece), seq,
                              payload=piece)
            yield from self._push_slot(peer, state, line)

    def _send_pull(self, peer: int, state: _PeerState, seq: int,
                   data: bytes, deadline_ns: Optional[float] = None,
                   timeout_ns: Optional[float] = None):
        """Stage payload locally; push a descriptor; bounded in-flight."""
        cfg = self.config
        if len(data) > self.layout.staging_chunk_bytes:
            raise ValueError(
                f"message of {len(data)}B exceeds pull staging chunk of "
                f"{self.layout.staging_chunk_bytes}B")
        # Bound in-flight transfers to the staging window via peer acks.
        while state.staged_transfers - self._read_ack(peer) \
                >= cfg.pull_window:
            self._check_peer(peer, "pull-ack wait")
            if deadline_ns is not None \
                    and self.session.core.sim.now >= deadline_ns:
                raise MessagingTimeout(peer, timeout_ns)
            yield from self.session.poll_once()
            yield from self.session.core.touch(
                self.session.space, self._seg_vaddr(self.layout.ack_offset(peer)))
        chunk_offset = self.layout.staging_chunk(peer,
                                                 state.staged_transfers)
        state.staged_transfers += 1
        yield from self._write_local(chunk_offset, data)
        yield from self._wait_for_credit(peer, state, deadline_ns,
                                         timeout_ns)
        line = _pack_slot(_TYPE_PULL, _FLAG_LAST, 0, seq,
                          pull_offset=chunk_offset, pull_size=len(data))
        yield from self._push_slot(peer, state, line)

    def _push_slot(self, peer: int, state: _PeerState, line: bytes):
        """Stage one slot locally and remote-write it into the peer.

        Writes are posted asynchronously so a multi-chunk push message
        streams its slots back to back (one per issue interval) instead
        of paying a full write round trip per chunk — the behaviour the
        paper's push mechanism is designed for.
        """
        cfg = self.config
        yield self.session.core.compute(cfg.software_chunk_ns)
        dst_slot = state.sent_slots % cfg.slots
        stage_vaddr = state.push_ring + dst_slot * CACHE_LINE_SIZE
        yield from self.session.buffer_write(stage_vaddr, line)
        # The destination offset is within the peer's region *for me*.
        peer_layout = self.layout  # identical parameters on every node
        dst_offset = peer_layout.messaging_base \
            + self.node_id * cfg.region_bytes + dst_slot * CACHE_LINE_SIZE
        state.sent_slots += 1
        yield from self.session.wait_for_slot(_discard_completion)
        yield from self.session.write_async(peer, dst_offset, stage_vaddr,
                                            CACHE_LINE_SIZE,
                                            callback=_discard_completion)

    def _wait_for_credit(self, peer: int, state: _PeerState,
                         deadline_ns: Optional[float] = None,
                         timeout_ns: Optional[float] = None):
        """Stall while the peer's bounded buffer window is exhausted.

        Raises :class:`PeerFailure` instead of spinning forever when the
        transport reports error completions toward the peer (the credit
        write that would free the window is never coming)."""
        while state.sent_slots - self._read_credit(peer) \
                >= self.config.slots:
            self._check_peer(peer, "credit wait")
            if deadline_ns is not None \
                    and self.session.core.sim.now >= deadline_ns:
                raise MessagingTimeout(peer, timeout_ns)
            # Reap completions while stalled: an error completion toward
            # the peer is the only way this wait can ever learn that the
            # credit write is never coming.
            yield from self.session.poll_once()
            yield from self.session.core.touch(
                self.session.space,
                self._seg_vaddr(self.layout.credit_offset(peer)))

    def _check_peer(self, peer: int, where: str) -> None:
        if peer in self.session.failed_peers:
            raise PeerFailure(peer, where)

    def _read_credit(self, peer: int) -> int:
        """Functional read of the credit counter the peer writes to us."""
        raw = self.session.buffer_peek(
            self._seg_vaddr(self.layout.credit_offset(peer)), 8)
        return int.from_bytes(raw, "little")

    def _read_ack(self, peer: int) -> int:
        raw = self.session.buffer_peek(
            self._seg_vaddr(self.layout.ack_offset(peer)), 8)
        return int.from_bytes(raw, "little")

    # -- receive -----------------------------------------------------------------

    def recv(self, peer: int, timeout_ns: Optional[float] = None):
        """Timed coroutine: block until one full message from ``peer``
        arrives; returns its bytes.

        With ``timeout_ns`` set, raises :class:`MessagingTimeout` if no
        complete message arrived within that window — the escape hatch
        for receivers whose peer may have died mid-message."""
        state = self._peer(peer)
        deadline_ns = None
        if timeout_ns is not None:
            deadline_ns = self.session.core.sim.now + timeout_ns
        parts = []
        while True:
            line = yield from self._poll_slot(peer, state, deadline_ns,
                                              timeout_ns)
            slot_type, flags, _length, _seq, pull_offset, pull_size, \
                payload = _unpack_slot(line)
            yield self.session.core.compute(self.config.software_chunk_ns)
            if slot_type == _TYPE_PUSH:
                parts.append(payload)
                yield from self._consume_slot(peer, state)
                if flags & _FLAG_LAST:
                    break
            elif slot_type == _TYPE_PULL:
                data = yield from self._pull_payload(peer, pull_offset,
                                                     pull_size)
                parts.append(data)
                yield from self._consume_slot(peer, state)
                yield from self._send_ack(peer, state)
                break
            else:  # pragma: no cover - corrupted slot
                raise RuntimeError(f"bad slot type {slot_type} from {peer}")
        self.messages_received += 1
        return b"".join(parts)

    def _poll_slot(self, peer: int, state: _PeerState,
                   deadline_ns: Optional[float] = None,
                   timeout_ns: Optional[float] = None):
        """Spin on the next inbound slot until it becomes non-empty."""
        offset = self.layout.slot_offset(peer, state.next_slot)
        vaddr = self._seg_vaddr(offset)
        sim = self.session.core.sim
        while True:
            if deadline_ns is not None and sim.now >= deadline_ns:
                raise MessagingTimeout(peer, timeout_ns)
            yield self.session.core.compute(
                self.session.core.config.poll_overhead_ns)
            yield from self.session.core.touch(self.session.space, vaddr)
            line = self.session.buffer_peek(vaddr, CACHE_LINE_SIZE)
            if line[0] != _TYPE_EMPTY:
                return line

    def _consume_slot(self, peer: int, state: _PeerState):
        """Clear the slot and batch-report credits back to the sender."""
        offset = self.layout.slot_offset(peer, state.next_slot)
        yield from self._write_local(offset, bytes([_TYPE_EMPTY]))
        state.next_slot = (state.next_slot + 1) % self.config.slots
        state.consumed_slots += 1
        if state.consumed_slots - state.credits_reported \
                >= max(1, self.config.slots // 2):
            yield from self._report_credits(peer, state)

    def _report_credits(self, peer: int, state: _PeerState):
        """Remote-write the cumulative consumed count into the sender."""
        state.credits_reported = state.consumed_slots
        counter = state.consumed_slots.to_bytes(8, "little")
        yield from self.session.buffer_write(self._scratch, counter)
        dst_offset = self.layout.messaging_base \
            + self.node_id * self.config.region_bytes \
            + self.config.slots * CACHE_LINE_SIZE
        yield from self.session.write_sync(peer, dst_offset, self._scratch, 8)

    def _send_ack(self, peer: int, state: _PeerState):
        """Ack a completed pull so the sender can reuse its staging:
        'acknowledges the completion by writing a zero-length message
        into the sender's bounded buffer' (§5.3)."""
        state.acked_transfers += 1
        counter = state.acked_transfers.to_bytes(8, "little")
        yield from self.session.buffer_write(self._scratch, counter)
        dst_offset = self.layout.messaging_base \
            + self.node_id * self.config.region_bytes \
            + (self.config.slots + 1) * CACHE_LINE_SIZE
        yield from self.session.write_sync(peer, dst_offset, self._scratch, 8)

    def _pull_payload(self, peer: int, pull_offset: int, pull_size: int):
        """One big remote read of a staged payload (the pull mechanism)."""
        if self._pull_bounce_size < pull_size:
            self._pull_bounce = self.session.alloc_buffer(pull_size)
            self._pull_bounce_size = pull_size
        bounce = self._pull_bounce
        yield from self.session.read_sync(peer, pull_offset, bounce,
                                          pull_size)
        # Copy out of the bounce buffer into application data (timed).
        data = yield from self.session.buffer_read(bounce, pull_size)
        return data
