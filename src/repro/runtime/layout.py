"""Deterministic layout of communication state inside context segments.

The messaging and barrier libraries (§5.3) are pure software over the
three one-sided primitives; peers must therefore *agree by convention*
on where, inside each node's context segment, the bounded buffers,
credit/ack counters, pull staging areas, and barrier arrival lines live.
:class:`CommLayout` computes those offsets identically on every node
from shared parameters, the same way the paper's library would agree on
"an agreed upon offset on each of its peers".

Segment layout (offsets grow downward from the segment end)::

    [0 ............................. app_bytes)   application data
    [app_bytes ......................... ) per-peer messaging regions
    [barrier_base .................. segment_size) barrier arrival lines

Each per-peer region (the region node *i* dedicates to peer *j*)::

    [slots x 64B]   inbound data slots   (written remotely by j)
    [64B]           credit line          (written remotely by j)
    [64B]           ack line             (written remotely by j)
    [staging bytes] outbound pull staging (read remotely by j)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vm.address import CACHE_LINE_SIZE

__all__ = ["MessagingConfig", "CommLayout"]


@dataclass(frozen=True)
class MessagingConfig:
    """Parameters of the software messaging protocol (§5.3)."""

    #: Data slots per direction (bounded buffer depth).
    slots: int = 16
    #: Push/pull boundary in bytes: messages up to the threshold are
    #: pushed (packetized remote writes); larger ones are pulled by the
    #: receiver with a single remote read. The paper finds 256 B optimal
    #: on simulated hardware and 1 KB on the development platform (§7.3).
    threshold: int = 256
    #: Pull staging bytes per peer (bounds the largest pullable message).
    staging_bytes: int = 64 * 1024
    #: Concurrent pull transfers in flight per direction.
    pull_window: int = 4
    #: Software cost charged per slot composed/parsed (packetization).
    software_chunk_ns: float = 25.0

    #: Payload bytes carried per push slot (64B line minus header).
    PAYLOAD_PER_SLOT = 48

    def __post_init__(self):
        if self.slots < 2:
            raise ValueError("need at least 2 message slots")
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.staging_bytes < CACHE_LINE_SIZE:
            raise ValueError("staging must hold at least one line")
        if self.staging_bytes % CACHE_LINE_SIZE != 0:
            raise ValueError("staging size must be line-aligned")
        if self.pull_window < 1:
            raise ValueError("pull window must be >= 1")

    @property
    def region_bytes(self) -> int:
        """Size of one per-peer region."""
        return (self.slots + 2) * CACHE_LINE_SIZE + self.staging_bytes


class CommLayout:
    """Offset calculator shared by all nodes of a context."""

    def __init__(self, segment_size: int, num_nodes: int,
                 config: MessagingConfig = MessagingConfig()):
        self.segment_size = segment_size
        self.num_nodes = num_nodes
        self.config = config
        self.barrier_bytes = num_nodes * CACHE_LINE_SIZE
        # Slot and barrier lines MUST be cache-line-aligned: a 64-byte
        # remote write is atomic only when it maps to a single line at
        # the destination (an unaligned slot would be delivered as two
        # independent line writes and the receiver could observe a torn
        # message). Align the whole communication area down.
        self.barrier_base = (segment_size - self.barrier_bytes) \
            & ~(CACHE_LINE_SIZE - 1)
        self.messaging_bytes = num_nodes * config.region_bytes
        self.messaging_base = self.barrier_base - self.messaging_bytes
        if self.messaging_base < 0:
            raise ValueError(
                f"segment of {segment_size}B too small for communication "
                f"state of {self.messaging_bytes + self.barrier_bytes}B")
        assert self.messaging_base % CACHE_LINE_SIZE == 0

    @property
    def app_bytes(self) -> int:
        """Bytes at the bottom of the segment free for application data."""
        return self.messaging_base

    # -- per-peer region offsets (within MY segment) -------------------------

    def region_base(self, peer: int) -> int:
        """Base offset of the region dedicated to ``peer``."""
        self._check_peer(peer)
        return self.messaging_base + peer * self.config.region_bytes

    def slot_offset(self, peer: int, slot: int) -> int:
        """Inbound data slot ``slot`` of the region dedicated to ``peer``."""
        if not 0 <= slot < self.config.slots:
            raise IndexError(f"slot {slot} out of range")
        return self.region_base(peer) + slot * CACHE_LINE_SIZE

    def credit_offset(self, peer: int) -> int:
        """Line where ``peer`` reports consumption of *my* pushed slots."""
        return self.region_base(peer) + self.config.slots * CACHE_LINE_SIZE

    def ack_offset(self, peer: int) -> int:
        """Line where ``peer`` acks pull transfers staged for it."""
        return self.credit_offset(peer) + CACHE_LINE_SIZE

    def staging_offset(self, peer: int) -> int:
        """My outbound pull staging area read remotely by ``peer``."""
        return self.ack_offset(peer) + CACHE_LINE_SIZE

    def staging_chunk(self, peer: int, index: int) -> int:
        """One of ``pull_window`` rotating staging chunks."""
        chunk_bytes = self.staging_chunk_bytes
        return self.staging_offset(peer) + (index % self.config.pull_window) \
            * chunk_bytes

    @property
    def staging_chunk_bytes(self) -> int:
        return self.config.staging_bytes // self.config.pull_window

    # -- barrier ------------------------------------------------------------

    def barrier_offset(self, peer: int) -> int:
        """Line where ``peer`` posts its barrier arrival generation."""
        self._check_peer(peer)
        return self.barrier_base + peer * CACHE_LINE_SIZE

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.num_nodes:
            raise IndexError(f"peer {peer} out of range 0..{self.num_nodes - 1}")
