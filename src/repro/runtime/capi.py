"""Paper-parity access-library functions (the §5.2 C API names).

The paper's Fig. 4 is written against a C/C++ inline-function API:
``rmc_wait_for_slot``, ``rmc_read_async``, ``rmc_drain_cq``, plus the
synchronous variants. This module exposes those exact names as thin,
documented wrappers over :class:`~repro.runtime.qp_api.RMCSession`, so
code can be transliterated from the paper line by line::

    slot = yield from rmc_wait_for_slot(qp, pagerank_async)
    yield from rmc_read_async(qp, slot, edges[e].nid, edges[e].offset,
                              lbuf_slot_vaddr, VERTEX_BYTES)
    ...
    yield from rmc_drain_cq(qp, pagerank_async)

Here ``qp`` is the session (which binds the queue pair to a core and a
context — what the C API keeps in thread-local state). The ``slot``
argument mirrors the paper's signature: Fig. 4 schedules each request
into the slot returned by ``rmc_wait_for_slot``; the session performs
exactly that placement internally, and these wrappers assert agreement
so a transliterated caller cannot desynchronize.
"""

from __future__ import annotations

from typing import Callable, Optional

from .qp_api import RMCSession

__all__ = [
    "rmc_wait_for_slot",
    "rmc_read_async",
    "rmc_write_async",
    "rmc_read_sync",
    "rmc_write_sync",
    "rmc_drain_cq",
    "rmc_fetch_and_add",
    "rmc_compare_and_swap",
]


def rmc_wait_for_slot(qp: RMCSession, callback: Optional[Callable] = None):
    """Process CQ events until the WQ has a free slot; returns the slot
    index the next request will occupy (paper: "returns the freed slot
    where the next entry will be scheduled")."""
    yield from qp.wait_for_slot(callback)
    return qp.qp.wq.next_free()


def rmc_read_async(qp: RMCSession, slot: int, nid: int, offset: int,
                   local_buffer: int, length: int,
                   callback: Optional[Callable] = None):
    """Non-blocking remote read into ``local_buffer`` (Split-C ``get``).

    ``slot`` must be the value returned by :func:`rmc_wait_for_slot`
    (asserted, mirroring the C API's scheduling contract).
    """
    expected = qp.qp.wq.next_free()
    if slot != expected:
        raise ValueError(
            f"slot {slot} stale: the next request will use slot "
            f"{expected} (call rmc_wait_for_slot first)")
    return (yield from qp.read_async(nid, offset, local_buffer, length,
                                     callback=callback))


def rmc_write_async(qp: RMCSession, slot: int, nid: int, offset: int,
                    local_buffer: int, length: int,
                    callback: Optional[Callable] = None):
    """Non-blocking remote write from ``local_buffer``."""
    expected = qp.qp.wq.next_free()
    if slot != expected:
        raise ValueError(
            f"slot {slot} stale: the next request will use slot "
            f"{expected} (call rmc_wait_for_slot first)")
    return (yield from qp.write_async(nid, offset, local_buffer, length,
                                      callback=callback))


def rmc_read_sync(qp: RMCSession, nid: int, offset: int,
                  local_buffer: int, length: int):
    """Blocking remote read (spins on the CQ until completion)."""
    yield from qp.read_sync(nid, offset, local_buffer, length)


def rmc_write_sync(qp: RMCSession, nid: int, offset: int,
                   local_buffer: int, length: int):
    """Blocking remote write."""
    yield from qp.write_sync(nid, offset, local_buffer, length)


def rmc_drain_cq(qp: RMCSession, callback: Optional[Callable] = None):
    """Wait until all outstanding operations have completed, invoking
    ``callback`` for each (paper: "waits until all outstanding remote
    operations have completed while performing the remaining
    callbacks")."""
    yield from qp.drain_cq(callback)


def rmc_fetch_and_add(qp: RMCSession, nid: int, offset: int,
                      local_buffer: int, addend: int):
    """Remote fetch-and-add; returns the pre-add value (§5.2 atomics)."""
    return (yield from qp.fetch_add_sync(nid, offset, local_buffer,
                                         addend))


def rmc_compare_and_swap(qp: RMCSession, nid: int, offset: int,
                         local_buffer: int, compare: int, swap: int):
    """Remote compare-and-swap; returns the observed old value."""
    return (yield from qp.compare_swap_sync(nid, offset, local_buffer,
                                            compare, swap))
