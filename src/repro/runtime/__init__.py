"""Software support: access library, messaging, synchronization (§5)."""

from .barrier import Barrier, NodeEvicted, RankFailed
from .capi import (
    rmc_compare_and_swap,
    rmc_drain_cq,
    rmc_fetch_and_add,
    rmc_read_async,
    rmc_read_sync,
    rmc_wait_for_slot,
    rmc_write_async,
    rmc_write_sync,
)
from .layout import CommLayout, MessagingConfig
from .messaging import Messenger, MessagingTimeout, PeerFailure
from .qp_api import RemoteOpError, RemoteOpFailed, RMCSession

__all__ = [
    "Barrier",
    "CommLayout",
    "Messenger",
    "MessagingConfig",
    "MessagingTimeout",
    "NodeEvicted",
    "PeerFailure",
    "RankFailed",
    "RemoteOpError",
    "RemoteOpFailed",
    "RMCSession",
    "rmc_compare_and_swap",
    "rmc_drain_cq",
    "rmc_fetch_and_add",
    "rmc_read_async",
    "rmc_read_sync",
    "rmc_wait_for_slot",
    "rmc_write_async",
    "rmc_write_sync",
]
