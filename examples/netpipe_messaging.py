#!/usr/bin/env python
"""Messaging over one-sided operations: the push/pull tradeoff (§5.3).

soNUMA has no hardware send/receive — unsolicited communication is
built in software from remote writes (push) and remote reads (pull),
switched by a message-size threshold. This example runs a netpipe-style
ping-pong and a streaming transfer at several thresholds, showing the
crossover the paper tunes to 256 B on simulated hardware, and finishes
with a 4-node barrier.

Run:  python examples/netpipe_messaging.py
"""

from repro import (
    Barrier,
    Cluster,
    ClusterConfig,
    Messenger,
    MessagingConfig,
    RMCSession,
)
from repro.workloads import (
    PULL_ONLY,
    PUSH_ONLY,
    send_recv_bandwidth,
    send_recv_latency,
)

CTX_ID = 1


def latency_and_bandwidth():
    sizes = (32, 256, 2048)
    print("half-duplex latency (us) by push/pull policy:")
    print(f"{'size (B)':>9} {'push-only':>10} {'pull-only':>10} "
          f"{'thr=256B':>10}")
    curves = {}
    for threshold in (PUSH_ONLY, PULL_ONLY, 256):
        curves[threshold] = send_recv_latency(sizes=sizes,
                                              threshold=threshold,
                                              rounds=5)
    for i, size in enumerate(sizes):
        print(f"{size:>9} {curves[PUSH_ONLY][i].latency_us:>10.3f} "
              f"{curves[PULL_ONLY][i].latency_us:>10.3f} "
              f"{curves[256][i].latency_us:>10.3f}")

    print("\nstreaming bandwidth (Gbps), threshold=256B:")
    for row in send_recv_bandwidth(sizes=(1024, 4096, 8192),
                                   threshold=256, messages=20, warmup=5):
        print(f"{row.size:>9} {row.gbps:>10.2f}")


def barrier_demo():
    num_nodes = 4
    cluster = Cluster(config=ClusterConfig(num_nodes=num_nodes))
    ctx = cluster.create_global_context(CTX_ID, 2 << 20)
    sessions = {n: RMCSession(cluster.nodes[n].core, ctx.qp(n),
                              ctx.entry(n)) for n in range(num_nodes)}
    barriers = {n: Barrier(sessions[n], n, list(range(num_nodes)))
                for n in range(num_nodes)}
    arrival, departure = {}, {}

    def worker(sim, node_id):
        # Nodes arrive staggered by 2 us each; nobody leaves early.
        yield sim.timeout(node_id * 2000)
        arrival[node_id] = sim.now
        yield from barriers[node_id].wait()
        departure[node_id] = sim.now

    for n in range(num_nodes):
        cluster.sim.process(worker(cluster.sim, n))
    cluster.run()

    print("\nbarrier over one-sided writes (4 nodes, staggered arrivals):")
    for n in range(num_nodes):
        print(f"  node {n}: arrived {arrival[n] / 1000:>6.1f} us, "
              f"released {departure[n] / 1000:>6.1f} us")
    spread = (max(departure.values()) - min(departure.values())) / 1000
    print(f"  release spread: {spread:.2f} us after the last arrival")


def main():
    latency_and_bandwidth()
    barrier_demo()


if __name__ == "__main__":
    main()
