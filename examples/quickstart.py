#!/usr/bin/env python
"""Quickstart: a guided tour of the soNUMA programming model.

Builds a 4-node rack (Table 1 parameters), opens a global context, and
walks through the API surface of paper §5.2:

1. a synchronous remote read (with the measured latency),
2. a synchronous remote write, read back remotely to verify,
3. remote atomics: fetch-and-add and compare-and-swap,
4. pipelined asynchronous reads hiding latency Fig. 4-style,
5. the error path: an out-of-segment access reported via the CQ.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, RemoteOpError, RMCSession

CTX_ID = 1
SEGMENT_SIZE = 1 << 20  # 1 MB globally-visible segment per node


def main():
    cluster = Cluster(config=ClusterConfig(num_nodes=4))
    ctx = cluster.create_global_context(CTX_ID, SEGMENT_SIZE)

    # Seed node 2's segment with data for our reads.
    cluster.poke_segment(2, CTX_ID, 0, b"greetings from node 2's memory!")
    cluster.poke_segment(2, CTX_ID, 4096, (1000).to_bytes(8, "little"))

    node0 = cluster.nodes[0]
    session = RMCSession(node0.core, ctx.qp(0), ctx.entry(0))
    lbuf = session.alloc_buffer(64 * 1024)

    def app(sim):
        # --- 1. synchronous remote read -------------------------------
        start = sim.now
        yield from session.read_sync(dst_nid=2, offset=0,
                                     local_vaddr=lbuf, length=64)
        print(f"[1] remote read of 64B took {sim.now - start:.0f} ns")
        print(f"    payload: {session.buffer_peek(lbuf, 31)!r}")

        # --- 2. remote write, verified by reading back ----------------
        message = b"node 0 was here"
        session.buffer_poke(lbuf, message)
        yield from session.write_sync(2, 512, lbuf, len(message))
        yield from session.read_sync(2, 512, lbuf + 4096, 64)
        echoed = session.buffer_peek(lbuf + 4096, len(message))
        print(f"[2] write+readback round-trip ok: {echoed!r}")
        assert echoed == message

        # --- 3. remote atomics -----------------------------------------
        old = yield from session.fetch_add_sync(2, 4096, lbuf, 42)
        print(f"[3] fetch-and-add: old value {old}, now {old + 42}")
        observed = yield from session.compare_swap_sync(
            2, 4096, lbuf, compare=old + 42, swap=7)
        print(f"    compare-and-swap observed {observed} -> stored 7")

        # --- 4. pipelined asynchronous reads ---------------------------
        n = 32
        start = sim.now
        for i in range(n):
            yield from session.wait_for_slot()
            yield from session.read_async(2, i * 64, lbuf + i * 64, 64)
        yield from session.drain_cq()
        per_op = (sim.now - start) / n
        print(f"[4] {n} pipelined async reads: {per_op:.0f} ns/op "
              f"({1e3 / per_op:.1f} M ops/s)")

        # --- 5. the error path ------------------------------------------
        try:
            yield from session.read_sync(2, SEGMENT_SIZE + 64, lbuf, 64)
        except RemoteOpError as exc:
            print(f"[5] out-of-segment read rejected: {exc}")

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    print(f"\nsimulated time elapsed: {cluster.sim.now / 1000:.1f} us")


if __name__ == "__main__":
    main()
