#!/usr/bin/env python
"""Rack-scale topology study: crossbar vs 2-D/3-D torus fabrics.

The paper's simulated fabric is a full crossbar with a flat 50 ns delay;
§6 and §8 argue that real rack-scale systems would use low-dimensional
k-ary n-cubes ("a 44U rack of Viridis chassis can thus provide over
1000 nodes within a two-meter diameter"). This example builds a 16-node
crossbar, a 4x4 torus, and a 27-node 3-D torus, measures remote read
latency by hop distance, and prints the cluster telemetry report.

Run:  python examples/rack_topology.py
"""

from repro import Cluster, ClusterConfig, RMCSession
from repro import telemetry
from repro.fabric import FabricConfig, torus2d, torus3d
from repro.sim import LatencyStat

CTX_ID = 1
SEGMENT = 1 << 20

#: Per-hop fabric parameters: a short PCB trace between neighbors plus
#: an Alpha-21364-class 11 ns router, instead of the flat 50 ns.
PER_HOP = FabricConfig(link_latency_ns=15.0, router_delay_ns=11.0)


def measure_read(cluster, gctx, src, dst, reads=5):
    session = RMCSession(cluster.nodes[src].core, gctx.qp(src),
                         gctx.entry(src))
    lbuf = session.alloc_buffer(4096)
    stats = LatencyStat()

    def app(sim):
        for i in range(reads + 2):
            start = sim.now
            yield from session.read_sync(dst, (i % 8) * 64, lbuf, 64)
            if i >= 2:
                stats.record(sim.now - start)

    cluster.sim.process(app(cluster.sim))
    cluster.run()
    return stats.mean


def crossbar_study():
    cluster = Cluster(config=ClusterConfig(num_nodes=16))
    gctx = cluster.create_global_context(CTX_ID, SEGMENT)
    latency = measure_read(cluster, gctx, 0, 15)
    print(f"crossbar-16: any pair is 1 hop -> {latency:.0f} ns")
    return cluster


def torus2d_study():
    topo = torus2d(4, 4)
    cluster = Cluster(config=ClusterConfig(num_nodes=16, topology=topo,
                                           fabric=PER_HOP))
    gctx = cluster.create_global_context(CTX_ID, SEGMENT)
    print("4x4 torus (15 ns links, 11 ns routers):")
    for dst in (1, 5, 10):
        hops = topo.hops(0, dst)
        latency = measure_read(cluster, gctx, 0, dst)
        print(f"  node 0 -> {dst:2d} ({hops} hops): {latency:.0f} ns")
    return cluster


def torus3d_study():
    topo = torus3d(3, 3, 3)
    cluster = Cluster(config=ClusterConfig(num_nodes=27, topology=topo,
                                           fabric=PER_HOP))
    gctx = cluster.create_global_context(CTX_ID, SEGMENT)
    print("3x3x3 torus (27 nodes, diameter "
          f"{topo.diameter()}):")
    for dst in (1, 13, 26):
        hops = topo.hops(0, dst)
        latency = measure_read(cluster, gctx, 0, dst)
        print(f"  node 0 -> {dst:2d} ({hops} hops): {latency:.0f} ns")
    return cluster


def main():
    crossbar_study()
    print()
    torus2d_study()
    print()
    cluster = torus3d_study()
    print("\n--- telemetry (3-D torus run) ---")
    snap = telemetry.snapshot(cluster)
    # Print only the two interesting endpoints to keep the output short.
    report = telemetry.format_report(snap)
    show = False
    for line in report.splitlines():
        if line.startswith("cluster") or line.startswith("fabric"):
            print(line)
        elif line.startswith("node "):
            show = line.startswith(("node 0:", "node 26:"))
            if show:
                print(line)
        elif show:
            print(line)
    print("(even the farthest 3-hop neighbor stays well under 1 us — "
          "the rack-scale regime the paper targets)")


if __name__ == "__main__":
    main()
